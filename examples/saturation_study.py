#!/usr/bin/env python3
"""Saturation-throughput study across machine sizes and message lengths.

Charts how the fat-tree's deliverable bandwidth scales by running one
declarative :class:`repro.Scenario` per machine size / message length —
the Eq. 26 saturation point comes back in every analytical
:class:`repro.RunResult` — and empirically verifies one configuration
with the simulator.  Also demonstrates a structural property of the
model: expressed in flits/cycle/PE, saturation is independent of message
length.

Run:  python examples/saturation_study.py
"""

from __future__ import annotations

from repro import ButterflyFatTree, Scenario, SimConfig, empirical_saturation, run
from repro.util.tables import format_table


def saturation_flit_load(n: int, flits: int) -> float:
    """Model saturation via the facade (no curve needed: sweep_points=0)."""
    scenario = Scenario(
        num_processors=n, message_flits=flits, backend="batch", sweep_points=0
    )
    return run(scenario).metrics["saturation"]["flit_load"]


def main() -> None:
    sizes = (16, 64, 256, 1024)
    lengths = (16, 32, 64)

    rows = []
    for n in sizes:
        sats = [saturation_flit_load(n, f) for f in lengths]
        rows.append((n, *sats, n * sats[0]))
    print(
        format_table(
            ["N", "sat F=16", "sat F=32", "sat F=64", "aggregate (flits/cycle)"],
            rows,
            title="Model saturation throughput (flits/cycle/PE)",
        )
    )
    print(
        "\nPer-PE throughput roughly halves every time N quadruples (top-level\n"
        "links are shared by more processors), while aggregate bandwidth keeps\n"
        "growing — the area-universality trade-off fat-trees are designed\n"
        "around.  Note the columns are identical: in flit-load units the\n"
        "model's saturation point is provably message-length independent.\n"
    )

    # Empirical check on one machine size.
    n = 64
    cfg = SimConfig(warmup_cycles=2_000, measure_cycles=6_000, seed=3, drain_factor=2.0)
    sim_sat = empirical_saturation(ButterflyFatTree(n), 16, cfg, rel_tol=0.05)
    model_sat = saturation_flit_load(n, 16)
    print(
        f"Empirical check at N={n}, F=16: model {model_sat:.4f} vs "
        f"simulated {sim_sat.flit_load:.4f} flits/cycle/PE\n"
        f"(the analytical operating point is conservative — the simulator\n"
        f"sustains ~15-20% more before queues diverge, so designs sized by\n"
        f"the model carry real-world headroom)."
    )


if __name__ == "__main__":
    main()
