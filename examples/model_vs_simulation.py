#!/usr/bin/env python3
"""Reproduce the shape of the paper's Figure 3 on a 256-processor machine.

Overlays the analytical model's latency-vs-load curve with flit-accurate
simulation measurements for two message lengths, exactly as Figure 3 does
for N=1024 (run ``REPRO_FULL=1 pytest benchmarks/bench_fig3.py`` for the
full-size reproduction; this example keeps N=256 so it finishes in a few
seconds).

Both sides go through the Scenario→Run facade: the model curve is one
``batch`` run over an explicit load grid, and each simulation point is
the same scenario re-run with ``backend="simulate"`` at that load.

Run:  python examples/model_vs_simulation.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import Scenario, run
from repro.util.tables import ascii_curve, format_table


def main() -> None:
    num_processors = 256
    base = Scenario(
        num_processors=num_processors,
        backend="batch",
        sweep_points=0,
        warmup_cycles=2_000.0,
        measure_cycles=8_000.0,
        replications=1,
    )

    all_rows = []
    plots = []
    for flits in (16, 64):
        probe = run(dataclasses.replace(base, message_flits=flits))
        sat = probe.metrics["saturation"]["flit_load"]
        grid = np.linspace(0.05 * sat, 0.95 * sat, 7)
        model_run = run(
            dataclasses.replace(
                base, message_flits=flits, flit_loads=tuple(float(x) for x in grid)
            )
        )
        model_lat = model_run.metrics["curve"]["latencies"]
        sim_lat = [
            run(
                dataclasses.replace(
                    base,
                    message_flits=flits,
                    flit_load=float(load),
                    backend="simulate",
                    seed=42 + flits,
                )
            ).metrics["point"]["latency"]
            for load in grid
        ]
        for load, m_lat, s_lat in zip(grid, model_lat, sim_lat):
            rel = (m_lat - s_lat) / s_lat if np.isfinite(s_lat) else float("nan")
            all_rows.append((flits, float(load), float(m_lat), float(s_lat), rel))
        plots.append(
            ascii_curve(
                list(grid),
                {
                    f"model {flits}f": list(model_lat),
                    f"sim {flits}f": list(sim_lat),
                },
                x_label="flits/cycle/PE",
                y_label="latency (cycles)",
                height=14,
            )
        )

    print(
        format_table(
            ["flits", "load (fl/cyc/PE)", "model", "simulation", "rel err"],
            all_rows,
            title=f"Model vs simulation, N={num_processors} (cf. Figure 3)",
        )
    )
    for plot in plots:
        print()
        print(plot)
    print(
        "\nAs in the paper: the model tracks simulation within a few percent\n"
        "over the full operating range and diverges only at the saturation\n"
        "knee, where steady-state waiting times grow without bound."
    )


if __name__ == "__main__":
    main()
