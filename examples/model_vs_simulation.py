#!/usr/bin/env python3
"""Reproduce the shape of the paper's Figure 3 on a 256-processor machine.

Overlays the analytical model's latency-vs-load curve with flit-accurate
simulation measurements for two message lengths, exactly as Figure 3 does
for N=1024 (run ``REPRO_FULL=1 pytest benchmarks/bench_fig3.py`` for the
full-size reproduction; this example keeps N=256 so it finishes in a few
seconds).

Run:  python examples/model_vs_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    SimConfig,
    latency_sweep,
    saturation_injection_rate,
    simulated_latency_curve,
)
from repro.util.tables import ascii_curve, format_table


def main() -> None:
    num_processors = 256
    model = ButterflyFatTreeModel(num_processors)
    topo = ButterflyFatTree(num_processors)

    all_rows = []
    plots = []
    for flits in (16, 64):
        sat = saturation_injection_rate(model, flits).flit_load
        grid = np.linspace(0.05 * sat, 0.95 * sat, 7)
        model_curve = latency_sweep(model.latency, flits, grid, label="model")
        sim_curve = simulated_latency_curve(
            topo,
            flits,
            grid,
            SimConfig(warmup_cycles=2_000, measure_cycles=8_000, seed=42 + flits),
            label="simulation",
        )
        for load, m_lat, s_lat in zip(grid, model_curve.latencies, sim_curve.latencies):
            rel = (m_lat - s_lat) / s_lat if np.isfinite(s_lat) else float("nan")
            all_rows.append((flits, float(load), float(m_lat), float(s_lat), rel))
        plots.append(
            ascii_curve(
                list(grid),
                {
                    f"model {flits}f": list(model_curve.latencies),
                    f"sim {flits}f": list(sim_curve.latencies),
                },
                x_label="flits/cycle/PE",
                y_label="latency (cycles)",
                height=14,
            )
        )

    print(
        format_table(
            ["flits", "load (fl/cyc/PE)", "model", "simulation", "rel err"],
            all_rows,
            title=f"Model vs simulation, N={num_processors} (cf. Figure 3)",
        )
    )
    for plot in plots:
        print()
        print(plot)
    print(
        "\nAs in the paper: the model tracks simulation within a few percent\n"
        "over the full operating range and diverges only at the saturation\n"
        "knee, where steady-state waiting times grow without bound."
    )


if __name__ == "__main__":
    main()
