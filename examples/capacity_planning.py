#!/usr/bin/env python3
"""Capacity planning: size a fat-tree under a latency budget.

The scenario that motivated fat-tree machines (CM-5, Meiko CS-2): given a
per-processor bandwidth demand and a latency budget for fine-grained
messages, which machine sizes can sustain the workload, and how much
headroom do they have?

This example is a thin client of :mod:`repro.design`: declare the space
(machine sizes × message lengths), state the requirements, and let
:func:`repro.design.explore` evaluate every candidate through the batch
engine — the whole sweep, including each candidate's batched-ladder
saturation search, is one call.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.design import DesignSpace, Requirements, bft_space, explore
from repro.util.tables import format_table

#: Design requirements.
LATENCY_BUDGET_CYCLES = 75.0
BANDWIDTH_DEMAND = 0.02  # flits/cycle per processor
MESSAGE_LENGTHS = (16, 32, 64)
MACHINE_SIZES = (16, 64, 256, 1024)


def main() -> None:
    print(
        f"Requirement: <= {LATENCY_BUDGET_CYCLES:.0f} cycles average latency "
        f"at {BANDWIDTH_DEMAND} flits/cycle/PE\n"
    )
    space = DesignSpace(
        families=(bft_space(MACHINE_SIZES),),
        message_lengths=MESSAGE_LENGTHS,
    )
    requirements = Requirements(
        demand_flit_load=BANDWIDTH_DEMAND, latency_slo=LATENCY_BUDGET_CYCLES
    )
    result = explore(space, requirements)

    rows = [
        (
            e.candidate.num_processors,
            e.candidate.message_flits,
            e.latency,
            e.metrics.zero_load_latency,
            e.headroom,
            "yes" if e.feasible else "no",
        )
        for e in result.evaluations
    ]
    print(
        format_table(
            [
                "N",
                "flits",
                "latency @ demand",
                "zero-load latency",
                "saturation headroom (x)",
                "meets budget",
            ],
            rows,
            title="Design-space sweep (analytical model, no simulation)",
        )
    )

    largest = result.largest_feasible()
    if largest is not None:
        print(
            f"\nLargest feasible configuration: N={largest.candidate.num_processors} "
            f"with {largest.candidate.message_flits}-flit messages."
        )
    cheapest = result.cheapest_feasible
    if cheapest is not None:
        print(
            f"Cheapest feasible configuration: {cheapest.candidate.label()} "
            f"at cost {cheapest.cost.total:.4g}."
        )
    frontier = result.pareto()
    print(f"\nLatency/cost/headroom Pareto frontier ({len(frontier)} designs):")
    for e in frontier:
        print(
            f"  {e.candidate.label()}: latency {e.latency:.4g} cycles, "
            f"cost {e.cost.total:.4g}, headroom {e.headroom:.3g}x"
        )
    print(
        "\nReading the table: zero-load latency grows with message length\n"
        "(serialization) and with N (average distance, D_bar); headroom\n"
        "shrinks as N grows because per-level link bandwidth is shared by\n"
        "more processors.  The explorer makes the latency/size/message-length\n"
        "trade-off explicit before any hardware or simulation time is spent."
    )


if __name__ == "__main__":
    main()
