#!/usr/bin/env python3
"""Capacity planning: size a fat-tree under a latency budget.

The scenario that motivated fat-tree machines (CM-5, Meiko CS-2): given a
per-processor bandwidth demand and a latency budget for fine-grained
messages, which machine sizes can sustain the workload, and how much
headroom do they have?  The analytical model answers in milliseconds per
configuration — no simulation required — which is exactly why such models
matter for design-space exploration.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import math

from repro import ButterflyFatTreeModel, Workload, saturation_injection_rate
from repro.util.tables import format_table

#: Design requirements.
LATENCY_BUDGET_CYCLES = 75.0
BANDWIDTH_DEMAND = 0.02  # flits/cycle per processor
MESSAGE_LENGTHS = (16, 32, 64)
MACHINE_SIZES = (16, 64, 256, 1024)


def main() -> None:
    print(
        f"Requirement: <= {LATENCY_BUDGET_CYCLES:.0f} cycles average latency "
        f"at {BANDWIDTH_DEMAND} flits/cycle/PE\n"
    )
    rows = []
    feasible: list[tuple[int, int]] = []
    for n in MACHINE_SIZES:
        model = ButterflyFatTreeModel(n)
        for flits in MESSAGE_LENGTHS:
            wl = Workload.from_flit_load(BANDWIDTH_DEMAND, flits)
            latency = model.latency(wl)
            sat = saturation_injection_rate(model, flits).flit_load
            headroom = sat / BANDWIDTH_DEMAND
            ok = math.isfinite(latency) and latency <= LATENCY_BUDGET_CYCLES
            if ok:
                feasible.append((n, flits))
            rows.append(
                (
                    n,
                    flits,
                    latency,
                    model.zero_load_latency(flits),
                    headroom,
                    "yes" if ok else "no",
                )
            )
    print(
        format_table(
            [
                "N",
                "flits",
                "latency @ demand",
                "zero-load latency",
                "saturation headroom (x)",
                "meets budget",
            ],
            rows,
            title="Design-space sweep (analytical model, no simulation)",
        )
    )

    if feasible:
        largest = max(feasible)
        print(
            f"\nLargest feasible configuration: N={largest[0]} with "
            f"{largest[1]}-flit messages."
        )
    print(
        "\nReading the table: zero-load latency grows with message length\n"
        "(serialization) and with N (average distance, D_bar); headroom\n"
        "shrinks as N grows because per-level link bandwidth is shared by\n"
        "more processors.  The model makes the latency/size/message-length\n"
        "trade-off explicit before any hardware or simulation time is spent."
    )


if __name__ == "__main__":
    main()
