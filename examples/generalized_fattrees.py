#!/usr/bin/env python3
"""How much up-link redundancy should a fat-tree buy? (M/G/p design study)

The paper's conclusion notes the framework extends to "queuing models with
more than two servers".  This example uses that extension for a design
question the 1997 hardware generation actually faced: at fixed leaf count,
how do extra parent links per switch (p = 1..4) trade hardware for
saturation bandwidth and loaded latency?

Run:  python examples/generalized_fattrees.py
"""

from __future__ import annotations

from repro import (
    GeneralizedFatTree,
    GeneralizedFatTreeModel,
    SimConfig,
    Workload,
    simulate,
)
from repro.core import saturation_injection_rate
from repro.util.tables import format_table


def main() -> None:
    children, levels = 4, 3  # 64 leaves
    flits = 32
    probe_load = 0.1  # flits/cycle/PE

    rows = []
    for parents in (1, 2, 3, 4):
        model = GeneralizedFatTreeModel(children, parents, levels)
        topo = GeneralizedFatTree(children, parents, levels)
        sat = saturation_injection_rate(model, flits).flit_load
        wl = Workload.from_flit_load(probe_load, flits)
        model_latency = model.latency(wl)
        sim_latency = None
        if model.is_stable(wl):
            res = simulate(
                topo,
                wl,
                SimConfig(warmup_cycles=2_000, measure_cycles=8_000, seed=13),
            )
            sim_latency = res.latency_mean
        rows.append(
            (
                parents,
                topo.num_links,
                sat,
                model_latency,
                sim_latency,
            )
        )
    print(
        format_table(
            [
                "parents p",
                "links",
                "saturation (fl/cyc/PE)",
                f"model latency @ {probe_load}",
                "sim latency",
            ],
            rows,
            title=(
                f"(4, p) fat-trees with {children**levels} leaves, "
                f"{flits}-flit messages — M/G/p up channels"
            ),
        )
    )
    print(
        "\np=1 is a plain quad-tree: the single up-link saturates below the\n"
        "probe load (model reports inf).  The paper's p=2 butterfly nearly\n"
        "doubles deliverable bandwidth again at p=3 and p=4 — but with\n"
        "diminishing latency returns at moderate load, which is exactly the\n"
        "area-vs-performance trade fat-tree designers tune.  The simulator\n"
        "column confirms each M/G/p prediction within a few percent."
    )


if __name__ == "__main__":
    main()
