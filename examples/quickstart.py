#!/usr/bin/env python3
"""Quickstart: model a butterfly fat-tree and predict its performance.

Builds the analytical model for a 256-processor butterfly fat-tree,
evaluates average message latency across offered loads, finds the
saturation throughput, and validates one operating point against the
flit-accurate simulator — all in a few seconds.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    SimConfig,
    Workload,
    latency_sweep,
    load_grid_to_saturation,
    saturation_injection_rate,
    simulate,
)
from repro.util.tables import ascii_curve, format_table


def main() -> None:
    num_processors = 256
    message_flits = 32

    # --- 1. the analytical model (the paper's contribution) -------------------
    model = ButterflyFatTreeModel(num_processors)
    print(model.describe())

    wl = Workload.from_flit_load(0.03, message_flits)
    print(f"\nAt {wl.flit_load:.3f} flits/cycle/PE with {message_flits}-flit worms:")
    solution = model.solve(wl)
    for name, value in solution.breakdown().items():
        print(f"  {name:>18}: {value:8.3f} cycles")

    # --- 2. a latency-vs-load curve up to saturation ---------------------------
    sat = saturation_injection_rate(model, message_flits)
    print(f"\nSaturation throughput: {sat.flit_load:.4f} flits/cycle/PE "
          f"(lambda_0 = {sat.injection_rate:.6f} msgs/cycle/PE)")

    grid = load_grid_to_saturation(model, message_flits, n_points=8)
    curve = latency_sweep(model.latency, message_flits, grid, label="model")
    print()
    print(format_table(
        ["load (fl/cyc/PE)", "latency (cycles)"],
        curve.as_rows(),
        title="Model latency vs offered load",
    ))

    # --- 3. validate one point against the simulator ---------------------------
    topo = ButterflyFatTree(num_processors)
    cfg = SimConfig(warmup_cycles=2_000, measure_cycles=8_000, seed=7)
    res = simulate(topo, wl, cfg)
    print(f"\nSimulation at the same point: {res.summary()}")
    err = (model.latency(wl) - res.latency_mean) / res.latency_mean
    print(f"Model vs simulation: {err:+.2%}")

    print()
    print(ascii_curve(
        list(curve.flit_loads),
        {"model": list(curve.latencies)},
        x_label="flits/cycle/PE",
        y_label="latency",
        height=12,
    ))


if __name__ == "__main__":
    main()
