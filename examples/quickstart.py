#!/usr/bin/env python3
"""Quickstart: one Scenario, every engine — model a butterfly fat-tree.

Declares a single :class:`repro.Scenario` for a 256-processor butterfly
fat-tree and answers it three ways purely by switching the backend:

* ``batch``    — latency breakdown, a latency-vs-load curve up to
  saturation, and the Eq. 26 saturation point, in one vectorized pass;
* ``simulate`` — a seeded replication set at the same operating point;
* ``baseline`` — the prior-art model variant for comparison.

Every answer is a :class:`repro.RunResult`; a later section saves the
records to a run registry and diffs model against baseline, and the final
section asks the *same* question of every other topology family the
facade knows (generalized fat-tree, hypercube, k-ary n-cube) purely by
switching the ``topology`` field.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import RunRegistry, Runner, Scenario
from repro.util.tables import ascii_curve, format_table


def main() -> None:
    scenario = Scenario(
        num_processors=256,
        message_flits=32,
        flit_load=0.03,
        backend="batch",
        sweep_points=8,
        warmup_cycles=2_000.0,
        measure_cycles=8_000.0,
        seed=7,
        replications=1,
        label="quickstart",
    )
    print(scenario.describe())

    # --- 1. the analytical model (the paper's contribution) -------------------
    model_run = Runner().run(scenario)
    point = model_run.metrics["point"]
    sat = model_run.metrics["saturation"]
    print(f"\nAt {point['flit_load']:.3f} flits/cycle/PE with 32-flit worms:")
    print(f"  latency: {point['latency']:8.3f} cycles")
    print(
        f"\nSaturation throughput: {sat['flit_load']:.4f} flits/cycle/PE "
        f"(lambda_0 = {sat['injection_rate']:.6f} msgs/cycle/PE)"
    )

    curve = model_run.metrics["curve"]
    print()
    print(format_table(
        ["load (fl/cyc/PE)", "latency (cycles)"],
        list(zip(curve["flit_loads"], curve["latencies"])),
        title="Model latency vs offered load",
    ))

    # --- 2. the same question, measured by the simulator -----------------------
    sim_run = Runner().run(scenario.with_backend("simulate"))
    sim_point = sim_run.metrics["point"]
    print(
        f"\nSimulation at the same point: latency "
        f"{sim_point['latency']:.2f} cycles, throughput "
        f"{sim_point['throughput']:.5f} fl/cyc/PE"
    )
    err = (point["latency"] - sim_point["latency"]) / sim_point["latency"]
    print(f"Model vs simulation: {err:+.2%}")

    # --- 3. persist the trajectory and diff model vs baseline ------------------
    with tempfile.TemporaryDirectory() as tmp:
        registry = RunRegistry(tmp)
        registry.save(model_run)  # the already-computed answer, no re-run
        Runner(registry=registry).run(scenario.with_backend("baseline"))
        diff = registry.diff(*registry.ids())
        shared = {d.key: d for d in diff.deltas}
        d = shared["point.latency"]
        print(
            f"\nRegistry diff (paper model -> prior-art baseline): the naive\n"
            f"variant predicts {d.b:.2f} cycles vs {d.a:.2f} ({d.rel:+.1%}) at "
            f"the same operating point."
        )

    print()
    print(ascii_curve(
        list(curve["flit_loads"]),
        {"model": list(curve["latencies"])},
        x_label="flits/cycle/PE",
        y_label="latency",
        height=12,
    ))

    # --- 4. the same question across topology families --------------------------
    # Only the topology field (and the family's shape parameters) changes;
    # N=256 for every family, the operating point and backend stay as
    # declared above.
    import dataclasses

    rows = []
    for family_fields in (
        {"topology": "bft"},
        {"topology": "generalized-fattree", "children": 4, "parents": 2},
        {"topology": "hypercube"},
        {"topology": "kary-ncube", "radix": 4},
    ):
        sc = dataclasses.replace(scenario, sweep_points=0, **family_fields)
        record = Runner().run(sc)
        rows.append(
            (
                sc.topology,
                record.metrics["point"]["latency"],
                record.metrics["saturation"]["flit_load"],
                record.metrics["variant"],
            )
        )
    print()
    print(format_table(
        ["topology", "latency @ 0.03 (cycles)", "saturation (fl/cyc/PE)", "variant"],
        rows,
        title="One Scenario, four topology families (N=256, 32-flit worms)",
    ))


if __name__ == "__main__":
    main()
