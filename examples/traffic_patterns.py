#!/usr/bin/env python3
"""Beyond uniform traffic: pattern-aware model vs. simulation.

The paper's closed-form model assumes uniformly random destinations
(assumption 1), but its Section 2 framework only needs per-channel rates
and routing probabilities — which ``repro.traffic`` derives for any
destination pattern by propagating a :class:`TrafficSpec` through the
fat-tree's routing.  This example drives a 64-processor fat-tree with six
patterns at the same offered load and compares each *pattern-aware*
analytical prediction against simulation (plus the uniform-model
prediction, to show what assuming uniformity would get wrong):

* ``uniform``      — the paper's assumption; all three columns agree;
* ``quad-local``   — all traffic stays under one level-1 switch (2-hop
  paths, no upper-level contention -> the uniform model overestimates);
* ``permutation``  — one fixed partner per source;
* ``transpose``    — swap address-bit halves (silent fixed points);
* ``bit-reversal`` — reverse address bits;
* ``hotspot``      — 20% of traffic to one node: the hot ejection channel
  runs ~13x its fair share, latency explodes, and only the pattern-aware
  model sees it coming.

Run:  python examples/traffic_patterns.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import (
    BitReversalSpec,
    ButterflyFatTree,
    ButterflyFatTreeModel,
    HotspotSpec,
    PermutationSpec,
    PoissonTraffic,
    QuadLocalSpec,
    SimConfig,
    TransposeSpec,
    UniformSpec,
    Workload,
    simulate,
)
from repro.util.tables import format_table


def main() -> None:
    n = 64
    flits = 16
    load = 0.08  # flits/cycle/PE, ~half of uniform saturation
    topo = ButterflyFatTree(n)
    model = ButterflyFatTreeModel(n)
    wl = Workload.from_flit_load(load, flits)
    uniform_prediction = model.latency(wl)

    rows = []
    for spec in (
        UniformSpec(),
        QuadLocalSpec(),
        PermutationSpec(seed=99),
        TransposeSpec(),
        BitReversalSpec(),
        HotspotSpec(fraction=0.2, target=0),
    ):
        # The same spec drives both sides: the analytical per-channel model...
        pattern_model = model.traffic_model(spec, flits)
        predicted = float(
            pattern_model.latency_batch(np.array([wl.injection_rate]), flits)[0]
        )
        # ...and the simulator's traffic source.
        traffic = PoissonTraffic(n, wl, seed=99, spec=spec)
        cfg = SimConfig(
            warmup_cycles=2_000, measure_cycles=8_000, seed=99, drain_factor=2.0
        )
        res = simulate(topo, wl, cfg, traffic=traffic)
        latency = res.latency_mean if res.stable else math.inf
        err = (
            (predicted - latency) / latency
            if math.isfinite(latency) and math.isfinite(predicted)
            else math.nan
        )
        rows.append(
            (
                spec.name,
                predicted,
                latency,
                f"{err:+.1%}" if math.isfinite(err) else "-",
                "yes" if res.stable else "no (saturated)",
            )
        )

    print(
        format_table(
            ["pattern", "pattern model", "sim latency", "err", "steady state"],
            rows,
            title=(
                f"N={n}, {flits}-flit, offered {load} flits/cycle/PE "
                f"(uniform-model prediction: {uniform_prediction:.2f} cycles)"
            ),
        )
    )
    print(
        "\nThe pattern-aware model tracks every scenario the uniform model\n"
        "cannot: quad-local's 2-hop paths, the lighter ejection contention\n"
        "of fixed permutations (transpose/bit-reversal keep their fixed\n"
        "points silent), and the 20% hotspot, whose hot ejection channel\n"
        "runs ~13x its fair share at utilization ~1 — the pattern model\n"
        "reports outright saturation while the simulator limps along at\n"
        "~10x the uniform latency on the very edge of stability.\n"
        "Each pattern's prediction comes from propagating the destination\n"
        "distribution through the fat-tree's routing into per-channel rates\n"
        "(repro.traffic), then solving the paper's Section 2 recursion on\n"
        "the resulting channel graph in one batched pass."
    )


if __name__ == "__main__":
    main()
