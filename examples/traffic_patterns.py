#!/usr/bin/env python3
"""Beyond uniform traffic: where the analytical model's assumptions end.

The paper's model assumes uniformly random destinations (assumption 1).
Real workloads are rarely uniform, and the simulator substrate supports
richer patterns.  This example drives a 64-processor fat-tree with four
destination patterns at the same offered load and compares measured
latency against the uniform-traffic model prediction:

* ``uniform``     — the paper's assumption; the model applies;
* ``quad-local``  — all traffic stays under one level-1 switch (shorter
  paths, no upper-level contention -> the uniform model overestimates);
* ``permutation`` — one fixed partner per source (less destination
  contention than uniform at the ejection channels);
* ``hotspot``     — 20% of traffic to one node (the hot ejection channel
  is driven to the edge of saturation; latency explodes).

Run:  python examples/traffic_patterns.py
"""

from __future__ import annotations

import math

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    Pattern,
    PoissonTraffic,
    SimConfig,
    Workload,
    simulate,
)
from repro.util.tables import format_table


def main() -> None:
    n = 64
    flits = 16
    load = 0.08  # flits/cycle/PE, ~half of uniform saturation
    topo = ButterflyFatTree(n)
    model = ButterflyFatTreeModel(n)
    wl = Workload.from_flit_load(load, flits)
    uniform_prediction = model.latency(wl)

    rows = []
    for pattern, kwargs in (
        (Pattern.UNIFORM, {}),
        (Pattern.QUAD_LOCAL, {}),
        (Pattern.PERMUTATION, {}),
        (Pattern.HOTSPOT, {"hotspot_fraction": 0.2, "hotspot_target": 0}),
    ):
        traffic = PoissonTraffic(n, wl, seed=99, pattern=pattern, **kwargs)
        cfg = SimConfig(
            warmup_cycles=2_000, measure_cycles=8_000, seed=99, drain_factor=2.0
        )
        res = simulate(topo, wl, cfg, traffic=traffic)
        latency = res.latency_mean if res.stable else math.inf
        rows.append(
            (
                pattern.value,
                latency,
                res.delivered_flit_rate,
                "yes" if res.stable else "no (saturated)",
            )
        )

    print(
        format_table(
            ["pattern", "sim latency", "delivered fl/cyc/PE", "steady state"],
            rows,
            title=(
                f"N={n}, {flits}-flit, offered {load} flits/cycle/PE "
                f"(uniform-model prediction: {uniform_prediction:.2f} cycles)"
            ),
        )
    )
    print(
        "\nUniform matches the model; quad-local beats it (2-hop paths only);\n"
        "a random permutation behaves close to uniform on this topology; the\n"
        "hotspot pattern drives one ejection channel to ~13x its fair share\n"
        "— utilization ~1, so latency explodes ~30x and delivered throughput\n"
        "starts falling below the offered load.  Extending the analytical\n"
        "model to non-uniform rates means redoing Section 3.2's rate\n"
        "derivation per channel — the Section 2 framework itself (and\n"
        "repro.core.generic_model) already accepts arbitrary per-stage rates."
    )


if __name__ == "__main__":
    main()
