#!/usr/bin/env python3
"""Apply the general wormhole model to other networks (Section 2's framework).

The paper's abstract: "These ideas can also be applied to other networks."
This example instantiates the general channel-graph solver on a binary
hypercube, compares it with the Draper–Ghosh-style prior-art baseline and
with simulation, and prints the Dally k-ary n-cube baseline for reference.

Run:  python examples/general_networks.py
"""

from __future__ import annotations

import numpy as np

from repro import Hypercube, SimConfig, Workload, simulate
from repro.baselines import DallyKaryNCubeModel, DraperGhoshHypercubeModel
from repro.core.throughput import saturation_injection_rate
from repro.util.tables import format_table


def main() -> None:
    dimension = 6
    flits = 32
    general = DraperGhoshHypercubeModel(dimension, corrected=True)
    baseline = DraperGhoshHypercubeModel(dimension, corrected=False)
    topo = Hypercube(dimension)

    sat = saturation_injection_rate(general, flits).flit_load
    rows = []
    for load in np.linspace(0.1 * sat, 0.85 * sat, 6):
        wl = Workload.from_flit_load(float(load), flits)
        res = simulate(
            topo, wl, SimConfig(warmup_cycles=2_000, measure_cycles=8_000, seed=11)
        )
        rows.append(
            (
                float(load),
                res.latency_mean,
                general.latency(wl),
                baseline.latency(wl),
            )
        )
    print(
        format_table(
            ["load (fl/cyc/PE)", "simulation", "general model", "DG-style baseline"],
            rows,
            title=f"64-node hypercube, {flits}-flit messages",
        )
    )
    print(
        "\nThe general model (with the paper's blocking correction) stays\n"
        "within a few percent of simulation; the uncorrected prior-art\n"
        "recursion charges every hop the full queueing delay and drifts\n"
        "upward, eventually predicting saturation where none exists.\n"
    )

    dally = DallyKaryNCubeModel(8, 2)
    print(dally.describe())
    print(
        format_table(
            ["load (fl/cyc/PE)", "Dally model latency"],
            [
                (x, dally.latency_at_flit_load(x, flits))
                for x in (0.01, 0.05, 0.1, 0.2)
            ],
            title="Dally baseline on the unidirectional 8-ary 2-cube",
        )
    )
    print(
        "\n(Wormhole tori need virtual channels for deadlock freedom — one of\n"
        "the fat-tree's selling points is that it needs none; see\n"
        "repro.baselines.dally for the simulation caveat.)"
    )


if __name__ == "__main__":
    main()
