"""Queueing-theory substrate (S1 in DESIGN.md).

Implements the waiting-time building blocks of the paper:

* :mod:`repro.queueing.mg1` — M/G/1 Pollaczek–Khinchine waits (Eqs. 4, 6);
* :mod:`repro.queueing.mgm` — Hokstad-style M/G/m waits (Eqs. 7, 8), with
  the general-``m`` extension mentioned in the paper's conclusion;
* :mod:`repro.queueing.distributions` — the Draper–Ghosh SCV approximation
  (Eq. 5) and its ablation alternatives;
* :mod:`repro.queueing.markovian` — exact M/M/1, M/M/c, M/D/1 references
  used to validate the approximations.
"""

from .distributions import (
    ScvMode,
    ServiceTime,
    scv_draper_ghosh,
    scv_draper_ghosh_batch,
    scv_for_mode,
    scv_for_mode_batch,
)
from .markovian import (
    erlang_c,
    erlang_c_batch,
    md1_waiting_time,
    mm1_waiting_time,
    mmc_waiting_time,
    mmc_waiting_time_batch,
)
from .mg1 import (
    mg1_utilization,
    mg1_waiting_time,
    mg1_waiting_time_batch,
    mg1_waiting_time_wormhole,
)
from .mgm import (
    hokstad_mg2_waiting_time,
    mgm_waiting_time,
    mgm_waiting_time_batch,
    mgm_waiting_time_wormhole,
)

__all__ = [
    "ScvMode",
    "ServiceTime",
    "scv_draper_ghosh",
    "scv_draper_ghosh_batch",
    "scv_for_mode",
    "scv_for_mode_batch",
    "erlang_c",
    "erlang_c_batch",
    "md1_waiting_time",
    "mm1_waiting_time",
    "mmc_waiting_time",
    "mmc_waiting_time_batch",
    "mg1_utilization",
    "mg1_waiting_time",
    "mg1_waiting_time_batch",
    "mg1_waiting_time_wormhole",
    "hokstad_mg2_waiting_time",
    "mgm_waiting_time",
    "mgm_waiting_time_batch",
    "mgm_waiting_time_wormhole",
]
