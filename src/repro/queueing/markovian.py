"""Exact Markovian queueing results used to validate the approximations.

These closed forms (M/M/1, M/M/c via Erlang C, M/D/1) are textbook results
(Kleinrock, *Queueing Systems* vol. I) and serve as ground truth for the
approximate M/G/1 / M/G/m formulas:

* M/G/1 with ``C_b^2 = 1``  must equal M/M/1,
* M/G/1 with ``C_b^2 = 0``  must equal M/D/1,
* Hokstad M/G/m with ``C_b^2 = 1`` must equal M/M/m (the approximation is
  exact in the exponential case).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..util.validation import is_zero

__all__ = [
    "erlang_c",
    "erlang_c_batch",
    "mm1_waiting_time",
    "mmc_waiting_time",
    "mmc_waiting_time_batch",
    "md1_waiting_time",
]


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait in an M/M/c queue.

    Parameters
    ----------
    servers:
        Number of servers ``c`` (positive integer).
    offered_load:
        Offered load ``a = lambda * x_bar`` in Erlangs; must satisfy
        ``a < c`` for a steady state (returns 1.0 at or past saturation).
    """
    if not isinstance(servers, int) or servers <= 0:
        raise ConfigurationError(f"servers must be a positive integer, got {servers!r}")
    if offered_load < 0:
        raise ConfigurationError(f"offered_load must be >= 0, got {offered_load!r}")
    if is_zero(offered_load):
        return 0.0
    if offered_load >= servers:
        return 1.0
    # Stable recurrence on the Erlang-B blocking probability.
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def erlang_c_batch(servers: int, offered_load: np.ndarray) -> np.ndarray:
    """Vectorized :func:`erlang_c` over an array of offered loads.

    Uses the same Erlang-B recurrence elementwise (identical operation
    order, so each entry is bit-compatible with the scalar evaluation).
    Entries at or past saturation (``a >= servers``) evaluate to 1.0.
    """
    if not isinstance(servers, int) or servers <= 0:
        raise ConfigurationError(f"servers must be a positive integer, got {servers!r}")
    a = np.asarray(offered_load, dtype=float)
    if np.any(a < 0):
        raise ConfigurationError("offered_load must be >= 0")
    # Clamp saturated/non-finite entries for the recurrence; they are
    # overwritten by the saturation mask below.
    saturated = ~(a < servers)
    safe = np.where(saturated, 0.0, a)
    b = np.ones_like(safe)
    for k in range(1, servers + 1):
        ab = safe * b
        b = ab / (k + ab)
    rho = safe / servers
    with np.errstate(divide="ignore", invalid="ignore"):
        out = b / (1.0 - rho + rho * b)
    out = np.where(is_zero(safe), 0.0, out)
    return np.where(saturated, 1.0, out)


def mm1_waiting_time(arrival_rate: float, mean_service: float) -> float:
    """Exact mean queue wait of an M/M/1 queue: ``rho x_bar / (1 - rho)``."""
    if mean_service <= 0:
        raise ConfigurationError(f"mean_service must be > 0, got {mean_service!r}")
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        return math.inf
    return rho * mean_service / (1.0 - rho) if rho > 0 else 0.0


def mmc_waiting_time(arrival_rate: float, mean_service: float, servers: int) -> float:
    """Exact mean queue wait of an M/M/c queue (Erlang C).

    ``W = C(c, a) * x_bar / (c - a)`` with ``a = lambda * x_bar``.
    """
    if mean_service <= 0:
        raise ConfigurationError(f"mean_service must be > 0, got {mean_service!r}")
    a = arrival_rate * mean_service
    if a >= servers:
        return math.inf
    if is_zero(a):
        return 0.0
    return erlang_c(servers, a) * mean_service / (servers - a)


def mmc_waiting_time_batch(
    arrival_rate: np.ndarray, mean_service: np.ndarray, servers: int
) -> np.ndarray:
    """Vectorized :func:`mmc_waiting_time`: exact M/M/c waits over load arrays.

    Broadcasts ``arrival_rate`` against ``mean_service``; saturated entries
    (``a >= servers``) and non-finite services evaluate to ``inf``.
    """
    rate = np.asarray(arrival_rate, dtype=float)
    service = np.asarray(mean_service, dtype=float)
    finite = np.isfinite(service)
    safe_service = np.where(finite, service, 1.0)
    a = rate * safe_service
    saturated = ~(a < servers)
    safe_a = np.where(saturated, 0.0, a)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = erlang_c_batch(servers, safe_a) * safe_service / (servers - safe_a)
    out = np.where(is_zero(safe_a), 0.0, out)
    return np.where(saturated | ~finite, np.inf, out)


def md1_waiting_time(arrival_rate: float, mean_service: float) -> float:
    """Exact mean queue wait of an M/D/1 queue: ``rho x_bar / (2(1 - rho))``."""
    if mean_service <= 0:
        raise ConfigurationError(f"mean_service must be > 0, got {mean_service!r}")
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        return math.inf
    return rho * mean_service / (2.0 * (1.0 - rho)) if rho > 0 else 0.0
