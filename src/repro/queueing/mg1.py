"""M/G/1 waiting times (Pollaczek–Khinchine) — Eqs. 4 and 6 of the paper.

The mean waiting time in an M/G/1 queue with Poisson arrival rate ``lambda``
and service moments ``(x_bar, C_b^2)`` is

    ``W = rho * x_bar * (1 + C_b^2) / (2 * (1 - rho))``,   ``rho = lambda * x_bar``.

Past saturation (``rho >= 1``) the queue has no steady state; following the
library-wide convention the functions return ``math.inf`` rather than raising
so that load sweeps can cross the saturation point gracefully.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..util.validation import is_zero
from .distributions import scv_draper_ghosh

__all__ = [
    "mg1_waiting_time",
    "mg1_waiting_time_batch",
    "mg1_waiting_time_wormhole",
    "mg1_utilization",
]


def mg1_utilization(arrival_rate: float, mean_service: float) -> float:
    """Server utilization ``rho = lambda * x_bar``."""
    if arrival_rate < 0:
        raise ConfigurationError(f"arrival_rate must be >= 0, got {arrival_rate!r}")
    if mean_service <= 0:
        raise ConfigurationError(f"mean_service must be > 0, got {mean_service!r}")
    return arrival_rate * mean_service


def mg1_waiting_time(arrival_rate: float, mean_service: float, scv: float = 0.0) -> float:
    """Mean M/G/1 queue wait (Pollaczek–Khinchine; Eq. 4).

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda`` (messages per cycle).
    mean_service:
        Mean service time ``x_bar`` (cycles).
    scv:
        Squared coefficient of variation ``C_b^2`` of the service time.

    Returns
    -------
    float
        Mean waiting time in cycles; ``inf`` when ``rho >= 1``; ``nan`` is
        propagated if ``mean_service`` is non-finite.
    """
    if scv < 0:
        raise ConfigurationError(f"scv must be >= 0, got {scv!r}")
    if not math.isfinite(mean_service):
        return math.inf
    rho = mg1_utilization(arrival_rate, mean_service)
    if rho >= 1.0:
        return math.inf
    if is_zero(rho):
        return 0.0
    return rho * mean_service * (1.0 + scv) / (2.0 * (1.0 - rho))


def mg1_waiting_time_batch(
    arrival_rate: np.ndarray, mean_service: np.ndarray, scv: np.ndarray
) -> np.ndarray:
    """Vectorized Pollaczek–Khinchine wait over arrays of operating points.

    Broadcasts all three arguments together.  Elementwise identical to
    :func:`mg1_waiting_time` (same operation order) at finite entries;
    ``rho >= 1`` and non-finite services evaluate to ``inf`` per point, so
    a load sweep crosses saturation without poisoning its finite entries.
    """
    rate = np.asarray(arrival_rate, dtype=float)
    service = np.asarray(mean_service, dtype=float)
    scv_arr = np.asarray(scv, dtype=float)
    finite = np.isfinite(service)
    safe_service = np.where(finite, service, 1.0)
    rho = rate * safe_service
    saturated = ~(rho < 1.0)
    safe_rho = np.where(saturated, 0.0, rho)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = safe_rho * safe_service * (1.0 + scv_arr) / (2.0 * (1.0 - safe_rho))
    out = np.where(is_zero(safe_rho), 0.0, out)
    return np.where(saturated | ~finite, np.inf, out)


def mg1_waiting_time_wormhole(
    arrival_rate: float, mean_service: float, message_flits: float
) -> float:
    """M/G/1 wait with the Draper–Ghosh wormhole SCV (Eq. 6).

    This is the single-server waiting-time building block used throughout
    the butterfly fat-tree analysis: substituting Eq. 5 into Eq. 4 yields

        ``W = lambda * x_bar^2 / (2 (1 - lambda x_bar)) * (1 + (x_bar - s/f)^2 / x_bar^2)``.
    """
    if not math.isfinite(mean_service):
        return math.inf
    scv = scv_draper_ghosh(mean_service, message_flits)
    return mg1_waiting_time(arrival_rate, mean_service, scv)
