"""Service-time distribution descriptions and SCV approximations.

The waiting-time formulas of the paper (Eqs. 4-8) depend on the service-time
distribution only through its squared coefficient of variation (SCV),
``C_b^2 = sigma_b^2 / x_bar^2``.  For wormhole routing the true distribution
of a channel's service time is unknown; following Draper & Ghosh (1994,
p. 206) the paper approximates the standard deviation by the *blocking
component* of the mean service time:

    ``C_b^2 = (x_bar - s/f)^2 / x_bar^2``                         (Eq. 5)

where ``s/f`` is the message length in flits (the deterministic,
contention-free part of the service time).  At zero load ``x_bar == s/f``
and the service time is deterministic (``C_b^2 == 0``); as contention grows
the distribution becomes more variable.

This module also exposes the alternative SCV models used by the ablation
experiments: deterministic (``C_b^2 = 0``, i.e. M/D/m) and exponential
(``C_b^2 = 1``, i.e. M/M/m).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ScvMode",
    "scv_draper_ghosh",
    "scv_draper_ghosh_batch",
    "scv_for_mode",
    "scv_for_mode_batch",
    "ServiceTime",
]


class ScvMode(enum.Enum):
    """Which squared-coefficient-of-variation approximation to use."""

    #: The paper's choice (Eq. 5), after Draper & Ghosh.
    DRAPER_GHOSH = "draper-ghosh"
    #: Deterministic service times, ``C_b^2 = 0`` (M/D/m behaviour).
    DETERMINISTIC = "deterministic"
    #: Exponential service times, ``C_b^2 = 1`` (M/M/m behaviour).
    EXPONENTIAL = "exponential"


def scv_draper_ghosh(mean_service: float, message_flits: float) -> float:
    """Draper–Ghosh SCV approximation (Eq. 5 of the paper).

    Parameters
    ----------
    mean_service:
        Mean channel service time ``x_bar`` in cycles (>= message_flits in a
        consistent model, but the function tolerates any positive value and
        clamps the blocking component at zero).
    message_flits:
        Message length ``s/f`` in flits.
    """
    if mean_service <= 0:
        raise ConfigurationError(f"mean_service must be positive, got {mean_service!r}")
    if message_flits <= 0:
        raise ConfigurationError(f"message_flits must be positive, got {message_flits!r}")
    blocking = max(mean_service - message_flits, 0.0)
    return (blocking / mean_service) ** 2


def scv_draper_ghosh_batch(
    mean_service: np.ndarray, message_flits: float
) -> np.ndarray:
    """Vectorized Draper–Ghosh SCV (Eq. 5) over an array of mean services.

    Elementwise identical to :func:`scv_draper_ghosh` at every finite entry;
    non-finite services (saturated points) yield an SCV of 0, matching the
    solvers' scalar convention of suppressing the SCV once a wait diverges.
    """
    if message_flits <= 0:
        raise ConfigurationError(f"message_flits must be positive, got {message_flits!r}")
    service = np.asarray(mean_service, dtype=float)
    finite = np.isfinite(service)
    safe = np.where(finite, service, 1.0)
    blocking = np.maximum(safe - message_flits, 0.0)
    ratio = blocking / safe
    return np.where(finite, ratio * ratio, 0.0)


def scv_for_mode(mode: ScvMode, mean_service: float, message_flits: float) -> float:
    """Evaluate the SCV under the given approximation mode."""
    if mode is ScvMode.DRAPER_GHOSH:
        return scv_draper_ghosh(mean_service, message_flits)
    if mode is ScvMode.DETERMINISTIC:
        return 0.0
    if mode is ScvMode.EXPONENTIAL:
        return 1.0
    raise ConfigurationError(f"unknown ScvMode: {mode!r}")


def scv_for_mode_batch(
    mode: ScvMode, mean_service: np.ndarray, message_flits: float
) -> np.ndarray:
    """Vectorized :func:`scv_for_mode` over an array of mean service times.

    Non-finite (saturated) entries evaluate to SCV 0 under every mode, so
    batch solvers can keep broadcasting past saturation without NaNs.
    """
    service = np.asarray(mean_service, dtype=float)
    if mode is ScvMode.DRAPER_GHOSH:
        return scv_draper_ghosh_batch(service, message_flits)
    if mode is ScvMode.DETERMINISTIC:
        return np.zeros_like(service)
    if mode is ScvMode.EXPONENTIAL:
        return np.where(np.isfinite(service), 1.0, 0.0)
    raise ConfigurationError(f"unknown ScvMode: {mode!r}")


@dataclass(frozen=True)
class ServiceTime:
    """A (mean, SCV) summary of a service-time distribution.

    Queueing formulas in this package consume this two-moment summary; no
    further distributional detail is needed for the P-K / Hokstad results.
    """

    mean: float
    scv: float = 0.0

    def __post_init__(self) -> None:
        if not (self.mean > 0):
            raise ConfigurationError(f"service mean must be positive, got {self.mean!r}")
        if not (self.scv >= 0):
            raise ConfigurationError(f"service SCV must be >= 0, got {self.scv!r}")

    @property
    def variance(self) -> float:
        """Implied service-time variance ``sigma_b^2 = C_b^2 * x_bar^2``."""
        return self.scv * self.mean * self.mean

    @classmethod
    def wormhole(cls, mean: float, message_flits: float) -> "ServiceTime":
        """Service time with the paper's wormhole SCV approximation."""
        return cls(mean=mean, scv=scv_draper_ghosh(mean, message_flits))
