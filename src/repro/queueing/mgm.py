"""Multi-server M/G/m waiting-time approximation (Hokstad) — Eqs. 7-8.

The butterfly fat-tree offers *two* redundant up-links out of every switch;
a worm heading up takes whichever is free.  The paper models the pair as a
single two-server queue and uses an approximation credited to Hokstad
(Operations Research 26(3), 1978) for the M/G/2 mean wait:

    ``W_{M/G/2} = lambda^2 x_bar^3 / (2 (4 - lambda^2 x_bar^2)) * (1 + C_b^2)``   (Eq. 7)

where ``lambda`` is the *total* arrival rate offered to the two-server
channel (the published correction to Eqs. 21/23 makes this ``2 *
lambda_link`` for the fat-tree's per-link rates).

Algebraically, Eq. 7 is exactly the exponential-case M/M/2 wait scaled by
``(1 + C_b^2)/2`` — the classic Lee–Longton-style two-moment scaling, which
Hokstad's analysis supports for moderate loads:

    ``W_{M/G/m} ≈ (1 + C_b^2)/2 * W_{M/M/m}``.

We therefore implement the general-``m`` rule through the exact Erlang-C
M/M/m wait; ``m=2`` reproduces the paper's closed form to machine precision
(verified in the test suite) and ``m=1`` reproduces Pollaczek–Khinchine.
This realizes the paper's closing remark that "the framework can be extended
for networks that require queuing models with more than two servers".
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..util.validation import is_zero
from .distributions import scv_draper_ghosh
from .markovian import mmc_waiting_time, mmc_waiting_time_batch

__all__ = [
    "hokstad_mg2_waiting_time",
    "mgm_waiting_time",
    "mgm_waiting_time_batch",
    "mgm_waiting_time_wormhole",
]


def hokstad_mg2_waiting_time(
    total_arrival_rate: float, mean_service: float, scv: float = 0.0
) -> float:
    """Closed-form Hokstad M/G/2 mean wait (Eq. 7 / Eq. 8 of the paper).

    Parameters
    ----------
    total_arrival_rate:
        Total Poisson rate ``lambda`` offered to the two-server channel.
        For the fat-tree's symmetric link pair this is twice the per-link
        rate.
    mean_service:
        Mean service time ``x_bar`` of a worm on either server.
    scv:
        Squared coefficient of variation of the service time.

    Returns ``inf`` at or past saturation (``lambda * x_bar >= 2``).
    """
    if scv < 0:
        raise ConfigurationError(f"scv must be >= 0, got {scv!r}")
    if total_arrival_rate < 0:
        raise ConfigurationError(f"total_arrival_rate must be >= 0, got {total_arrival_rate!r}")
    if mean_service <= 0:
        raise ConfigurationError(f"mean_service must be > 0, got {mean_service!r}")
    if not math.isfinite(mean_service):
        return math.inf
    a = total_arrival_rate * mean_service
    if a >= 2.0:
        return math.inf
    if is_zero(a):
        return 0.0
    lam2x2 = total_arrival_rate * total_arrival_rate * mean_service * mean_service
    return (
        total_arrival_rate**2
        * mean_service**3
        / (2.0 * (4.0 - lam2x2))
        * (1.0 + scv)
    )


def mgm_waiting_time(
    total_arrival_rate: float, mean_service: float, servers: int, scv: float = 0.0
) -> float:
    """General-``m`` M/G/m mean wait: ``(1 + C_b^2)/2`` times the M/M/m wait.

    ``m = 1`` equals Pollaczek–Khinchine and ``m = 2`` equals the paper's
    Eq. 7; larger ``m`` extends the framework to wider switches (fatter
    fat-trees), as anticipated in the paper's conclusion.
    """
    if scv < 0:
        raise ConfigurationError(f"scv must be >= 0, got {scv!r}")
    if not math.isfinite(mean_service):
        return math.inf
    w_mmm = mmc_waiting_time(total_arrival_rate, mean_service, servers)
    if math.isinf(w_mmm):
        return math.inf
    return (1.0 + scv) / 2.0 * w_mmm


def mgm_waiting_time_batch(
    total_arrival_rate: np.ndarray,
    mean_service: np.ndarray,
    servers: int,
    scv: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`mgm_waiting_time` over arrays of operating points.

    Same two-moment scaling of the exact M/M/m wait, broadcast over a load
    axis; saturated and non-finite entries evaluate to ``inf`` per point.
    """
    service = np.asarray(mean_service, dtype=float)
    scv_arr = np.asarray(scv, dtype=float)
    w_mmm = mmc_waiting_time_batch(total_arrival_rate, service, servers)
    diverged = ~np.isfinite(w_mmm)
    safe_w = np.where(diverged, 0.0, w_mmm)
    out = (1.0 + scv_arr) / 2.0 * safe_w
    return np.where(diverged | ~np.isfinite(service), np.inf, out)


def mgm_waiting_time_wormhole(
    total_arrival_rate: float,
    mean_service: float,
    servers: int,
    message_flits: float,
) -> float:
    """M/G/m wait with the Draper–Ghosh wormhole SCV substituted (Eq. 8)."""
    if not math.isfinite(mean_service):
        return math.inf
    scv = scv_draper_ghosh(mean_service, message_flits)
    return mgm_waiting_time(total_arrival_rate, mean_service, servers, scv)
