"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "RoutingError",
    "PartitionedNetworkError",
    "SaturatedError",
    "ConvergenceError",
    "SimulationError",
    "RegistryError",
    "SchemaVersionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or combination of parameters was supplied."""


class TopologyError(ReproError):
    """A network topology is malformed or a construction invariant failed."""


class RoutingError(ReproError):
    """A routing decision could not be made (no legal output channel)."""


class PartitionedNetworkError(RoutingError):
    """Injected faults disconnected a destination the traffic still addresses.

    Raised by fault-masked topologies (:mod:`repro.faults`) when a worm —
    or the analytical flow propagation — needs a next hop toward a
    destination that no surviving link can reach.  A *source* that merely
    lost its injection channel is silenced (it offers no traffic) rather
    than treated as a partition; see :class:`repro.faults.FaultedTopology`.
    """


class SaturatedError(ReproError):
    """The analytical model was evaluated past its saturation point.

    Most model entry points return ``math.inf`` for waiting times past
    saturation instead of raising; this exception is used by callers that
    require a finite operating point (e.g. the throughput solver when no
    stable bracket can be found).
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget.

    Carries the solver's diagnostic state so callers (and error messages)
    can say *where* the iteration stalled instead of silently returning a
    stale iterate: ``iterations`` is the exhausted budget, ``residual`` the
    final infinity-norm update, ``worst_component`` the index of the state
    component with the largest update, and ``worst_channel`` the
    human-readable name of that component when the caller knows one (the
    stage name of a channel-graph solve).
    """

    def __init__(
        self,
        message: str,
        *,
        iterations: int | None = None,
        residual: float | None = None,
        worst_component: int | None = None,
        worst_channel: str | None = None,
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.worst_component = worst_component
        self.worst_channel = worst_channel


class SimulationError(ReproError):
    """A simulator reached an inconsistent state or an invalid request."""


class RegistryError(ReproError):
    """A run-registry operation failed (missing run, unreadable record)."""


class SchemaVersionError(RegistryError):
    """A persisted run record was written under an incompatible schema.

    Raised instead of silently misreading a record whose
    ``schema_version`` differs from the library's current
    :data:`repro.runs.SCHEMA_VERSION`.
    """
