"""Experiment SVC — per-channel service times, model internals vs. simulation.

The strongest validation of the model is not the end-to-end latency
(Eq. 25) but the *intermediate* quantities it is assembled from: the mean
channel service times ``x_bar`` that Eqs. 16-24 resolve level by level.
The simulators record, per channel class, the total holding time and the
number of acquisitions inside the measurement window, so the empirical
mean service time is directly measurable as ``busy_time / acquisitions``
— e.g. the ejection channel must measure exactly ``s/f`` (Eq. 16), and
every other class must match its sweep value.

This experiment also cross-checks the Eq. 14 arrival rates per class,
making it a line-by-line empirical audit of Section 3.2-3.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import SimConfig, Workload
from ..core.bft_model import ButterflyFatTreeModel
from ..core.rates import bft_channel_rates
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from ..topology.butterfly_fattree import ButterflyFatTree
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["ServiceTimeRow", "ServiceTimeResult", "run_service_times"]


@dataclass(frozen=True)
class ServiceTimeRow:
    channel: str
    model_rate: float
    sim_rate: float
    model_service: float
    sim_service: float

    @property
    def rate_err(self) -> float:
        return relative_error(self.model_rate, self.sim_rate)

    @property
    def service_err(self) -> float:
        return relative_error(self.model_service, self.sim_service)


@dataclass(frozen=True)
class ServiceTimeResult:
    num_processors: int
    message_flits: int
    flit_load: float
    rows: tuple[ServiceTimeRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            [
                "channel",
                "rate model",
                "rate sim",
                "err",
                "x_bar model",
                "x_bar sim",
                "err",
            ],
            [
                (
                    r.channel,
                    r.model_rate,
                    r.sim_rate,
                    r.rate_err,
                    r.model_service,
                    r.sim_service,
                    r.service_err,
                )
                for r in self.rows
            ],
            title=(
                f"Per-channel rates (Eq. 14) and service times (Eqs. 16-24), "
                f"N={self.num_processors}, {self.message_flits}-flit at "
                f"{self.flit_load:.4f} fl/cyc/PE ({self.mode_label} mode)"
            ),
        )

    def worst_service_error(self) -> float:
        errs = [abs(r.service_err) for r in self.rows if math.isfinite(r.service_err)]
        return max(errs) if errs else math.nan


def run_service_times(
    *,
    num_processors: int = 256,
    message_flits: int = 16,
    flit_load: float | None = None,
    seed: int = 777,
    experiment_mode: ExperimentMode | None = None,
) -> ServiceTimeResult:
    """Regenerate the per-channel audit table."""
    m = experiment_mode or mode()
    model = ButterflyFatTreeModel(num_processors)
    if flit_load is None:
        from ..core.throughput import saturation_injection_rate

        flit_load = 0.6 * saturation_injection_rate(model, message_flits).flit_load
    wl = Workload.from_flit_load(flit_load, message_flits)
    solution = model.solve(wl)
    rates = bft_channel_rates(model.levels, wl.injection_rate)

    topo = ButterflyFatTree(num_processors)
    cfg = SimConfig(
        warmup_cycles=m.warmup_cycles,
        measure_cycles=2 * m.measure_cycles,
        seed=seed,
    )
    res = EventDrivenWormholeSimulator(topo, wl, cfg, keep_samples=False).run()

    rows = []
    for l in range(model.levels):
        for direction, model_x in (
            ("up", float(solution.up_service[l])),
            ("down", float(solution.down_service[l])),
        ):
            name = f"<{l},{l+1}>" if direction == "up" else f"<{l+1},{l}>"
            stats = res.class_stats[name]
            sim_rate = stats.rate_per_link(cfg.measure_cycles)
            sim_x = (
                stats.busy_time / stats.acquisitions
                if stats.acquisitions
                else math.nan
            )
            rows.append(
                ServiceTimeRow(
                    channel=name,
                    model_rate=float(rates[l]),
                    sim_rate=sim_rate,
                    model_service=model_x,
                    sim_service=sim_x,
                )
            )
    return ServiceTimeResult(
        num_processors=num_processors,
        message_flits=message_flits,
        flit_load=flit_load,
        rows=tuple(rows),
        mode_label=m.label,
    )
