"""Experiment TOPO — one question, every topology family, one facade.

The paper's abstract claims its Section-2 machinery applies to "other
networks"; after the facade gained topology parity, that claim is a
one-loop experiment: the *same* declarative :class:`~repro.runs.Scenario`
— only the ``topology`` field (and the family's shape parameters)
changing — is answered by the analytical model, crosschecked against the
prior-art baseline, and validated by the event-driven simulator for all
four families the repository models:

* ``bft`` — the paper's 4-2 butterfly fat-tree,
* ``generalized-fattree`` — the (children, parents) generalization,
* ``hypercube`` — the general model on a binary e-cube hypercube,
* ``kary-ncube`` — Dally's unidirectional torus (its own prior art).

Each family is measured at half its own model saturation — except the
torus, which runs at 10% of saturation because wormhole rings deadlock
without virtual channels (Dally & Seitz 1987) and our simulators model
none (see :mod:`repro.baselines.dally`); the operating fraction is
reported per row, never silently substituted.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..runs.runner import Runner
from ..runs.scenario import Scenario
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["TopologyMatrixRow", "TopologyMatrixResult", "run_topology_matrix"]

#: The no-virtual-channel torus limitation keeps its crosscheck at low load.
_TORUS_LOAD_FRACTION = 0.1
_DEFAULT_LOAD_FRACTION = 0.5


def _family_scenarios(full: bool, message_flits: int) -> list[Scenario]:
    """One representative scenario per family (paper-scale when ``full``)."""
    if full:
        shapes = [
            dict(topology="bft", num_processors=256),
            dict(topology="generalized-fattree", num_processors=256,
                 children=4, parents=2),
            dict(topology="hypercube", num_processors=256),
            dict(topology="kary-ncube", num_processors=64, radix=4),
        ]
    else:
        shapes = [
            dict(topology="bft", num_processors=16),
            dict(topology="generalized-fattree", num_processors=8,
                 children=2, parents=2),
            dict(topology="hypercube", num_processors=16),
            dict(topology="kary-ncube", num_processors=9, radix=3),
        ]
    return [
        Scenario(message_flits=message_flits, sweep_points=0, **shape)
        for shape in shapes
    ]


@dataclass(frozen=True)
class TopologyMatrixRow:
    """One family's model / baseline / simulation crosscheck."""

    topology: str
    num_processors: int
    load_fraction: float
    flit_load: float
    saturation_flit_load: float
    model_latency: float
    baseline_latency: float
    sim_latency: float

    @property
    def model_err(self) -> float:
        return relative_error(self.model_latency, self.sim_latency)

    @property
    def baseline_err(self) -> float:
        return relative_error(self.baseline_latency, self.sim_latency)


@dataclass(frozen=True)
class TopologyMatrixResult:
    message_flits: int
    rows: tuple[TopologyMatrixRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            [
                "topology",
                "N",
                "load frac",
                "load (fl/cyc/PE)",
                "sat load",
                "model",
                "baseline",
                "sim",
                "model err",
                "baseline err",
            ],
            [
                (
                    r.topology,
                    r.num_processors,
                    r.load_fraction,
                    r.flit_load,
                    r.saturation_flit_load,
                    r.model_latency,
                    r.baseline_latency,
                    r.sim_latency,
                    r.model_err,
                    r.baseline_err,
                )
                for r in self.rows
            ],
            title=(
                f"One Scenario per family through model/baseline/simulate, "
                f"{self.message_flits}-flit ({self.mode_label} mode; torus at "
                f"{_TORUS_LOAD_FRACTION:.0%} of saturation — no virtual channels)"
            ),
        )

    def to_json(self) -> dict:
        return {
            "message_flits": self.message_flits,
            "mode": self.mode_label,
            "rows": [
                {
                    "topology": r.topology,
                    "num_processors": r.num_processors,
                    "load_fraction": r.load_fraction,
                    "flit_load": r.flit_load,
                    "saturation_flit_load": r.saturation_flit_load,
                    "model_latency": r.model_latency,
                    "baseline_latency": r.baseline_latency,
                    "sim_latency": r.sim_latency,
                    "model_err": r.model_err,
                    "baseline_err": r.baseline_err,
                }
                for r in self.rows
            ],
        }


def run_topology_matrix(
    *,
    message_flits: int = 16,
    seed: int = 23,
    registry=None,
    experiment_mode: ExperimentMode | None = None,
) -> TopologyMatrixResult:
    """Run the cross-family comparison (optionally recording every run).

    ``registry`` (a :class:`~repro.runs.RunRegistry`) persists all twelve
    records — model, baseline and simulate per family — so the matrix
    diffs across PRs like any other run.
    """
    m = experiment_mode or mode()
    runner = Runner(registry=registry)
    rows = []
    for base in _family_scenarios(m.full, message_flits):
        # The saturation search anchors the operating point; reuse the
        # model record's saturation block rather than re-searching.
        probe = runner.run(base.with_backend("batch"), save=False)
        sat = probe.metrics["saturation"]["flit_load"]
        fraction = (
            _TORUS_LOAD_FRACTION
            if base.topology == "kary-ncube"
            else _DEFAULT_LOAD_FRACTION
        )
        scenario = dataclasses.replace(
            base,
            flit_load=fraction * sat,
            seed=seed,
            replications=m.replications,
            warmup_cycles=m.warmup_cycles,
            measure_cycles=m.measure_cycles,
            label="topology-matrix",
        )
        model = runner.run(scenario.with_backend("model"))
        baseline = runner.run(scenario.with_backend("baseline"))
        simulated = runner.run(scenario.with_backend("simulate"))
        rows.append(
            TopologyMatrixRow(
                topology=scenario.topology,
                num_processors=scenario.num_processors,
                load_fraction=fraction,
                flit_load=scenario.flit_load,
                saturation_flit_load=sat,
                model_latency=model.metrics["point"]["latency"],
                baseline_latency=baseline.metrics["point"]["latency"],
                sim_latency=simulated.metrics["point"]["latency"],
            )
        )
    return TopologyMatrixResult(
        message_flits=message_flits, rows=tuple(rows), mode_label=m.label
    )
