"""Shared experiment infrastructure.

Every experiment in this package regenerates one artifact of the paper's
evaluation (see the per-experiment index in DESIGN.md) and supports two
fidelity modes:

* **quick** (default) — small measurement windows and reduced grids, sized
  so the full benchmark suite completes in minutes on a laptop;
* **full** — paper-scale grids and windows, enabled by setting the
  environment variable ``REPRO_FULL=1``.

Experiments return plain result dataclasses with a ``render()`` method
producing the tables the paper reports; the benchmark harness times the
computation and writes the rendered tables under ``benchmarks/results/``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

__all__ = ["full_mode", "relative_error", "ExperimentMode", "mode"]


def full_mode() -> bool:
    """True when ``REPRO_FULL=1`` is set in the environment."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@dataclass(frozen=True)
class ExperimentMode:
    """Resolved fidelity parameters shared by the experiments."""

    full: bool

    @property
    def warmup_cycles(self) -> float:
        return 10_000.0 if self.full else 3_000.0

    @property
    def measure_cycles(self) -> float:
        return 30_000.0 if self.full else 9_000.0

    @property
    def replications(self) -> int:
        return 3 if self.full else 1

    @property
    def label(self) -> str:
        return "full" if self.full else "quick"


def mode() -> ExperimentMode:
    """The current fidelity mode resolved from the environment."""
    return ExperimentMode(full=full_mode())


def relative_error(model_value: float, reference: float) -> float:
    """Signed relative error of ``model_value`` against ``reference``.

    ``nan`` when the reference is non-finite or zero (no meaningful
    comparison); ``inf`` when only the model diverged.
    """
    if not math.isfinite(reference) or reference == 0.0:
        return math.nan
    if not math.isfinite(model_value):
        return math.inf
    return (model_value - reference) / reference
