"""Experiment GFT — generalized fat-trees with M/G/p up channels.

The paper's conclusion: "the framework can be extended for networks that
require queuing models with more than two servers."  This experiment
carries the extension out: for several ``(children, parents)`` fat-tree
family members it compares the generalized model (M/G/p waits on the
p-redundant up channels) against flit-accurate simulation at fractions of
each configuration's own saturation load, and reports how saturation
throughput grows with up-link redundancy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import SimConfig, Workload
from ..core.generalized_model import GeneralizedFatTreeModel
from ..core.throughput import saturation_injection_rate
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from ..topology.generalized_fattree import GeneralizedFatTree
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["GeneralizedRow", "GeneralizedResult", "run_generalized"]


@dataclass(frozen=True)
class GeneralizedRow:
    children: int
    parents: int
    levels: int
    load_fraction: float
    flit_load: float
    model_latency: float
    sim_latency: float
    model_saturation: float

    @property
    def rel_err(self) -> float:
        return relative_error(self.model_latency, self.sim_latency)


@dataclass(frozen=True)
class GeneralizedResult:
    message_flits: int
    rows: tuple[GeneralizedRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            [
                "(c,p)",
                "N",
                "load/sat",
                "load (fl/cyc/PE)",
                "model latency",
                "sim latency",
                "rel err",
                "model sat",
            ],
            [
                (
                    f"({r.children},{r.parents})",
                    r.children**r.levels,
                    r.load_fraction,
                    r.flit_load,
                    r.model_latency,
                    r.sim_latency,
                    r.rel_err,
                    r.model_saturation,
                )
                for r in self.rows
            ],
            title=(
                f"Generalized fat-trees (M/G/p up channels), "
                f"{self.message_flits}-flit ({self.mode_label} mode)"
            ),
        )


def run_generalized(
    *,
    family: tuple[tuple[int, int, int], ...] | None = None,
    message_flits: int = 32,
    load_fractions: tuple[float, ...] = (0.3, 0.6),
    seed: int = 123,
    experiment_mode: ExperimentMode | None = None,
) -> GeneralizedResult:
    """Regenerate the generalized-family validation table."""
    m = experiment_mode or mode()
    if family is None:
        family = (
            ((4, 2, 3), (4, 3, 3), (4, 4, 3), (8, 2, 2), (2, 2, 4))
            if not m.full
            else ((4, 2, 4), (4, 3, 4), (4, 4, 4), (8, 2, 3), (2, 2, 6))
        )
    rows = []
    for c, p, n in family:
        model = GeneralizedFatTreeModel(c, p, n)
        topo = GeneralizedFatTree(c, p, n)
        sat = saturation_injection_rate(model, message_flits).flit_load
        # All load fractions of one configuration are a single batched solve.
        workloads = [
            Workload.from_flit_load(frac * sat, message_flits)
            for frac in load_fractions
        ]
        model_latencies = model.latency_batch(
            np.array([wl.injection_rate for wl in workloads]), message_flits
        )
        for frac, wl, model_latency in zip(load_fractions, workloads, model_latencies):
            cfg = SimConfig(
                warmup_cycles=m.warmup_cycles,
                measure_cycles=m.measure_cycles,
                seed=seed + c * 10 + p,
            )
            res = EventDrivenWormholeSimulator(topo, wl, cfg, keep_samples=False).run()
            rows.append(
                GeneralizedRow(
                    children=c,
                    parents=p,
                    levels=n,
                    load_fraction=frac,
                    flit_load=frac * sat,
                    model_latency=float(model_latency),
                    sim_latency=res.latency_mean if res.stable else math.inf,
                    model_saturation=sat,
                )
            )
    return GeneralizedResult(
        message_flits=message_flits, rows=tuple(rows), mode_label=m.label
    )
