"""Experiment BUF — sensitivity of Figure 3 to router buffering.

The analytical model (and the paper's validation) rests on the
blocked-in-place wormhole abstraction: no buffering beyond the flit in
flight.  Real routers have small input FIFOs.  This experiment re-measures
the latency-vs-load curve with the input-buffered VC simulator at several
buffer depths and compares against the model and the blocked-in-place
event-driven simulator:

* ``B = 1``  — credit-turnaround-limited: each hop streams at half rate,
  so service times roughly double and the curve departs wildly from the
  model (the known small-buffer collapse of credit-based flow control);
* ``B = 2``  — full streaming rate; matches blocked-in-place and the model
  closely (this is the abstraction's operating point);
* ``B = 8``  — extra slack decouples neighbouring hops slightly, trimming
  latency a little at high load (the model remains a good, mildly
  conservative predictor).

Also validates the torus with dateline virtual channels against the Dally
baseline at loads where VC-less wormhole routing deadlocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.dally import DallyKaryNCubeModel
from ..config import SimConfig, Workload
from ..core.bft_model import ButterflyFatTreeModel
from ..core.throughput import saturation_injection_rate
from ..simulation.buffered_sim import BufferedWormholeSimulator
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from ..topology.butterfly_fattree import ButterflyFatTree
from ..topology.kary_ncube import KaryNCube
from ..util.tables import format_table
from .common import ExperimentMode, mode

__all__ = ["BufferingRow", "BufferingResult", "run_buffering"]


@dataclass(frozen=True)
class BufferingRow:
    flit_load: float
    model_latency: float
    event_sim_latency: float
    buffered: dict[int, float]  # buffer depth -> latency


@dataclass(frozen=True)
class TorusVcRow:
    flit_load: float
    vc_latency: float
    vc_censored: int
    novc_censored: int
    dally_latency: float


@dataclass(frozen=True)
class BufferingResult:
    num_processors: int
    message_flits: int
    depths: tuple[int, ...]
    rows: tuple[BufferingRow, ...]
    torus_rows: tuple[TorusVcRow, ...]
    mode_label: str

    def render(self) -> str:
        headers = ["load (fl/cyc/PE)", "model", "blocked-in-place sim"] + [
            f"buffered B={b}" for b in self.depths
        ]
        table = format_table(
            headers,
            [
                (r.flit_load, r.model_latency, r.event_sim_latency)
                + tuple(r.buffered[b] for b in self.depths)
                for r in self.rows
            ],
            title=(
                f"Buffering sensitivity, N={self.num_processors}, "
                f"{self.message_flits}-flit ({self.mode_label} mode)"
            ),
        )
        torus = format_table(
            [
                "load (fl/cyc/PE)",
                "dateline-VC latency",
                "VC censored",
                "no-VC censored (deadlock)",
                "Dally model",
            ],
            [
                (r.flit_load, r.vc_latency, r.vc_censored, r.novc_censored, r.dally_latency)
                for r in self.torus_rows
            ],
            title="8-ary 2-cube with 2 dateline virtual channels",
        )
        return table + "\n\n" + torus


def run_buffering(
    *,
    num_processors: int = 64,
    message_flits: int = 16,
    depths: tuple[int, ...] = (1, 2, 8),
    seed: int = 321,
    experiment_mode: ExperimentMode | None = None,
) -> BufferingResult:
    """Regenerate the buffering-sensitivity and torus-VC tables."""
    m = experiment_mode or mode()
    model = ButterflyFatTreeModel(num_processors)
    topo = ButterflyFatTree(num_processors)
    sat = saturation_injection_rate(model, message_flits).flit_load
    grid = np.linspace(0.15 * sat, 0.75 * sat, 4 if not m.full else 6)

    rows = []
    for load in grid:
        wl = Workload.from_flit_load(float(load), message_flits)
        cfg = SimConfig(
            warmup_cycles=m.warmup_cycles,
            measure_cycles=m.measure_cycles,
            seed=seed,
            drain_factor=6.0,
        )
        event = EventDrivenWormholeSimulator(topo, wl, cfg, keep_samples=False).run()
        buffered: dict[int, float] = {}
        for depth in depths:
            res = BufferedWormholeSimulator(
                topo, wl, cfg, keep_samples=False, buffer_flits=depth
            ).run()
            buffered[depth] = res.latency_mean if res.stable else math.inf
        rows.append(
            BufferingRow(
                flit_load=float(load),
                model_latency=model.latency(wl),
                event_sim_latency=event.latency_mean if event.stable else math.inf,
                buffered=buffered,
            )
        )

    torus = KaryNCube(8, 2)
    dally = DallyKaryNCubeModel(8, 2)
    torus_rows = []
    for load in (0.04, 0.08):
        wl = Workload.from_flit_load(load, 32)
        cfg = SimConfig(
            warmup_cycles=m.warmup_cycles,
            measure_cycles=m.measure_cycles,
            seed=seed + 1,
            drain_factor=6.0,
        )
        vc = BufferedWormholeSimulator(
            torus,
            wl,
            cfg,
            keep_samples=False,
            virtual_channels=2,
            vc_policy="dateline",
        ).run()
        novc = EventDrivenWormholeSimulator(torus, wl, cfg, keep_samples=False).run()
        torus_rows.append(
            TorusVcRow(
                flit_load=load,
                vc_latency=vc.latency_mean,
                vc_censored=vc.censored_tagged,
                novc_censored=novc.censored_tagged,
                dally_latency=dally.latency(wl),
            )
        )
    return BufferingResult(
        num_processors=num_processors,
        message_flits=message_flits,
        depths=depths,
        rows=tuple(rows),
        torus_rows=tuple(torus_rows),
        mode_label=m.label,
    )
