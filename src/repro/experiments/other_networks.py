"""Experiment GEN — the general model on other networks.

The paper's abstract claims the two ideas (multi-server queues and the
blocking correction) "can also be applied to other networks", and the
conclusion notes the framework extends beyond the fat-tree.  This
experiment substantiates the claim on the binary hypercube:

* the *general* Section-2 model (with the blocking correction) applied to
  the hypercube channel graph,
* the Draper–Ghosh-style prior-art baseline (same recursion, no blocking
  correction),
* flit-accurate simulation as ground truth,

and, separately, sanity-checks the Dally k-ary n-cube baseline at low load
(wormhole tori deadlock without virtual channels, which our simulators do
not model — see :mod:`repro.baselines.dally` — so torus comparisons stay in
the load range where cyclic waits are negligible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.dally import DallyKaryNCubeModel
from ..baselines.draper_ghosh import DraperGhoshHypercubeModel
from ..config import SimConfig, Workload
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from ..topology.hypercube import Hypercube
from ..topology.kary_ncube import KaryNCube
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["HypercubeRow", "OtherNetworksResult", "run_other_networks"]


@dataclass(frozen=True)
class HypercubeRow:
    flit_load: float
    sim_latency: float
    general_latency: float  # corrected general model
    baseline_latency: float  # Draper-Ghosh style (uncorrected)

    @property
    def general_err(self) -> float:
        return relative_error(self.general_latency, self.sim_latency)

    @property
    def baseline_err(self) -> float:
        return relative_error(self.baseline_latency, self.sim_latency)


@dataclass(frozen=True)
class TorusRow:
    flit_load: float
    sim_latency: float
    dally_latency: float
    censored: int


@dataclass(frozen=True)
class OtherNetworksResult:
    dimension: int
    message_flits: int
    hypercube_rows: tuple[HypercubeRow, ...]
    torus_rows: tuple[TorusRow, ...]
    mode_label: str

    def render(self) -> str:
        hc = format_table(
            [
                "load (fl/cyc/PE)",
                "sim latency",
                "general model",
                "err",
                "DG-style baseline",
                "err",
            ],
            [
                (
                    r.flit_load,
                    r.sim_latency,
                    r.general_latency,
                    r.general_err,
                    r.baseline_latency,
                    r.baseline_err,
                )
                for r in self.hypercube_rows
            ],
            title=(
                f"General model on the {2**self.dimension}-node hypercube, "
                f"{self.message_flits}-flit ({self.mode_label} mode)"
            ),
        )
        torus = format_table(
            ["load (fl/cyc/PE)", "sim latency", "Dally model", "censored msgs"],
            [
                (r.flit_load, r.sim_latency, r.dally_latency, r.censored)
                for r in self.torus_rows
            ],
            title="Dally baseline on the 8-ary 2-cube (low load; no virtual channels)",
        )
        return hc + "\n\n" + torus


def run_other_networks(
    *,
    dimension: int | None = None,
    message_flits: int = 32,
    seed: int = 55,
    experiment_mode: ExperimentMode | None = None,
) -> OtherNetworksResult:
    """Regenerate the other-networks comparison tables."""
    m = experiment_mode or mode()
    d = dimension if dimension is not None else (8 if m.full else 6)

    general = DraperGhoshHypercubeModel(d, corrected=True)
    baseline = DraperGhoshHypercubeModel(d, corrected=False)
    topo = Hypercube(d)

    # Loads up to ~80% of the general model's saturation.
    from ..core.throughput import saturation_injection_rate

    sat = saturation_injection_rate(general, message_flits).flit_load
    grid = np.linspace(0.1 * sat, 0.8 * sat, 5 if not m.full else 8)
    hypercube_rows = []
    for load in grid:
        wl = Workload.from_flit_load(float(load), message_flits)
        cfg = SimConfig(
            warmup_cycles=m.warmup_cycles, measure_cycles=m.measure_cycles, seed=seed
        )
        res = EventDrivenWormholeSimulator(topo, wl, cfg, keep_samples=False).run()
        hypercube_rows.append(
            HypercubeRow(
                flit_load=float(load),
                sim_latency=res.latency_mean if res.stable else math.inf,
                general_latency=general.latency(wl),
                baseline_latency=baseline.latency(wl),
            )
        )

    dally = DallyKaryNCubeModel(8, 2)
    torus = KaryNCube(8, 2)
    torus_rows = []
    for load in (0.005, 0.01, 0.02):
        wl = Workload.from_flit_load(load, message_flits)
        cfg = SimConfig(
            warmup_cycles=m.warmup_cycles, measure_cycles=m.measure_cycles, seed=seed + 1
        )
        res = EventDrivenWormholeSimulator(torus, wl, cfg, keep_samples=False).run()
        torus_rows.append(
            TorusRow(
                flit_load=load,
                sim_latency=res.latency_mean,
                dally_latency=dally.latency(wl),
                censored=res.censored_tagged,
            )
        )
    return OtherNetworksResult(
        dimension=d,
        message_flits=message_flits,
        hypercube_rows=tuple(hypercube_rows),
        torus_rows=tuple(torus_rows),
        mode_label=m.label,
    )
