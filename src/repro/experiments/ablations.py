"""Experiment ABL — ablations of the model's two novelties.

The paper identifies two novel ingredients: (1) multi-server queues for the
redundant up-links, and (2) the wormhole blocking-probability correction
``P_{i|j}``.  It also makes two further modelling choices: the Draper–Ghosh
SCV approximation (Eq. 5) and the unconditional climb probability ``P^_l``.
This experiment quantifies each choice by re-running the Figure-3 workload
under every :class:`~repro.core.variants.ModelVariant` and scoring each
variant's latency predictions against one shared set of simulation
measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import SimConfig
from ..core.bft_model import ButterflyFatTreeModel
from ..core.sweep import latency_sweep
from ..core.throughput import saturation_injection_rate
from ..core.variants import ModelVariant
from ..errors import SaturatedError
from ..simulation.runner import simulated_latency_curve
from ..topology.butterfly_fattree import ButterflyFatTree
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["AblationRow", "AblationResult", "run_ablations", "default_variants"]


def default_variants() -> tuple[ModelVariant, ...]:
    """The variant set scored by the ablation experiment."""
    return (
        ModelVariant.paper(),
        ModelVariant.no_multiserver(),
        ModelVariant.no_blocking_correction(),
        ModelVariant.naive(),
        ModelVariant.deterministic_scv(),
        ModelVariant.exponential_scv(),
        ModelVariant.conditional_up(),
    )


@dataclass(frozen=True)
class AblationRow:
    variant: str
    mean_abs_err: float
    max_abs_err: float
    saturation_flit_load: float


@dataclass(frozen=True)
class AblationResult:
    num_processors: int
    message_flits: int
    flit_loads: tuple[float, ...]
    sim_latencies: tuple[float, ...]
    rows: tuple[AblationRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            ["variant", "mean |rel err|", "max |rel err|", "predicted sat (fl/cyc/PE)"],
            [
                (r.variant, r.mean_abs_err, r.max_abs_err, r.saturation_flit_load)
                for r in self.rows
            ],
            title=(
                f"Model-variant ablations vs simulation, N={self.num_processors}, "
                f"{self.message_flits}-flit ({self.mode_label} mode)"
            ),
        )


def run_ablations(
    *,
    num_processors: int | None = None,
    message_flits: int = 32,
    n_points: int | None = None,
    seed: int = 99,
    variants: tuple[ModelVariant, ...] | None = None,
    experiment_mode: ExperimentMode | None = None,
) -> AblationResult:
    """Score every model variant against one set of simulation runs."""
    m = experiment_mode or mode()
    n = num_processors if num_processors is not None else (1024 if m.full else 256)
    points = n_points if n_points is not None else (7 if m.full else 5)
    variants = variants or default_variants()

    paper_model = ButterflyFatTreeModel(n)
    sat = saturation_injection_rate(paper_model, message_flits).flit_load
    grid = np.linspace(0.05 * sat, 0.85 * sat, points)

    topo = ButterflyFatTree(n)
    cfg = SimConfig(
        warmup_cycles=m.warmup_cycles, measure_cycles=m.measure_cycles, seed=seed
    )
    sim_curve = simulated_latency_curve(
        topo, message_flits, grid, cfg, replications=m.replications, label="sim"
    )

    rows = []
    for variant in variants:
        model = ButterflyFatTreeModel(n, variant)
        # Batch path: every variant's whole grid is one vectorized solve.
        curve = latency_sweep(model, message_flits, grid, label=variant.label)
        errs = [
            abs(relative_error(float(mv), float(sv)))
            for mv, sv in zip(curve.latencies, sim_curve.latencies)
            if math.isfinite(sv)
        ]
        finite_errs = [e for e in errs if math.isfinite(e)]
        try:
            v_sat = saturation_injection_rate(model, message_flits).flit_load
        except SaturatedError:
            v_sat = math.nan
        rows.append(
            AblationRow(
                variant=variant.label,
                mean_abs_err=float(np.mean(finite_errs)) if finite_errs else math.inf,
                max_abs_err=float(np.max(errs)) if errs else math.nan,
                saturation_flit_load=v_sat,
            )
        )
    return AblationResult(
        num_processors=n,
        message_flits=message_flits,
        flit_loads=tuple(float(x) for x in grid),
        sim_latencies=tuple(float(x) for x in sim_curve.latencies),
        rows=tuple(rows),
        mode_label=m.label,
    )
