"""Experiment THRU — saturation throughput, model vs. simulation.

The paper reports (Sections 3.5-3.6, text) that the model "produced
accurate predictions on latency and throughput for all cases under study":
networks up to 1024 processors and message lengths 16/32/64 flits.  This
experiment regenerates the underlying comparison as a table of saturation
loads (flits/cycle/PE): the model's Eq. 26 operating point against the
empirical saturation measured by driving the simulator.

A structural property of the model worth noting (and verified in the test
suite): at a fixed *flit* load the solution scales linearly with message
length, so the model's saturation flit-load is independent of message
length.  The simulation's saturation shows the same near-independence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig
from ..runs import Runner, Scenario
from ..simulation.saturation import empirical_saturation
from ..topology.butterfly_fattree import ButterflyFatTree
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["ThroughputRow", "ThroughputResult", "run_throughput_table"]


@dataclass(frozen=True)
class ThroughputRow:
    num_processors: int
    message_flits: int
    model_saturation: float  # flits/cycle/PE
    sim_saturation: float  # flits/cycle/PE

    @property
    def rel_err(self) -> float:
        return relative_error(self.model_saturation, self.sim_saturation)


@dataclass(frozen=True)
class ThroughputResult:
    rows: tuple[ThroughputRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            ["N", "flits", "model sat (fl/cyc/PE)", "sim sat (fl/cyc/PE)", "rel err"],
            [
                (r.num_processors, r.message_flits, r.model_saturation, r.sim_saturation, r.rel_err)
                for r in self.rows
            ],
            title=f"Saturation throughput, model vs simulation ({self.mode_label} mode)",
        )


def run_throughput_table(
    *,
    sizes: tuple[int, ...] | None = None,
    message_lengths: tuple[int, ...] | None = None,
    seed: int = 77,
    experiment_mode: ExperimentMode | None = None,
) -> ThroughputResult:
    """Regenerate the model-vs-simulation saturation comparison."""
    m = experiment_mode or mode()
    if sizes is None:
        sizes = (16, 64, 256, 1024) if m.full else (16, 64, 256)
    if message_lengths is None:
        message_lengths = (16, 32, 64) if m.full else (16, 32)
    runner = Runner()
    rows = []
    for n in sizes:
        topo = ButterflyFatTree(n)
        for flits in message_lengths:
            # The model side is one facade run (no curve needed): the batch
            # backend's vectorized Eq. 26 search answers the saturation
            # question directly.
            model_sat = runner.run(
                Scenario(
                    num_processors=n,
                    message_flits=flits,
                    backend="batch",
                    sweep_points=0,
                    label="throughput-table",
                )
            ).metrics["saturation"]["flit_load"]
            cfg = SimConfig(
                warmup_cycles=m.warmup_cycles / 1.5,
                measure_cycles=m.measure_cycles / 1.5,
                seed=seed + n + flits,
                drain_factor=2.0,
            )
            sim_sat = empirical_saturation(
                topo,
                flits,
                cfg,
                replications=m.replications,
                rel_tol=0.02 if m.full else 0.04,
                initial_rate=0.25 * model_sat / flits,
            ).flit_load
            rows.append(
                ThroughputRow(
                    num_processors=n,
                    message_flits=flits,
                    model_saturation=model_sat,
                    sim_saturation=sim_sat,
                )
            )
    return ThroughputResult(rows=tuple(rows), mode_label=m.label)
