"""Experiment DESIGN — size a CM-5-class machine under a latency budget.

The capacity-planning question that motivated fat-tree machines (CM-5,
Meiko CS-2): given a per-processor bandwidth demand and a latency budget
for fine-grained messages, which butterfly fat-tree sizes sustain the
workload — and does the answer change when the traffic is not uniformly
random?

This experiment runs the design-space explorer once over the BFT size
ladder × message-length ladder × a set of traffic scenarios, and reports

* per scenario, the largest feasible configuration under the budget (the
  classic sizing table, now pattern-aware),
* the cheapest feasible design overall (Solnushkin's selection rule), and
* the latency / cost / headroom Pareto frontier of the whole space.

Quick mode stops at 256 PEs; ``REPRO_FULL=1`` extends the ladder to the
paper's 1024-PE machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..design import DesignSpace, ExplorationResult, Requirements, bft_space, explore
from ..traffic.spec import HotspotSpec, TrafficSpec, TransposeSpec, UniformSpec
from ..util.tables import format_table
from .common import mode

__all__ = [
    "DesignExplorationResult",
    "default_design_scenarios",
    "run_design_exploration",
]


def default_design_scenarios() -> tuple[TrafficSpec, ...]:
    """The traffic scenarios the sizing study sweeps."""
    return (UniformSpec(), HotspotSpec(fraction=0.05, target=0), TransposeSpec())


@dataclass(frozen=True)
class DesignExplorationResult:
    """The exploration plus the per-scenario sizing summary."""

    result: ExplorationResult
    mode_label: str

    def sizing_rows(self) -> list[tuple]:
        """Largest feasible (N, flits) per traffic scenario."""
        rows = []
        patterns = sorted({e.candidate.pattern for e in self.result.evaluations})
        for pattern in patterns:
            feasible = [
                e for e in self.result.feasible if e.candidate.pattern == pattern
            ]
            if feasible:
                best = max(
                    feasible,
                    key=lambda e: (
                        e.candidate.num_processors,
                        e.candidate.message_flits,
                    ),
                )
                rows.append(
                    (
                        pattern,
                        best.candidate.num_processors,
                        best.candidate.message_flits,
                        best.latency,
                        best.headroom,
                        best.cost.total,
                    )
                )
            else:
                rows.append((pattern, 0, 0, float("nan"), float("nan"), float("nan")))
        return rows

    def render(self) -> str:
        req = self.result.requirements
        sizing = format_table(
            [
                "pattern",
                "largest feasible N",
                "flits",
                "latency @ demand",
                "headroom (x)",
                "cost",
            ],
            self.sizing_rows(),
            title=(
                f"CM-5-class sizing under a latency budget "
                f"(<= {req.latency_slo:.0f} cycles @ {req.demand_flit_load} "
                f"fl/cyc/PE, {self.mode_label} mode)"
            ),
        )
        return sizing + "\n\n" + self.result.render()


def run_design_exploration(
    *,
    scenarios: tuple[TrafficSpec, ...] | None = None,
    latency_slo: float = 75.0,
    demand_flit_load: float = 0.02,
    min_headroom: float = 1.0,
    processes: int = 1,
) -> DesignExplorationResult:
    """Run the sizing study (see module docstring)."""
    m = mode()
    sizes = (16, 64, 256, 1024) if m.full else (16, 64, 256)
    space = DesignSpace(
        families=(bft_space(sizes),),
        message_lengths=(16, 32, 64),
        patterns=scenarios if scenarios is not None else default_design_scenarios(),
    )
    requirements = Requirements(
        demand_flit_load=demand_flit_load,
        latency_slo=latency_slo,
        min_headroom=min_headroom,
    )
    result = explore(space, requirements, processes=processes)
    return DesignExplorationResult(result=result, mode_label=m.label)
