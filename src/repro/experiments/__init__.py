"""Experiment harness (S8 in DESIGN.md) — one module per paper artifact.

* :mod:`repro.experiments.fig3` — Figure 3 (latency vs load, N=1024);
* :mod:`repro.experiments.throughput_table` — saturation throughput table
  (Sections 3.5/3.6);
* :mod:`repro.experiments.scaling` — network-size sweep ("up to 1024
  processing nodes");
* :mod:`repro.experiments.ablations` — model-variant ablations (the two
  novelties + modelling choices);
* :mod:`repro.experiments.other_networks` — the general model on the
  hypercube plus the Dally torus baseline;
* :mod:`repro.experiments.crosscheck` — event-driven vs flit-level
  simulator validation;
* :mod:`repro.experiments.traffic_scenarios` — pattern-aware model vs
  simulation under non-uniform traffic (hotspot, transpose, ...);
* :mod:`repro.experiments.design_exploration` — SLO-driven sizing of a
  CM-5-class machine through the design-space explorer;
* :mod:`repro.experiments.topology_matrix` — one Scenario per topology
  family through the model/baseline/simulate backends of the facade;
* :mod:`repro.experiments.faults` — degraded-mode curves: per-family
  saturation and latency as seeded random link failures accumulate.

All experiments honour ``REPRO_FULL=1`` for paper-scale runs and default to
quick mode (see :mod:`repro.experiments.common`).
"""

from .ablations import AblationResult, run_ablations
from .buffering import BufferingResult, run_buffering
from .common import ExperimentMode, full_mode, mode, relative_error
from .crosscheck import CrossCheckResult, poisson_trace, run_crosscheck
from .design_exploration import (
    DesignExplorationResult,
    default_design_scenarios,
    run_design_exploration,
)
from .faults import (
    FaultDegradationResult,
    FaultDegradationRow,
    run_fault_degradation,
)
from .fig3 import Fig3Result, run_fig3
from .generalized import GeneralizedResult, run_generalized
from .other_networks import OtherNetworksResult, run_other_networks
from .report import default_results_dir, write_report
from .scaling import ScalingResult, run_scaling
from .service_times import ServiceTimeResult, run_service_times
from .throughput_table import ThroughputResult, run_throughput_table
from .topology_matrix import (
    TopologyMatrixResult,
    TopologyMatrixRow,
    run_topology_matrix,
)
from .traffic_scenarios import (
    TrafficScenarioRow,
    TrafficScenariosResult,
    default_scenarios,
    run_traffic_scenarios,
)

__all__ = [
    "AblationResult",
    "run_ablations",
    "BufferingResult",
    "run_buffering",
    "ExperimentMode",
    "full_mode",
    "mode",
    "relative_error",
    "CrossCheckResult",
    "poisson_trace",
    "run_crosscheck",
    "DesignExplorationResult",
    "default_design_scenarios",
    "run_design_exploration",
    "FaultDegradationResult",
    "FaultDegradationRow",
    "run_fault_degradation",
    "Fig3Result",
    "run_fig3",
    "GeneralizedResult",
    "run_generalized",
    "OtherNetworksResult",
    "run_other_networks",
    "default_results_dir",
    "write_report",
    "ScalingResult",
    "run_scaling",
    "ServiceTimeResult",
    "run_service_times",
    "ThroughputResult",
    "run_throughput_table",
    "TopologyMatrixResult",
    "TopologyMatrixRow",
    "run_topology_matrix",
    "TrafficScenarioRow",
    "TrafficScenariosResult",
    "default_scenarios",
    "run_traffic_scenarios",
]
