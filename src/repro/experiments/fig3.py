"""Experiment FIG3 — reproduce Figure 3 of the paper.

Figure 3 plots average latency (cycles) against offered load (flits per
cycle per processor) for a 1024-processor butterfly fat-tree with message
lengths 16, 32 and 64 flits, overlaying the analytical model ("Model") and
simulation ("Experiment").  This module regenerates both families of
curves and reports, per message length, the model-vs-simulation relative
error below saturation — the paper's qualitative claim being that the two
"agree very closely over a wide range of load rate".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..config import SimConfig
from ..core.sweep import LatencyCurve
from ..runs import Runner, Scenario
from ..simulation.runner import simulated_latency_curve
from ..topology.butterfly_fattree import ButterflyFatTree
from ..util.tables import ascii_curve, format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["Fig3Series", "Fig3Result", "run_fig3"]


@dataclass(frozen=True)
class Fig3Series:
    """Model and simulation curves for one message length."""

    message_flits: int
    model: LatencyCurve
    simulation: LatencyCurve
    model_saturation: float  # flits/cycle/PE

    def rows(self) -> list[tuple]:
        out = []
        for load, m_lat, s_lat in zip(
            self.model.flit_loads, self.model.latencies, self.simulation.latencies
        ):
            out.append(
                (
                    self.message_flits,
                    float(load),
                    float(m_lat),
                    float(s_lat),
                    relative_error(float(m_lat), float(s_lat)),
                )
            )
        return out

    def mean_abs_error_below(self, fraction: float = 0.9) -> float:
        """Mean |relative error| over loads below ``fraction`` of saturation."""
        errs = []
        for load, m_lat, s_lat in zip(
            self.model.flit_loads, self.model.latencies, self.simulation.latencies
        ):
            if load <= fraction * self.model_saturation and math.isfinite(s_lat):
                e = relative_error(float(m_lat), float(s_lat))
                if math.isfinite(e):
                    errs.append(abs(e))
        return float(np.mean(errs)) if errs else math.nan


@dataclass(frozen=True)
class Fig3Result:
    """All series of the figure plus rendering helpers."""

    num_processors: int
    series: tuple[Fig3Series, ...]
    mode_label: str
    extra: dict = field(default_factory=dict, compare=False)

    def render(self) -> str:
        rows = [r for s in self.series for r in s.rows()]
        table = format_table(
            ["flits", "load (fl/cyc/PE)", "model latency", "sim latency", "rel err"],
            rows,
            floatfmt=".4g",
            title=(
                f"Figure 3 — latency vs load, N={self.num_processors} "
                f"({self.mode_label} mode)"
            ),
        )
        plots = []
        for s in self.series:
            plots.append(
                ascii_curve(
                    list(s.model.flit_loads),
                    {
                        f"model {s.message_flits}f": list(s.model.latencies),
                        f"sim {s.message_flits}f": list(s.simulation.latencies),
                    },
                    x_label="flits/cycle/PE",
                    y_label="latency (cycles)",
                )
            )
        summary = format_table(
            ["flits", "model saturation", "mean |rel err| (<0.9 sat)"],
            [
                (s.message_flits, s.model_saturation, s.mean_abs_error_below())
                for s in self.series
            ],
            title="Summary",
        )
        return "\n\n".join([table, summary] + plots)


def run_fig3(
    num_processors: int = 1024,
    message_lengths: tuple[int, ...] = (16, 32, 64),
    *,
    n_points: int | None = None,
    seed: int = 2024,
    experiment_mode: ExperimentMode | None = None,
    processes: int | None = None,
) -> Fig3Result:
    """Regenerate Figure 3 (model + simulation latency-vs-load curves).

    The load grid spans 2%..97% of the *model's* saturation load for each
    message length, mirroring the figure's x-range which ends just past the
    knee of the curves.  Simulation points fan out over ``processes``
    workers (default: up to 4, bounded by the CPU count); results are
    bit-identical to a serial run.
    """
    import os

    m = experiment_mode or mode()
    points = n_points if n_points is not None else (10 if m.full else 7)
    if processes is None:
        processes = max(1, min(4, os.cpu_count() or 1))
    runner = Runner()
    topo = ButterflyFatTree(num_processors)
    series = []
    for flits in message_lengths:
        # The model side is one facade run: the batch backend derives the
        # figure's load grid (2%..97% of saturation) and solves the whole
        # curve in one vectorized pass.
        res = runner.run(
            Scenario(
                num_processors=num_processors,
                message_flits=flits,
                backend="batch",
                sweep_points=points,
                sweep_fraction=0.97,
                label="fig3",
            )
        )
        sat = res.metrics["saturation"]["flit_load"]
        grid = np.asarray(res.metrics["curve"]["flit_loads"], dtype=float)
        model_curve = LatencyCurve(
            label=f"Model {flits}-flit",
            message_flits=flits,
            flit_loads=grid,
            latencies=np.asarray(res.metrics["curve"]["latencies"], dtype=float),
        )
        sim_cfg = SimConfig(
            warmup_cycles=m.warmup_cycles,
            measure_cycles=m.measure_cycles,
            seed=seed + flits,
        )
        sim_curve = simulated_latency_curve(
            topo,
            flits,
            grid,
            sim_cfg,
            replications=m.replications,
            label=f"Experiment {flits}-flit",
            processes=processes,
        )
        series.append(
            Fig3Series(
                message_flits=flits,
                model=model_curve,
                simulation=sim_curve,
                model_saturation=sat,
            )
        )
    return Fig3Result(
        num_processors=num_processors,
        series=tuple(series),
        mode_label=m.label,
    )
