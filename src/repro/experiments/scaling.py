"""Experiment SCALE — latency across network sizes.

Section 3.6 states the model was validated "for networks with up to 1024
processing nodes".  This experiment sweeps the network size at a fixed
message length and compares model and simulation at three operating points
per size: (near) zero load, 40% of saturation, and 75% of saturation.  The
zero-load column also checks the closed-form ``L0 = s/f + D_bar - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig, Workload
from ..core.bft_model import ButterflyFatTreeModel
from ..core.throughput import saturation_injection_rate
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from ..topology.butterfly_fattree import ButterflyFatTree
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["ScalingRow", "ScalingResult", "run_scaling"]


@dataclass(frozen=True)
class ScalingRow:
    num_processors: int
    average_distance: float
    load_fraction: float  # of model saturation
    flit_load: float
    model_latency: float
    sim_latency: float

    @property
    def rel_err(self) -> float:
        return relative_error(self.model_latency, self.sim_latency)


@dataclass(frozen=True)
class ScalingResult:
    message_flits: int
    rows: tuple[ScalingRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            [
                "N",
                "D_bar",
                "load/sat",
                "load (fl/cyc/PE)",
                "model latency",
                "sim latency",
                "rel err",
            ],
            [
                (
                    r.num_processors,
                    r.average_distance,
                    r.load_fraction,
                    r.flit_load,
                    r.model_latency,
                    r.sim_latency,
                    r.rel_err,
                )
                for r in self.rows
            ],
            title=(
                f"Scaling with network size, {self.message_flits}-flit messages "
                f"({self.mode_label} mode)"
            ),
        )


def run_scaling(
    *,
    sizes: tuple[int, ...] | None = None,
    message_flits: int = 32,
    load_fractions: tuple[float, ...] = (0.05, 0.4, 0.75),
    seed: int = 31,
    experiment_mode: ExperimentMode | None = None,
) -> ScalingResult:
    """Regenerate the size sweep (model vs simulation at scaled loads)."""
    m = experiment_mode or mode()
    if sizes is None:
        sizes = (16, 64, 256, 1024) if m.full else (16, 64, 256)
    rows = []
    for n in sizes:
        model = ButterflyFatTreeModel(n)
        topo = ButterflyFatTree(n)
        sat = saturation_injection_rate(model, message_flits).flit_load
        for frac in load_fractions:
            load = frac * sat
            wl = Workload.from_flit_load(load, message_flits)
            cfg = SimConfig(
                warmup_cycles=m.warmup_cycles,
                measure_cycles=m.measure_cycles,
                seed=seed + n,
            )
            res = EventDrivenWormholeSimulator(topo, wl, cfg, keep_samples=False).run()
            rows.append(
                ScalingRow(
                    num_processors=n,
                    average_distance=model.average_distance,
                    load_fraction=frac,
                    flit_load=load,
                    model_latency=model.latency(wl),
                    sim_latency=res.latency_mean if res.stable else float("inf"),
                )
            )
    return ScalingResult(
        message_flits=message_flits, rows=tuple(rows), mode_label=m.label
    )
