"""Experiment TRAFFIC — pattern-aware model vs. simulation cross-check.

The paper validates its model under uniform traffic only (assumption 1).
This experiment extends the validation to non-uniform destination patterns:
for each registered scenario it

1. builds the pattern-aware per-channel solver
   (:meth:`~repro.core.bft_model.ButterflyFatTreeModel.traffic_model`),
2. saturation-searches it (batched Eq. 26) for the pattern's own
   saturation load,
3. probes an operating point at half that load, and
4. drives the event-driven simulator with the *same*
   :class:`~repro.traffic.spec.TrafficSpec` and tabulates model vs.
   measured latency.

The headline claim (enforced in the test suite): analytical and simulated
mean latency agree within 10% at half saturation for hotspot (f=0.05),
transpose and bit-reversal traffic on a 64-PE butterfly fat-tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import SimConfig, Workload
from ..core.bft_model import ButterflyFatTreeModel
from ..core.throughput import saturation_injection_rate
from ..simulation.traffic import PoissonTraffic
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from ..topology.butterfly_fattree import ButterflyFatTree
from ..traffic.spec import (
    BitReversalSpec,
    HotspotSpec,
    TornadoSpec,
    TrafficSpec,
    TransposeSpec,
    UniformSpec,
)
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = [
    "TrafficScenarioRow",
    "TrafficScenariosResult",
    "default_scenarios",
    "run_traffic_scenarios",
]


def default_scenarios() -> tuple[TrafficSpec, ...]:
    """The scenario set the experiment (and its test) sweeps."""
    return (
        UniformSpec(),
        HotspotSpec(fraction=0.05, target=0),
        TransposeSpec(),
        BitReversalSpec(),
        TornadoSpec(),
    )


@dataclass(frozen=True)
class TrafficScenarioRow:
    pattern: str
    saturation_load: float
    probe_load: float
    model_latency: float
    sim_latency: float
    sim_stable: bool

    @property
    def rel_err(self) -> float:
        return relative_error(self.model_latency, self.sim_latency)


@dataclass(frozen=True)
class TrafficScenariosResult:
    num_processors: int
    message_flits: int
    rows: tuple[TrafficScenarioRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            [
                "pattern",
                "sat load (fl/cyc/PE)",
                "probe load",
                "model latency",
                "sim latency",
                "rel err",
                "steady state",
            ],
            [
                (
                    r.pattern,
                    r.saturation_load,
                    r.probe_load,
                    r.model_latency,
                    r.sim_latency,
                    r.rel_err,
                    "yes" if r.sim_stable else "no",
                )
                for r in self.rows
            ],
            title=(
                f"Traffic scenarios, N={self.num_processors}, "
                f"{self.message_flits}-flit ({self.mode_label} mode); "
                "probe at 0.5x pattern saturation"
            ),
        )


def run_traffic_scenarios(
    *,
    num_processors: int = 64,
    message_flits: int = 16,
    scenarios: tuple[TrafficSpec, ...] | None = None,
    probe_fraction: float = 0.5,
    seed: int = 23,
    experiment_mode: ExperimentMode | None = None,
) -> TrafficScenariosResult:
    """Tabulate pattern-aware model predictions against simulation."""
    m = experiment_mode or mode()
    scenarios = scenarios if scenarios is not None else default_scenarios()
    topo = ButterflyFatTree(num_processors)
    model = ButterflyFatTreeModel(num_processors)
    rows = []
    for spec in scenarios:
        tm = model.traffic_model(spec, message_flits)
        sat = saturation_injection_rate(tm, message_flits)
        wl = Workload(message_flits, probe_fraction * sat.injection_rate)
        predicted = float(
            tm.latency_batch(np.array([wl.injection_rate]), message_flits)[0]
        )
        traffic = PoissonTraffic(num_processors, wl, seed=seed, spec=spec)
        cfg = SimConfig(
            warmup_cycles=m.warmup_cycles,
            measure_cycles=m.measure_cycles,
            seed=seed,
        )
        result = EventDrivenWormholeSimulator(
            topo, wl, cfg, traffic=traffic, keep_samples=False
        ).run()
        rows.append(
            TrafficScenarioRow(
                pattern=spec.name,
                saturation_load=sat.flit_load,
                probe_load=wl.flit_load,
                model_latency=predicted,
                sim_latency=result.latency_mean if result.stable else math.inf,
                sim_stable=result.stable,
            )
        )
    return TrafficScenariosResult(
        num_processors=num_processors,
        message_flits=message_flits,
        rows=tuple(rows),
        mode_label=m.label,
    )
