"""Experiment FAULT — degradation curves for networks with failed links.

How gracefully does each topology family degrade as links die?  For every
family the demand point is anchored at half the *nominal* (fault-free)
model saturation, then ``k`` uniformly random level>=1 links are killed
(seeded, so the curve is reproducible) and the same declarative
:class:`~repro.runs.Scenario` — now carrying ``faults=`` — is re-answered
by the batch analytical backend: degraded saturation, the latency of the
surviving traffic at the unchanged demand, and the fraction of nominal
capacity retained.

A draw that disconnects the network is *reported*, not skipped: wormhole
minimal routing cannot route around a cut, so a ``partitioned`` row is an
honest answer about that family's redundancy (a fat tree with one parent
per switch partitions on the first up-link failure; the paper's 4-2 BFT
does not).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..errors import PartitionedNetworkError
from ..runs.runner import Runner
from ..util.tables import format_table
from .common import ExperimentMode, mode
from .topology_matrix import _family_scenarios

__all__ = ["FaultDegradationRow", "FaultDegradationResult", "run_fault_degradation"]

#: Demand operating point as a fraction of the *nominal* saturation load.
_DEMAND_FRACTION = 0.5


@dataclass(frozen=True)
class FaultDegradationRow:
    """One (family, failure count) point of the degradation curve."""

    topology: str
    num_processors: int
    failures: int
    dead_links: int
    status: str  # "ok" | "partitioned"
    saturation_flit_load: float
    latency: float
    retained: float  # degraded saturation / nominal saturation

    @property
    def partitioned(self) -> bool:
        return self.status == "partitioned"


@dataclass(frozen=True)
class FaultDegradationResult:
    message_flits: int
    fault_seed: int
    rows: tuple[FaultDegradationRow, ...]
    mode_label: str

    def render(self) -> str:
        def fmt(value: float) -> object:
            return "-" if math.isnan(value) else value

        return format_table(
            [
                "topology",
                "N",
                "k dead",
                "links out",
                "status",
                "sat load",
                "latency @ demand",
                "capacity retained",
            ],
            [
                (
                    r.topology,
                    r.num_processors,
                    r.failures,
                    r.dead_links,
                    r.status,
                    fmt(r.saturation_flit_load),
                    fmt(r.latency),
                    fmt(r.retained),
                )
                for r in self.rows
            ],
            title=(
                f"Degraded-mode curves, {self.message_flits}-flit messages "
                f"({self.mode_label} mode; demand fixed at "
                f"{_DEMAND_FRACTION:.0%} of each family's fault-free "
                f"saturation; failures drawn with seed {self.fault_seed})"
            ),
        )

    def to_json(self) -> dict:
        return {
            "message_flits": self.message_flits,
            "fault_seed": self.fault_seed,
            "mode": self.mode_label,
            "demand_fraction": _DEMAND_FRACTION,
            "rows": [
                {
                    "topology": r.topology,
                    "num_processors": r.num_processors,
                    "failures": r.failures,
                    "dead_links": r.dead_links,
                    "status": r.status,
                    "saturation_flit_load": r.saturation_flit_load,
                    "latency": r.latency,
                    "retained": r.retained,
                }
                for r in self.rows
            ],
        }


def run_fault_degradation(
    *,
    message_flits: int = 16,
    fault_seed: int = 7,
    registry=None,
    experiment_mode: ExperimentMode | None = None,
) -> FaultDegradationResult:
    """Degradation curve per family over ``k`` random link failures.

    ``registry`` (a :class:`~repro.runs.RunRegistry`) persists every
    non-partitioned degraded run so curves diff across PRs.
    """
    m = experiment_mode or mode()
    runner = Runner(registry=registry)
    failure_counts = (0, 1, 2, 4) if m.full else (0, 1, 2)
    rows: list[FaultDegradationRow] = []
    for base in _family_scenarios(m.full, message_flits):
        probe = runner.run(base.with_backend("batch"), save=False)
        nominal_sat = probe.metrics["saturation"]["flit_load"]
        demand = _DEMAND_FRACTION * nominal_sat
        for k in failure_counts:
            scenario = dataclasses.replace(
                base,
                flit_load=demand,
                label="fault-degradation",
                faults=(
                    None
                    if k == 0
                    else {"random_link_failures": k, "seed": fault_seed}
                ),
            )
            try:
                record = runner.run(scenario.with_backend("batch"))
            except PartitionedNetworkError:
                rows.append(
                    FaultDegradationRow(
                        topology=base.topology,
                        num_processors=base.num_processors,
                        failures=k,
                        dead_links=k,
                        status="partitioned",
                        saturation_flit_load=float("nan"),
                        latency=float("nan"),
                        retained=float("nan"),
                    )
                )
                continue
            fault_info = record.metrics.get("faults")
            dead = len(fault_info["dead_links"]) if fault_info else 0
            sat = record.metrics["saturation"]["flit_load"]
            rows.append(
                FaultDegradationRow(
                    topology=base.topology,
                    num_processors=base.num_processors,
                    failures=k,
                    dead_links=dead,
                    status="ok",
                    saturation_flit_load=sat,
                    latency=record.metrics["point"]["latency"],
                    retained=sat / nominal_sat,
                )
            )
    return FaultDegradationResult(
        message_flits=message_flits,
        fault_seed=fault_seed,
        rows=tuple(rows),
        mode_label=m.label,
    )
