"""Rendering and persistence of experiment outputs.

Benchmarks write their rendered tables under ``benchmarks/results/`` so a
tee'd benchmark log and the result files together document a run; the
``pytest_terminal_summary`` hook in ``benchmarks/conftest.py`` echoes the
files into the terminal report.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["write_report", "default_results_dir"]


def default_results_dir() -> Path:
    """``benchmarks/results`` next to the repository root (created on demand).

    Overridable through the ``REPRO_RESULTS_DIR`` environment variable so
    packaged installations can redirect output to a writable location.
    """
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_report(name: str, content: str, directory: Path | None = None) -> Path:
    """Persist one experiment's rendered output; returns the file path."""
    directory = directory or default_results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path
