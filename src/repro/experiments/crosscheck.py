"""Experiment XVAL — cross-validation of the two simulators.

The event-driven worm-level simulator and the cycle-driven flit-level
simulator implement the same wormhole semantics with entirely different
mechanics (algebraic release times versus per-cycle rigid-train movement).
Driving both with the *same* integer arrival trace must therefore produce
matching message counts and statistically indistinguishable latency
distributions (they can differ per-message only through random tie-breaks
under contention, which both resolve uniformly).

This experiment generates shared Poisson traces at several loads and
reports both simulators' measurements side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SimConfig, Workload
from ..simulation.flit_sim import FlitLevelWormholeSimulator
from ..simulation.traffic import Arrival, TraceTraffic
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from ..topology.butterfly_fattree import ButterflyFatTree
from ..util.tables import format_table
from .common import ExperimentMode, mode, relative_error

__all__ = ["CrossCheckRow", "CrossCheckResult", "run_crosscheck", "poisson_trace"]


def poisson_trace(
    num_pes: int,
    injection_rate: float,
    horizon: float,
    seed: int,
    *,
    integer_times: bool = True,
) -> TraceTraffic:
    """Generate a shared Poisson/uniform arrival trace.

    With ``integer_times`` the aggregate arrival process is sampled in
    continuous time and floored to whole cycles, so both simulators see
    bit-identical inputs.
    """
    rng = np.random.default_rng(seed)
    items: list[Arrival] = []
    t = 0.0
    total_rate = injection_rate * num_pes
    if total_rate <= 0:
        return TraceTraffic([])
    while True:
        t += float(rng.exponential(1.0 / total_rate))
        if t >= horizon:
            break
        src = int(rng.integers(num_pes))
        dst = int(rng.integers(num_pes - 1))
        if dst >= src:
            dst += 1
        items.append(Arrival(float(int(t)) if integer_times else t, src, dst))
    items.sort(key=lambda a: a.time)
    return TraceTraffic(items)


@dataclass(frozen=True)
class CrossCheckRow:
    num_processors: int
    flit_load: float
    event_latency: float
    flit_latency: float
    event_delivered: int
    flit_delivered: int

    @property
    def rel_diff(self) -> float:
        return relative_error(self.event_latency, self.flit_latency)


@dataclass(frozen=True)
class CrossCheckResult:
    message_flits: int
    rows: tuple[CrossCheckRow, ...]
    mode_label: str

    def render(self) -> str:
        return format_table(
            [
                "N",
                "load (fl/cyc/PE)",
                "event-driven latency",
                "flit-level latency",
                "rel diff",
                "event n",
                "flit n",
            ],
            [
                (
                    r.num_processors,
                    r.flit_load,
                    r.event_latency,
                    r.flit_latency,
                    r.rel_diff,
                    r.event_delivered,
                    r.flit_delivered,
                )
                for r in self.rows
            ],
            title=(
                f"Simulator cross-validation, {self.message_flits}-flit "
                f"({self.mode_label} mode)"
            ),
        )


def run_crosscheck(
    *,
    sizes: tuple[int, ...] | None = None,
    message_flits: int = 16,
    flit_loads: tuple[float, ...] = (0.02, 0.06),
    seed: int = 13,
    experiment_mode: ExperimentMode | None = None,
) -> CrossCheckResult:
    """Run both simulators on shared traces and tabulate the comparison."""
    m = experiment_mode or mode()
    if sizes is None:
        sizes = (16, 64, 256) if m.full else (16, 64)
    rows = []
    for n in sizes:
        topo = ButterflyFatTree(n)
        for load in flit_loads:
            wl = Workload.from_flit_load(load, message_flits)
            cfg = SimConfig(
                warmup_cycles=m.warmup_cycles / 2,
                measure_cycles=m.measure_cycles / 2,
                seed=seed,
            )
            trace = poisson_trace(
                n, wl.injection_rate, cfg.cutoff_cycles, seed + n
            )
            ra = EventDrivenWormholeSimulator(
                topo, wl, cfg, traffic=trace, keep_samples=False
            ).run()
            rb = FlitLevelWormholeSimulator(
                topo, wl, cfg, traffic=trace, keep_samples=False
            ).run()
            rows.append(
                CrossCheckRow(
                    num_processors=n,
                    flit_load=load,
                    event_latency=ra.latency_mean,
                    flit_latency=rb.latency_mean,
                    event_delivered=ra.tagged_delivered,
                    flit_delivered=rb.tagged_delivered,
                )
            )
    return CrossCheckResult(
        message_flits=message_flits, rows=tuple(rows), mode_label=m.label
    )
