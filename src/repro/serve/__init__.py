"""`repro serve`: a concurrent scenario-answering service, stdlib-only.

POST a :class:`~repro.runs.Scenario` as JSON, receive the full
:class:`~repro.runs.RunResult` record as JSON.  Identical questions —
same content-addressed :func:`~repro.runs.scenario.scenario_key`, faults
and backend included — are answered from the indexed run registry instead
of being re-solved, and N concurrent identical requests coalesce into a
single solve.

Two layers:

* :class:`~repro.serve.cache.ScenarioCache` — the synchronous
  lookup/solve/store core over a :class:`~repro.runs.RunRegistry` and its
  :class:`~repro.runs.RunIndex` (also what ``bench_serve.py`` measures);
* :class:`~repro.serve.service.ScenarioService` — the asyncio HTTP front
  end (``POST /solve``, ``GET /stats``, ``GET /health``) with request
  coalescing and its own always-on metrics registry.
"""

from .cache import ScenarioCache
from .service import ScenarioService

__all__ = ["ScenarioCache", "ScenarioService"]
