"""The service's synchronous core: content-addressed solve-or-fetch.

A :class:`ScenarioCache` answers one question — "has this exact scenario
been solved before?" — using the content-addressed
:func:`~repro.runs.scenario.scenario_key` stamped into every record's
provenance and the :class:`~repro.runs.RunIndex` B-tree over it.  A hit
returns the stored :class:`~repro.runs.RunResult` unchanged (byte-identical
metrics, scenario and provenance; only the record's own timestamps differ
from what a fresh solve would stamp).  A miss solves, persists the record
through the canonical registry writer, refreshes the index, and returns.

The cache layer is deliberately synchronous and transport-free so it can
be exercised directly by tests and ``benchmarks/bench_serve.py``; the
asyncio service in :mod:`repro.serve.service` adds concurrency and
request coalescing on top.

Concurrency audit (REP201): :meth:`ScenarioCache.lookup` and
:meth:`ScenarioCache.store` *do* block (indexed SQLite point read;
registry append + index upsert) and are called from the service's event
loop on purpose — the SQLite connection must stay on one thread
(``check_same_thread``), the no-await lookup is what makes request
coalescing atomic, and the store must complete before waiters wake so
the cache stays write-through.  The two call sites in
``service.solve_scenario`` carry ``# lint: allow-blocking-async``
pragmas citing this contract; only ``solver`` runs on the worker pool.
"""

from __future__ import annotations

from typing import Callable

from ..obs.metrics import METRICS, MetricsRegistry
from ..runs import RunIndex, RunRegistry, RunResult, Scenario, run, scenario_key

__all__ = ["ScenarioCache"]


class ScenarioCache:
    """Solve-or-fetch over one registry (see the module docstring).

    Parameters
    ----------
    registry:
        The backing store; solved records are appended to it so cache
        contents survive restarts and are shared with every other tool
        reading the same registry.
    solver:
        Scenario evaluator for misses; defaults to :func:`repro.runs.run`
        (no save — the cache persists the record itself).  Tests inject
        blocking or counting solvers here.
    metrics:
        Where ``serve.cache.hits``/``serve.cache.misses`` land; defaults
        to the process-global registry, the service passes its own
        always-enabled one.
    """

    def __init__(
        self,
        registry: RunRegistry,
        *,
        solver: Callable[[Scenario], RunResult] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.index = RunIndex(registry)
        self.solver = solver if solver is not None else run
        self.metrics = metrics if metrics is not None else METRICS

    def lookup(self, scenario: Scenario) -> RunResult | None:
        """The stored answer to exactly this scenario, if any (no solve)."""
        return self.index.find_by_scenario_key(scenario_key(scenario))

    def store(self, result: RunResult) -> None:
        """Persist a freshly solved record and index it."""
        self.registry.save(result)
        self.index.refresh()

    def solve(self, scenario: Scenario) -> tuple[RunResult, bool]:
        """Answer ``scenario``; returns ``(record, was_cache_hit)``."""
        hit = self.lookup(scenario)
        if hit is not None:
            self.metrics.add("serve.cache.hits")
            return hit, True
        self.metrics.add("serve.cache.misses")
        result = self.solver(scenario)
        self.store(result)
        return result, False

    def close(self) -> None:
        self.index.close()
