"""The asyncio HTTP front end of ``repro serve`` (stdlib only).

One :class:`ScenarioService` owns a :class:`~repro.serve.cache.ScenarioCache`
and an ``asyncio.start_server`` listener speaking just enough HTTP/1.1
for curl and ``http.client``:

* ``POST /solve`` — body is a Scenario JSON object (the
  :meth:`~repro.runs.Scenario.to_json` shape, unknown fields rejected);
  the response body is the full RunResult record JSON.  The
  ``X-Repro-Cache`` header says how it was answered: ``miss`` (solved
  now), ``hit`` (served from the indexed registry), or ``coalesced``
  (attached to an identical in-flight solve).
* ``GET /stats`` — the service's metrics snapshot (always-on private
  registry, independent of ``REPRO_OBS``): ``serve.requests``,
  ``serve.cache.hits``/``misses``, ``serve.coalesced``, the
  ``serve.inflight`` gauge and ``serve/request``/``serve/solve`` spans.
* ``GET /health`` — liveness probe.

Concurrency model: the event loop handles sockets, cache lookups and
registry/index access (so the SQLite connection stays on one thread);
actual solves run in a worker pool of default size 1 — solves are
CPU-bound, so parallel service throughput comes from cache hits and
from *coalescing*: every request for a scenario whose solve is already
in flight awaits that same future, giving N concurrent identical
requests exactly one solve.

Client errors (malformed JSON, unknown fields, saturated or partitioned
scenarios) map to HTTP 4xx with a one-line JSON error; unexpected
failures map to 500 without killing the server.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..errors import (
    ConfigurationError,
    PartitionedNetworkError,
    ReproError,
    SaturatedError,
)
from ..obs.metrics import MetricsRegistry
from ..runs import RunRegistry, RunResult, Scenario
from .cache import ScenarioCache

__all__ = ["ScenarioService"]

_MAX_BODY = 1 << 20  # 1 MiB: a Scenario JSON is a few hundred bytes.

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


class ScenarioService:
    """Concurrent scenario-answering HTTP service (see module docstring).

    Parameters
    ----------
    registry:
        Backing run registry (cache contents persist here).
    host, port:
        Listen address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    solver:
        Miss evaluator forwarded to :class:`ScenarioCache` (test seam).
    solver_threads:
        Size of the solve worker pool.  Solves are CPU-bound, so the
        default of 1 serializes them; cache hits and coalesced requests
        never enter the pool and stay fully concurrent.
    """

    def __init__(
        self,
        registry: RunRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        solver: Callable[[Scenario], RunResult] | None = None,
        solver_threads: int = 1,
    ) -> None:
        self.host = host
        self.port = port
        self.metrics = MetricsRegistry(enabled=True)
        self.cache = ScenarioCache(registry, solver=solver, metrics=self.metrics)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, solver_threads), thread_name_prefix="repro-solve"
        )
        self._inflight: dict[str, asyncio.Future[RunResult]] = {}
        self._server: asyncio.AbstractServer | None = None

    # --- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (resolves ``port=0`` to the chosen port)."""
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)
        self.cache.close()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # --- the solve path ----------------------------------------------------------

    async def solve_scenario(self, scenario: Scenario) -> tuple[RunResult, str]:
        """Answer one scenario; returns ``(record, "hit"|"miss"|"coalesced")``.

        Coalescing contract: the in-flight future is registered *before*
        the first ``await`` of the miss path, so any request arriving
        while a solve runs — no matter how narrow the window — attaches to
        it instead of starting a second solve.
        """
        key = scenario.key()
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.add("serve.coalesced")
            return await asyncio.shield(existing), "coalesced"
        # Index lookup is synchronous (no await), so between the inflight
        # check above and the registration below no other task can run.
        # That atomicity is what makes coalescing airtight, and the SQLite
        # connection must stay on this thread (check_same_thread) — a
        # sub-millisecond indexed point read is the price of both.
        hit = self.cache.lookup(scenario)  # lint: allow-blocking-async
        if hit is not None:
            self.metrics.add("serve.cache.hits")
            return hit, "hit"
        self.metrics.add("serve.cache.misses")
        loop = asyncio.get_running_loop()
        future: asyncio.Future[RunResult] = loop.create_future()
        self._inflight[key] = future
        self.metrics.gauge("serve.inflight", len(self._inflight))
        started = time.perf_counter()
        try:
            result = await loop.run_in_executor(
                self._pool, self.cache.solver, scenario
            )
            # The store (registry append + index upsert) shares the
            # lookup's SQLite thread affinity, and running it before
            # future.set_result keeps the cache write-through: a waiter
            # can never observe a result the index does not yet serve.
            self.cache.store(result)  # lint: allow-blocking-async
            future.set_result(result)
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # consider it retrieved: waiters re-raise theirs
            raise
        finally:
            self._inflight.pop(key, None)
            self.metrics.gauge("serve.inflight", len(self._inflight))
            self.metrics.observe("span/serve/solve", time.perf_counter() - started)
        return result, "miss"

    # --- HTTP plumbing -----------------------------------------------------------

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        self.metrics.add("serve.requests")
        try:
            status, payload, extra = await self._handle(reader)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - the server must outlive any request
            self.metrics.add("serve.errors")
            status, payload, extra = 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        body = json.dumps(payload).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        headers.extend(f"{k}: {v}" for k, v in extra.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body)
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()
        self.metrics.observe("span/serve/request", time.perf_counter() - started)

    async def _handle(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        request_line = (await reader.readline()).decode("ascii", "replace").strip()
        if not request_line:
            return 400, {"error": "empty request"}, {}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line: {request_line!r}"}, {}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("ascii", "replace").strip()
            if not header:
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": f"bad Content-Length: {value.strip()!r}"}, {}
        if content_length > _MAX_BODY:
            return 413, {"error": f"body exceeds {_MAX_BODY} bytes"}, {}
        body = await reader.readexactly(content_length) if content_length else b""

        if method == "GET" and path == "/health":
            return 200, {"ok": True, "registry": str(self.cache.registry.path)}, {}
        if method == "GET" and path == "/stats":
            return 200, self.metrics.snapshot(), {}
        if path == "/solve":
            if method != "POST":
                return 405, {"error": "use POST /solve with a Scenario JSON body"}, {}
            return await self._handle_solve(body)
        return 404, {"error": f"no route {method} {path}"}, {}

    async def _handle_solve(
        self, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, {"error": f"body is not valid JSON: {exc}"}, {}
        if not isinstance(data, dict):
            return 400, {"error": "body must be a Scenario JSON object"}, {}
        try:
            scenario = Scenario.from_json(data)
        except ConfigurationError as exc:
            return 400, {"error": str(exc)}, {}
        try:
            result, how = await self.solve_scenario(scenario)
        except (SaturatedError, PartitionedNetworkError, ConfigurationError) as exc:
            # The scenario is well-formed but unanswerable as asked: the
            # client's problem, reported as such (and not cached).
            return 422, {"error": f"{type(exc).__name__}: {exc}"}, {}
        except ReproError as exc:
            self.metrics.add("serve.errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        return 200, result.to_json(), {"X-Repro-Cache": how}
