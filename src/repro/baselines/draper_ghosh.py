"""Draper–Ghosh-style hypercube model (baseline).

Draper & Ghosh (JPDC 23:202-214, 1994) analysed wormhole routing on binary
hypercubes with an iterative M/G/1 scheme working backwards from the
destination, introducing the service-time variability approximation that
the fat-tree paper adopts as its Eq. 5.  What the fat-tree paper *adds* on
top of that style of analysis are the multi-server channels and the
``P_{i|j}`` blocking correction.

This module therefore provides a faithful *style* reconstruction of the
prior art as a baseline: the general channel-graph recursion of Section 2
instantiated on the hypercube with

* single-server M/G/1 waits at every channel (the hypercube has no
  redundant links, so the multi-server ingredient never applies), and
* **no** blocking-probability correction (``P_{i|j} = 1``), since that
  correction is the fat-tree paper's contribution.

Comparing this baseline to the corrected model and to simulation (see
``benchmarks/bench_other_networks.py``) quantifies the value of the
correction on a second network family.
"""

from __future__ import annotations

from ..config import Workload
from ..core.generic_model import ChannelGraphModel, hypercube_stage_graph
from ..core.variants import ModelVariant
from ..errors import ConfigurationError
from ..queueing.distributions import ScvMode

__all__ = ["DraperGhoshHypercubeModel", "draper_ghosh_variant"]


def draper_ghosh_variant(*, corrected: bool = False) -> ModelVariant:
    """The approximation switches of the Draper–Ghosh-style analysis.

    ``corrected=True`` keeps the Draper–Ghosh recursion but adds the
    fat-tree paper's blocking correction — the *improved* Section-2 model
    on the hypercube.  Shared by :class:`DraperGhoshHypercubeModel` and the
    design-family baseline hooks, so every entry point labels the same
    switches the same way.
    """
    return ModelVariant(
        label="general-model" if corrected else "draper-ghosh-style",
        multiserver_up=True,  # irrelevant on the hypercube (no pairs)
        blocking_correction=corrected,
        scv_mode=ScvMode.DRAPER_GHOSH,
    )


class DraperGhoshHypercubeModel:
    """Prior-art-style analytical model of a binary hypercube.

    Parameters
    ----------
    dimension:
        Cube dimension ``d`` (``N = 2**d`` nodes).
    corrected:
        When True, applies the fat-tree paper's blocking correction on top
        of the Draper–Ghosh recursion — i.e. the *improved* general model
        of Section 2 applied to the hypercube.  Default False (pure
        baseline).
    """

    def __init__(self, dimension: int, *, corrected: bool = False) -> None:
        if not isinstance(dimension, int) or dimension < 1:
            raise ConfigurationError(f"dimension must be a positive integer, got {dimension!r}")
        self.dimension = dimension
        self.num_processors = 1 << dimension
        self.corrected = corrected
        self.variant = draper_ghosh_variant(corrected=corrected)

    def _graph(self, workload: Workload) -> ChannelGraphModel:
        return hypercube_stage_graph(self.dimension, workload, self.variant)

    def latency(self, workload: Workload) -> float:
        """Average message latency in cycles (``inf`` past saturation)."""
        return self._graph(workload).latency()

    def latency_at_flit_load(self, flit_load: float, message_flits: int) -> float:
        """Latency with load expressed in flits/cycle/PE."""
        return self.latency(Workload.from_flit_load(flit_load, message_flits))

    def is_stable(self, workload: Workload) -> bool:
        """Eq. 26-style stability test on the injection channel."""
        graph = self._graph(workload)
        service = graph.injection_service()
        import math

        if not math.isfinite(service):
            return False
        return workload.injection_rate * service < 1.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"DraperGhoshHypercubeModel(d={self.dimension}, N={self.num_processors}, "
            f"corrected={self.corrected})"
        )
