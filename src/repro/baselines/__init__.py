"""Prior-art baseline models (S7 in DESIGN.md).

* :class:`DallyKaryNCubeModel` — Dally-style analysis of unidirectional
  k-ary n-cubes (deterministic routing, per-channel M/G/1 contention, no
  wormhole blocking correction);
* :class:`DraperGhoshHypercubeModel` — Draper–Ghosh-style hypercube
  analysis (the recursion the paper generalises, without the paper's
  blocking correction);
* :func:`naive_bft_model` — the butterfly fat-tree model with both of the
  paper's novelties (multi-server queues, blocking correction) disabled.
"""

from ..core.bft_model import ButterflyFatTreeModel
from ..core.variants import ModelVariant
from .dally import DallyKaryNCubeModel
from .draper_ghosh import DraperGhoshHypercubeModel, draper_ghosh_variant

__all__ = [
    "DallyKaryNCubeModel",
    "DraperGhoshHypercubeModel",
    "draper_ghosh_variant",
    "naive_bft_model",
]


def naive_bft_model(num_processors: int) -> ButterflyFatTreeModel:
    """A prior-art-style fat-tree model: independent M/G/1 links, no blocking
    correction.  Used by the ablation experiments as the reference point the
    paper improves upon."""
    return ButterflyFatTreeModel(num_processors, ModelVariant.naive())
