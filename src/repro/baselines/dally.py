"""Dally-style k-ary n-cube model (baseline).

Dally's analysis (IEEE Trans. Computers 39(6), 1990) is the canonical prior
wormhole model the paper cites: unidirectional k-ary n-cubes, deterministic
(e-cube) routing, with the expected contention delay evaluated per physical
channel.  Its defining simplification — the one Draper & Ghosh and the
fat-tree paper later lift — is that the *service time used for contention
is the message length itself*: waits suffered downstream do not inflate the
service time seen upstream.  The model is therefore optimistic at high load
but simple and stable all the way to unit channel utilization.

Concretely, for uniform traffic on the unidirectional torus:

* every physical network channel carries ``lambda_c = lambda_0 (k-1)/2``
  messages per cycle (the average ring distance is ``(k-1)/2``);
* each of the ``D`` network hops of a message charges the M/G/1
  (deterministic-service) wait ``W = lambda_c L^2 / (2 (1 - lambda_c L))``
  with ``L`` the message length in flits;
* the ejection channel charges the equivalent wait at rate ``lambda_0``;
* latency is ``W_inj + sum of hop waits + D_bar + L - 1``.

A note on simulation of this network: wormhole routing on *rings* is
deadlock-prone without virtual channels (Dally & Seitz 1987); Dally's
networks use two virtual channels per link ("datelines") to break the
cycle.  Our simulators implement no virtual channels — the butterfly
fat-tree needs none, which is one of its advantages — so simulator
validation of this baseline is restricted to low loads where cyclic waits
are rare (see ``tests/test_baselines.py``); at higher loads torus runs
report censored messages, which is the physically correct outcome.
"""

from __future__ import annotations

import math

from ..config import Workload
from ..errors import ConfigurationError
from ..queueing.distributions import ScvMode, scv_for_mode
from ..queueing.mg1 import mg1_waiting_time
from ..topology.properties import kary_ncube_average_distance

__all__ = ["DallyKaryNCubeModel"]


class DallyKaryNCubeModel:
    """Analytical latency model of a unidirectional k-ary n-cube.

    Parameters
    ----------
    radix, dimensions:
        Network shape (``N = radix**dimensions``).
    scv_mode:
        Service-variability assumption for the per-hop waits; Dally's
        fixed-length messages imply the deterministic default.
    """

    def __init__(
        self,
        radix: int,
        dimensions: int,
        *,
        scv_mode: ScvMode = ScvMode.DETERMINISTIC,
    ) -> None:
        if not isinstance(radix, int) or radix < 2:
            raise ConfigurationError(f"radix must be an integer >= 2, got {radix!r}")
        if not isinstance(dimensions, int) or dimensions < 1:
            raise ConfigurationError(
                f"dimensions must be a positive integer, got {dimensions!r}"
            )
        self.radix = radix
        self.dimensions = dimensions
        self.num_processors = radix**dimensions
        self.scv_mode = scv_mode
        #: Average path length including injection and ejection channels.
        self.average_distance = kary_ncube_average_distance(radix, dimensions)
        #: Average number of *network* hops (excludes injection/ejection).
        self.network_hops = self.average_distance - 2.0

    # --- internals ----------------------------------------------------------------

    def channel_rate(self, injection_rate: float) -> float:
        """Per-channel message rate ``lambda_0 * (k-1)/2`` under uniform traffic."""
        if injection_rate < 0:
            raise ConfigurationError("injection_rate must be >= 0")
        return injection_rate * (self.radix - 1) / 2.0

    def _hop_wait(self, rate: float, message_flits: int) -> float:
        service = float(message_flits)
        scv = scv_for_mode(self.scv_mode, service, message_flits)
        return mg1_waiting_time(rate, service, scv)

    # --- public API ------------------------------------------------------------------

    def latency(self, workload: Workload) -> float:
        """Average message latency in cycles (``inf`` past saturation).

        Saturation in this model is channel flit-utilization reaching one
        (``lambda_c * L >= 1``), the classic wormhole capacity bound.
        """
        flits = workload.message_flits
        lam_c = self.channel_rate(workload.injection_rate)
        w_hop = self._hop_wait(lam_c, flits)
        w_eject = self._hop_wait(workload.injection_rate, flits)
        w_inject = self._hop_wait(workload.injection_rate, flits)
        if not (math.isfinite(w_hop) and math.isfinite(w_eject) and math.isfinite(w_inject)):
            return math.inf
        contention = self.network_hops * w_hop + w_eject + w_inject
        return contention + self.average_distance + flits - 1.0

    def latency_at_flit_load(self, flit_load: float, message_flits: int) -> float:
        """Latency with load expressed in flits/cycle/PE."""
        return self.latency(Workload.from_flit_load(flit_load, message_flits))

    def is_stable(self, workload: Workload) -> bool:
        """Channel and terminal utilizations all below one."""
        lam_c = self.channel_rate(workload.injection_rate)
        flits = workload.message_flits
        return max(lam_c, workload.injection_rate) * flits < 1.0

    def zero_load_latency(self, message_flits: int) -> float:
        """Contention-free limit ``L + D_bar - 1``."""
        return float(message_flits) + self.average_distance - 1.0

    def saturation_flit_load(self, message_flits: int) -> float:
        """Closed-form capacity bound in flits/cycle/PE: ``2 / (k - 1)``.

        Independent of message length: channel utilization
        ``lambda_0 (k-1)/2 * L`` hits one at flit load ``lambda_0 L = 2/(k-1)``.
        """
        if message_flits <= 0:
            raise ConfigurationError("message_flits must be positive")
        return 2.0 / (self.radix - 1)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"DallyKaryNCubeModel(k={self.radix}, n={self.dimensions}, "
            f"N={self.num_processors})"
        )
