"""Dally-style k-ary n-cube model (baseline).

Dally's analysis (IEEE Trans. Computers 39(6), 1990) is the canonical prior
wormhole model the paper cites: unidirectional k-ary n-cubes, deterministic
(e-cube) routing, with the expected contention delay evaluated per physical
channel.  Its defining simplification — the one Draper & Ghosh and the
fat-tree paper later lift — is that the *service time used for contention
is the message length itself*: waits suffered downstream do not inflate the
service time seen upstream.  The model is therefore optimistic at high load
but simple and stable all the way to unit channel utilization.

Concretely, for uniform traffic on the unidirectional torus:

* every physical network channel carries ``lambda_c = lambda_0 (k-1)/2``
  messages per cycle (the average ring distance is ``(k-1)/2``);
* each of the ``D`` network hops of a message charges the M/G/1
  (deterministic-service) wait ``W = lambda_c L^2 / (2 (1 - lambda_c L))``
  with ``L`` the message length in flits;
* the ejection channel charges the equivalent wait at rate ``lambda_0``;
* latency is ``W_inj + sum of hop waits + D_bar + L - 1``.

A note on simulation of this network: wormhole routing on *rings* is
deadlock-prone without virtual channels (Dally & Seitz 1987); Dally's
networks use two virtual channels per link ("datelines") to break the
cycle.  Our simulators implement no virtual channels — the butterfly
fat-tree needs none, which is one of its advantages — so simulator
validation of this baseline is restricted to low loads where cyclic waits
are rare (see ``tests/test_baselines.py``); at higher loads torus runs
report censored messages, which is the physically correct outcome.
"""

from __future__ import annotations

import numpy as np

from ..config import Workload
from ..core.batch import as_injection_rates
from ..core.variants import ModelVariant
from ..errors import ConfigurationError
from ..queueing.distributions import ScvMode, scv_for_mode_batch
from ..queueing.mg1 import mg1_waiting_time_batch
from ..topology.properties import kary_ncube_average_distance

__all__ = ["DallyKaryNCubeModel"]


class DallyKaryNCubeModel:
    """Analytical latency model of a unidirectional k-ary n-cube.

    Parameters
    ----------
    radix, dimensions:
        Network shape (``N = radix**dimensions``).
    scv_mode:
        Service-variability assumption for the per-hop waits; Dally's
        fixed-length messages imply the deterministic default.
    """

    def __init__(
        self,
        radix: int,
        dimensions: int,
        *,
        scv_mode: ScvMode = ScvMode.DETERMINISTIC,
    ) -> None:
        if not isinstance(radix, int) or radix < 2:
            raise ConfigurationError(f"radix must be an integer >= 2, got {radix!r}")
        if not isinstance(dimensions, int) or dimensions < 1:
            raise ConfigurationError(
                f"dimensions must be a positive integer, got {dimensions!r}"
            )
        self.radix = radix
        self.dimensions = dimensions
        self.num_processors = radix**dimensions
        self.scv_mode = scv_mode
        #: The model's position in the ablation vocabulary: no multi-server
        #: pooling, no blocking correction (the facade's ``baseline`` label).
        self.variant = ModelVariant(
            label="dally",
            multiserver_up=False,
            blocking_correction=False,
            scv_mode=scv_mode,
        )
        #: Average path length including injection and ejection channels.
        self.average_distance = kary_ncube_average_distance(radix, dimensions)
        #: Average number of *network* hops (excludes injection/ejection).
        self.network_hops = self.average_distance - 2.0

    # --- internals ----------------------------------------------------------------

    def channel_rate(self, injection_rate: float) -> float:
        """Per-channel message rate ``lambda_0 * (k-1)/2`` under uniform traffic."""
        if injection_rate < 0:
            raise ConfigurationError("injection_rate must be >= 0")
        return injection_rate * (self.radix - 1) / 2.0

    def _hop_wait_batch(self, rates: np.ndarray, message_flits: int) -> np.ndarray:
        service = float(message_flits)
        scv = scv_for_mode_batch(self.scv_mode, np.full_like(rates, service), message_flits)
        return mg1_waiting_time_batch(rates, service, scv)

    # --- public API ------------------------------------------------------------------

    def latency_batch(self, loads, message_flits: int) -> np.ndarray:
        """Average latency over a vector of injection rates in one NumPy pass.

        ``loads`` are injection rates ``lambda_0`` (messages/cycle/PE);
        entry ``k`` equals ``latency(Workload(message_flits, loads[k]))``.
        Saturated points (``lambda_c * L >= 1``, the classic wormhole
        capacity bound) hold ``inf``.
        """
        if not isinstance(message_flits, int) or message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        inj = as_injection_rates(loads)
        lam_c = inj * (self.radix - 1) / 2.0
        w_hop = self._hop_wait_batch(lam_c, message_flits)
        w_terminal = self._hop_wait_batch(inj, message_flits)
        # Same operation order as the historical scalar evaluation (eject
        # and inject waits added separately), so recorded values are stable.
        contention = self.network_hops * w_hop + w_terminal + w_terminal
        latency = contention + self.average_distance + message_flits - 1.0
        return np.where(np.isfinite(contention), latency, np.inf)

    def stability_batch(self, loads, message_flits: int) -> np.ndarray:
        """Vectorized capacity test (one bool per injection rate)."""
        if not isinstance(message_flits, int) or message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        inj = as_injection_rates(loads)
        return np.maximum(inj * (self.radix - 1) / 2.0, inj) * message_flits < 1.0

    def latency(self, workload: Workload) -> float:
        """Average message latency in cycles (``inf`` past saturation).

        Thin wrapper over a one-point :meth:`latency_batch` (the batch pass
        is the reference implementation, so the facade's ``model`` and
        ``batch`` backends agree bit-for-bit on this family too).
        """
        return float(
            self.latency_batch(
                np.array([workload.injection_rate]), workload.message_flits
            )[0]
        )

    def latency_at_flit_load(self, flit_load: float, message_flits: int) -> float:
        """Latency with load expressed in flits/cycle/PE."""
        return self.latency(Workload.from_flit_load(flit_load, message_flits))

    def is_stable(self, workload: Workload) -> bool:
        """Channel and terminal utilizations all below one."""
        lam_c = self.channel_rate(workload.injection_rate)
        flits = workload.message_flits
        return max(lam_c, workload.injection_rate) * flits < 1.0

    def zero_load_latency(self, message_flits: int) -> float:
        """Contention-free limit ``L + D_bar - 1``."""
        return float(message_flits) + self.average_distance - 1.0

    def saturation_flit_load(self, message_flits: int) -> float:
        """Closed-form capacity bound in flits/cycle/PE: ``2 / (k - 1)``.

        Independent of message length: channel utilization
        ``lambda_0 (k-1)/2 * L`` hits one at flit load ``lambda_0 L = 2/(k-1)``.
        """
        if message_flits <= 0:
            raise ConfigurationError("message_flits must be positive")
        return 2.0 / (self.radix - 1)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"DallyKaryNCubeModel(k={self.radix}, n={self.dimensions}, "
            f"N={self.num_processors})"
        )
