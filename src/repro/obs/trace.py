"""Span tracing with Chrome-trace-format JSON output.

A :class:`Tracer` collects complete (``"ph": "X"``) duration events; its
:meth:`~Tracer.to_json` emits the Trace Event Format that
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
directly.  ``repro run --trace out.json`` activates one tracer around a
scenario evaluation (see :mod:`repro.cli`).

Instrumentation sites all go through :func:`trace_span`:

>>> from repro.obs import trace_span
>>> with trace_span("solve/fixed_point", channel="up0"):
...     pass

When no tracer is active *and* metrics are disabled, :func:`trace_span`
returns a shared no-op span — no object allocation, no clock read — which
is what keeps un-observed hot paths at their baseline cost.  Otherwise the
span times itself with the tracer's clock (or the monotonic default),
feeds the duration into :data:`repro.obs.metrics.METRICS` under
``span/<name>``, and appends a trace event when a tracer is active.

Timestamps in the emitted JSON are microseconds relative to the tracer's
origin; durations are ``perf_counter`` deltas.  The single wall-clock
stamp (``otherData.trace_unix_time``, for correlating a trace with
registry records) comes from the allowlisted
:func:`repro.obs.clock.session_wall_time`.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import InitVar, dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from .clock import DEFAULT_CLOCK, Clock, session_wall_time
from .metrics import METRICS

__all__ = ["Tracer", "current_tracer", "trace_span", "tracing"]


@dataclass
class Tracer:
    """Chrome-trace event collector.

    ``clock`` is an init-only seam (the same pattern as
    :class:`repro.runs.RunResult`): tests pass a deterministic counter and
    get exact ``ts``/``dur`` values instead of racing the real clock.
    ``origin`` defaults to the clock's value at construction, so event
    timestamps start near zero.
    """

    events: list[dict] = field(default_factory=list)
    origin: float = 0.0
    clock: InitVar[Clock | None] = None

    def __post_init__(self, clock: Clock | None) -> None:
        self.clock_fn: Clock = clock or DEFAULT_CLOCK
        if not self.origin:
            self.origin = self.clock_fn()

    def record(
        self,
        name: str,
        start: float,
        end: float,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Append one complete event (absolute clock seconds in, µs out)."""
        event: dict = {
            "name": name,
            "cat": name.split("/", 1)[0],
            "ph": "X",
            "ts": (start - self.origin) * 1e6,
            "dur": (end - start) * 1e6,
            "pid": os.getpid(),
            "tid": 1,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def to_json(self) -> dict:
        """The Trace Event Format object viewers load."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"trace_unix_time": session_wall_time()},
        }

    def write(self, path: str | Path) -> Path:
        """Serialize to ``path`` (parent directories created on demand)."""
        out = Path(path)
        if out.parent and str(out.parent) != ".":
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return out


_ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The tracer installed by the innermost :func:`tracing` scope, if any."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) as the active tracer for a scope."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


class _NullSpan:
    """Shared do-nothing span (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times itself, feeds metrics, records a trace event."""

    __slots__ = ("name", "args", "tracer", "clock_fn", "start")

    def __init__(
        self, name: str, args: dict | None, tracer: Tracer | None
    ) -> None:
        self.name = name
        self.args = args
        self.tracer = tracer
        self.clock_fn = tracer.clock_fn if tracer is not None else DEFAULT_CLOCK
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.start = self.clock_fn()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = self.clock_fn()
        METRICS.observe(f"span/{self.name}", end - self.start)
        if self.tracer is not None:
            self.tracer.record(self.name, self.start, end, self.args)
        return False


def trace_span(name: str, **args: Any) -> "_NullSpan | _Span":
    """A context manager timing one named region (see module docstring).

    ``args`` become the trace event's ``args`` payload (small JSON-able
    values only — they are serialized verbatim into the trace file).
    """
    tracer = _ACTIVE
    if tracer is None and not METRICS.enabled:
        return _NULL_SPAN
    return _Span(name, args or None, tracer)
