"""Zero-dependency observability: metrics, spans, Chrome-format traces.

Three pieces, stdlib-only, importable before numpy is available:

* :data:`~repro.obs.metrics.METRICS` — the process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  histograms every instrumented path records into;
* :func:`~repro.obs.trace.trace_span` /
  :class:`~repro.obs.trace.Tracer` — span timing with Chrome-trace-format
  JSON output (``repro run --trace out.json``);
* :mod:`~repro.obs.clock` — the monotonic default clock and the one
  sanctioned wall-clock read (REP006-allowlisted).

**Overhead contract.**  Observability is *disabled by default* and the
disabled path must stay effectively free: every recording method begins
with ``if not self.enabled: return`` and :func:`trace_span` returns a
shared no-op object without reading the clock, so an un-observed
fixed-point solve pays only a handful of attribute checks.  The CI
obs-smoke job holds the quick benchmark suite to within 5% of its
no-observability medians; treat any instrumentation that cannot meet that
bar (per-iteration work, allocation on the disabled path) as a bug.

Enablement: ``REPRO_OBS=1`` turns the global registry on for a whole
process; :meth:`MetricsRegistry.collect` force-enables for one scope —
:class:`repro.runs.Runner` uses it so every
:class:`~repro.runs.RunResult` carries an ``observability`` metrics block
regardless of the environment flag.
"""

from .clock import DEFAULT_CLOCK, Clock, session_wall_time
from .metrics import METRICS, Collection, MetricsRegistry
from .trace import Tracer, current_tracer, trace_span, tracing

__all__ = [
    "Clock",
    "Collection",
    "DEFAULT_CLOCK",
    "METRICS",
    "MetricsRegistry",
    "Tracer",
    "current_tracer",
    "session_wall_time",
    "trace_span",
    "tracing",
]
