"""Process-local metrics: counters, gauges and histograms.

One module-level :data:`METRICS` registry is shared by every instrumented
path (fixed-point solver, stage-graph engine, design-explorer caches,
simulator replications, run registry).  It is **disabled by default**:
every recording method starts with ``if not self.enabled: return``, so an
un-observed solve pays one attribute check and a branch per event — the
overhead contract the benchmarks pin (see :mod:`repro.obs`).

Enable it three ways:

* ``REPRO_OBS=1`` in the environment enables the process-global registry;
* :meth:`MetricsRegistry.collect` force-enables for a scope and returns
  the scope's own snapshot (this is how :class:`repro.runs.Runner` attaches
  an ``observability`` block to every :class:`~repro.runs.RunResult`);
* setting :attr:`MetricsRegistry.enabled` directly (tests).

Histograms are four running moments per name — count, total, min, max —
never samples, so memory stays O(distinct names) no matter how many
fixed-point solves a sweep performs.  Span durations recorded through
:func:`repro.obs.trace.trace_span` land here under ``span/<name>`` keys;
:meth:`~MetricsRegistry.snapshot` splits them out into a ``spans`` block.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Collection", "MetricsRegistry", "METRICS"]

_SPAN_PREFIX = "span/"


class Collection:
    """Handle yielded by :meth:`MetricsRegistry.collect`.

    ``data`` holds the scope's :meth:`~MetricsRegistry.snapshot` once the
    ``with`` block exits (it is empty while the scope is still open).
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data: dict = {}


class MetricsRegistry:
    """Counters, gauges and histograms with cheap no-op defaults.

    Not thread-safe by design: the library's parallelism is process-based
    (:mod:`repro.util.parallel`), and each worker process gets its own
    registry.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_hist")

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max] (running moments, never samples).
        self._hist: dict[str, list[float]] = {}

    # --- recording (no-ops while disabled) ---------------------------------------

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        if not self.enabled:
            return
        h = self._hist.get(name)
        if h is None:
            v = float(value)
            self._hist[name] = [1.0, v, v, v]
        else:
            v = float(value)
            h[0] += 1.0
            h[1] += v
            if v < h[2]:
                h[2] = v
            if v > h[3]:
                h[3] = v

    def reset(self) -> None:
        """Drop every recorded value (keeps the enabled flag)."""
        self._counters.clear()
        self._gauges.clear()
        self._hist.clear()

    # --- reading -----------------------------------------------------------------

    @staticmethod
    def _tidy(value: float) -> float | int:
        """Present integral floats as ints (counter JSON stays readable)."""
        return int(value) if value == int(value) else value

    def snapshot(self) -> dict:
        """JSON-able view: counters, gauges, histograms and span aggregates.

        ``span/<name>`` histograms (written by
        :func:`repro.obs.trace.trace_span`) are reported under ``spans`` as
        ``{count, total_s, mean_s, max_s}``; everything else keeps the raw
        ``{count, total, mean, min, max}`` moments.
        """
        histograms: dict[str, dict] = {}
        spans: dict[str, dict] = {}
        for name in sorted(self._hist):
            count, total, lo, hi = self._hist[name]
            if name.startswith(_SPAN_PREFIX):
                spans[name[len(_SPAN_PREFIX):]] = {
                    "count": int(count),
                    "total_s": total,
                    "mean_s": total / count,
                    "max_s": hi,
                }
            else:
                histograms[name] = {
                    "count": int(count),
                    "total": self._tidy(total),
                    "mean": total / count,
                    "min": self._tidy(lo),
                    "max": self._tidy(hi),
                }
        return {
            "counters": {
                k: self._tidy(self._counters[k]) for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": histograms,
            "spans": spans,
        }

    # --- scoped collection ---------------------------------------------------------

    @contextmanager
    def collect(self) -> Iterator[Collection]:
        """Force-enable for a scope and capture that scope's own telemetry.

        The scope starts from empty dicts, so the returned snapshot holds
        exactly the events of the ``with`` block.  On exit the previous
        state (including the enabled flag) is restored, and — when the
        registry was already recording — the scope's activity is merged
        back so an outer :meth:`collect` or the env-enabled global view
        still sees the totals.  Nests cleanly.
        """
        saved_enabled = self.enabled
        saved = (self._counters, self._gauges, self._hist)
        self.enabled = True
        self._counters, self._gauges, self._hist = {}, {}, {}
        handle = Collection()
        try:
            yield handle
        finally:
            handle.data = self.snapshot()
            scope_counters, scope_gauges, scope_hist = (
                self._counters,
                self._gauges,
                self._hist,
            )
            self.enabled = saved_enabled
            self._counters, self._gauges, self._hist = saved
            if self.enabled:
                for k, v in scope_counters.items():
                    self._counters[k] = self._counters.get(k, 0.0) + v
                self._gauges.update(scope_gauges)
                for k, h in scope_hist.items():
                    outer = self._hist.get(k)
                    if outer is None:
                        self._hist[k] = list(h)
                    else:
                        outer[0] += h[0]
                        outer[1] += h[1]
                        if h[2] < outer[2]:
                            outer[2] = h[2]
                        if h[3] > outer[3]:
                            outer[3] = h[3]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "") not in ("", "0")


#: The process-global registry every instrumented path records into.
METRICS = MetricsRegistry(enabled=_env_enabled())
