"""Process-local metrics: counters, gauges and histograms.

One module-level :data:`METRICS` registry is shared by every instrumented
path (fixed-point solver, stage-graph engine, design-explorer caches,
simulator replications, run registry).  It is **disabled by default**:
every recording method starts with ``if not self.enabled: return``, so an
un-observed solve pays one attribute check and a branch per event — the
overhead contract the benchmarks pin (see :mod:`repro.obs`).

Enable it three ways:

* ``REPRO_OBS=1`` in the environment enables the process-global registry;
* :meth:`MetricsRegistry.collect` force-enables for a scope and returns
  the scope's own snapshot (this is how :class:`repro.runs.Runner` attaches
  an ``observability`` block to every :class:`~repro.runs.RunResult`);
* setting :attr:`MetricsRegistry.enabled` directly (tests).

The registry is **thread-safe when enabled**: every enabled-path write
holds one ``threading.Lock``, and :meth:`collect` is thread-identity
aware — each thread records into *its own* innermost open scope (a
``threading.local`` stack), so a solve running on a ``ThreadPoolExecutor``
worker — ``repro serve`` runs every solve there — cannot tear a scope
another thread holds open.  Events from a thread with no scope of its
own land in the most recently opened scope anywhere (the pre-lock
behavior, made race-free), or in the shared base state when no scope is
open.  A closing scope folds its totals into the nearest still-open
scope (or the base state when the registry is ambiently enabled), so
totals are conserved no matter which thread recorded them.  The
disabled fast path takes no lock — the ≤5% overhead gate in CI
(obs-smoke) pins that.

Histograms are four running moments per name — count, total, min, max —
never samples, so memory stays O(distinct names) no matter how many
fixed-point solves a sweep performs.  Span durations recorded through
:func:`repro.obs.trace.trace_span` land here under ``span/<name>`` keys;
:meth:`~MetricsRegistry.snapshot` splits them out into a ``spans`` block.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Collection", "MetricsRegistry", "METRICS"]

_SPAN_PREFIX = "span/"


class Collection:
    """Handle yielded by :meth:`MetricsRegistry.collect`.

    ``data`` holds the scope's :meth:`~MetricsRegistry.snapshot` once the
    ``with`` block exits (it is empty while the scope is still open).
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data: dict = {}


class _Scope:
    """One open :meth:`~MetricsRegistry.collect` scope."""

    __slots__ = ("counters", "gauges", "hist")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hist: dict[str, list[float]] = {}


def _merge(
    counters: dict[str, float],
    gauges: dict[str, float],
    hist: dict[str, list[float]],
    scope: _Scope,
) -> None:
    """Fold a finished scope's events into target dicts."""
    for k, v in scope.counters.items():
        counters[k] = counters.get(k, 0.0) + v
    gauges.update(scope.gauges)
    for k, h in scope.hist.items():
        outer = hist.get(k)
        if outer is None:
            hist[k] = list(h)
        else:
            outer[0] += h[0]
            outer[1] += h[1]
            if h[2] < outer[2]:
                outer[2] = h[2]
            if h[3] > outer[3]:
                outer[3] = h[3]


def _observe_into(hist: dict[str, list[float]], name: str, value: float) -> None:
    h = hist.get(name)
    v = float(value)
    if h is None:
        hist[name] = [1.0, v, v, v]
    else:
        h[0] += 1.0
        h[1] += v
        if v < h[2]:
            h[2] = v
        if v > h[3]:
            h[3] = v


def _tidy(value: float) -> float | int:
    """Present integral floats as ints (counter JSON stays readable)."""
    return int(value) if value == int(value) else value


def _render(
    counters: dict[str, float],
    gauges: dict[str, float],
    hist: dict[str, list[float]],
) -> dict:
    """The JSON-able snapshot shape shared by base state and scopes."""
    histograms: dict[str, dict] = {}
    spans: dict[str, dict] = {}
    for name in sorted(hist):
        count, total, lo, hi = hist[name]
        if name.startswith(_SPAN_PREFIX):
            spans[name[len(_SPAN_PREFIX):]] = {
                "count": int(count),
                "total_s": total,
                "mean_s": total / count,
                "max_s": hi,
            }
        else:
            histograms[name] = {
                "count": int(count),
                "total": _tidy(total),
                "mean": total / count,
                "min": _tidy(lo),
                "max": _tidy(hi),
            }
    return {
        "counters": {k: _tidy(counters[k]) for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": histograms,
        "spans": spans,
    }


class MetricsRegistry:
    """Counters, gauges and histograms with cheap no-op defaults.

    Thread-safe when enabled: every enabled-path write holds
    :attr:`_lock`, and collect scopes are attributed per thread (see the
    module docstring).  The disabled path stays lock-free.
    """

    __slots__ = (
        "enabled",
        "_counters",
        "_gauges",
        "_hist",
        "_lock",
        "_local",
        "_open",
        "_ambient",
    )

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max] (running moments, never samples).
        self._hist: dict[str, list[float]] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        # Open collect() scopes across all threads, in open order, and
        # whether recording was ambiently on before the first forced it.
        self._open = []  # list[_Scope]
        self._ambient = False

    def _scope_stack(self) -> list[_Scope]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # --- recording (no-ops while disabled) ---------------------------------------

    # The recording bodies check `self._open` before touching the
    # thread-local stack: a non-empty per-thread stack implies a
    # non-empty `_open`, and skipping the threading.local getattr keeps
    # the common no-scope enabled path (env-enabled sweeps) cheap — the
    # design_explore benchmark sits inside the obs-smoke ±5% window.

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        if not self.enabled:
            return
        with self._lock:
            if not self._open:
                if self.enabled:  # the last open scope may have closed under us
                    self._counters[name] = self._counters.get(name, 0.0) + value
                return
            stack = getattr(self._local, "stack", None)
            scope = stack[-1] if stack else self._open[-1]
            scope.counters[name] = scope.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        if not self.enabled:
            return
        with self._lock:
            if not self._open:
                if self.enabled:
                    self._gauges[name] = float(value)
                return
            stack = getattr(self._local, "stack", None)
            scope = stack[-1] if stack else self._open[-1]
            scope.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            if not self._open:
                if self.enabled:
                    _observe_into(self._hist, name, value)
                return
            stack = getattr(self._local, "stack", None)
            scope = stack[-1] if stack else self._open[-1]
            _observe_into(scope.hist, name, value)

    def reset(self) -> None:
        """Drop every recorded base value (keeps the enabled flag)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hist.clear()

    # --- reading -----------------------------------------------------------------

    @staticmethod
    def _tidy(value: float) -> float | int:
        return _tidy(value)

    def snapshot(self) -> dict:
        """JSON-able view: counters, gauges, histograms and span aggregates.

        ``span/<name>`` histograms (written by
        :func:`repro.obs.trace.trace_span`) are reported under ``spans`` as
        ``{count, total_s, mean_s, max_s}``; everything else keeps the raw
        ``{count, total, mean, min, max}`` moments.
        """
        with self._lock:
            return _render(self._counters, self._gauges, self._hist)

    # --- scoped collection ---------------------------------------------------------

    @contextmanager
    def collect(self) -> Iterator[Collection]:
        """Force-enable for a scope and capture that scope's own telemetry.

        The scope starts empty, so the returned snapshot holds exactly
        the events recorded while it was the innermost scope — for this
        thread always its own (scopes stack per thread), plus events from
        threads with no scope of their own while it was the newest open
        anywhere.  On exit the enabled flag is restored once the last
        open scope closes, and the scope's activity folds into the
        nearest still-open scope (or the base state when the registry was
        ambiently recording), so an outer :meth:`collect` — even one held
        by another thread — or the env-enabled global view still sees the
        totals.  Nests cleanly.
        """
        scope = _Scope()
        stack = self._scope_stack()
        with self._lock:
            if not self._open:
                self._ambient = self.enabled
            self._open.append(scope)
            self.enabled = True
        stack.append(scope)
        handle = Collection()
        try:
            yield handle
        finally:
            stack.pop()
            with self._lock:
                self._open.remove(scope)
                if not self._open:
                    self.enabled = self._ambient
                handle.data = _render(scope.counters, scope.gauges, scope.hist)
                if self._open:
                    target = self._open[-1]
                    _merge(target.counters, target.gauges, target.hist, scope)
                elif self._ambient:
                    _merge(self._counters, self._gauges, self._hist, scope)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "") not in ("", "0")


#: The process-global registry every instrumented path records into.
METRICS = MetricsRegistry(enabled=_env_enabled())
