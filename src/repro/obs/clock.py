"""Clock seams for the observability layer.

Telemetry durations must come from the monotonic ``time.perf_counter``
(wall clocks jump under NTP slew and DST, which would corrupt span
durations), so that is the only clock the metrics and tracing machinery
defaults to.  The single sanctioned *wall*-clock read lives here too:
:func:`session_wall_time` stamps trace metadata so a trace file can be
correlated with registry records after the fact.  This module is the
REP006 allowlist home for that read — everywhere else in the library,
wall-clock calls are a lint error (see :mod:`repro.analysis.lint`).
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "DEFAULT_CLOCK", "session_wall_time"]

#: A zero-argument monotonic time source, in seconds.  Injectable wherever
#: telemetry reads time (the PR-7 ``InitVar`` seam on :class:`~repro.obs.trace.Tracer`,
#: the ``clock`` argument of :func:`~repro.obs.trace.trace_span`), so tests
#: drive deterministic timestamps instead of sleeping.
Clock = Callable[[], float]

DEFAULT_CLOCK: Clock = time.perf_counter


def session_wall_time() -> float:
    """Wall-clock stamp recorded once per trace session (metadata only).

    Never used for durations — those are all ``perf_counter`` deltas.
    """
    return time.time()
