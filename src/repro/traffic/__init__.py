"""Traffic scenarios: destination patterns shared by model and simulators.

``repro.traffic`` makes non-uniform workloads first-class: a
:class:`TrafficSpec` describes a per-source destination distribution once,
and both layers consume it — the simulators sample from it
(``PoissonTraffic(..., spec=...)``) while the analytical side propagates it
into per-channel rates and a solvable Section 2 stage graph
(:func:`bft_traffic_stage_graph` / :func:`hypercube_traffic_stage_graph`,
or ``ButterflyFatTreeModel.traffic_model``).
"""

from .analytic import (
    bft_traffic_stage_graph,
    hypercube_traffic_stage_graph,
    stage_graph_from_flows,
)
from .flows import ChannelFlows, bft_channel_flows, single_path_flows
from .spec import (
    BitComplementSpec,
    BitReversalSpec,
    BurstyArrivals,
    HotspotSpec,
    PermutationSpec,
    QuadLocalSpec,
    TornadoSpec,
    TrafficSpec,
    TransposeSpec,
    UniformSpec,
    available_patterns,
    make_spec,
    pattern_descriptions,
    register_spec,
)

__all__ = [
    "BitComplementSpec",
    "BitReversalSpec",
    "BurstyArrivals",
    "ChannelFlows",
    "HotspotSpec",
    "PermutationSpec",
    "QuadLocalSpec",
    "TornadoSpec",
    "TrafficSpec",
    "TransposeSpec",
    "UniformSpec",
    "available_patterns",
    "bft_channel_flows",
    "bft_traffic_stage_graph",
    "hypercube_traffic_stage_graph",
    "make_spec",
    "pattern_descriptions",
    "register_spec",
    "single_path_flows",
    "stage_graph_from_flows",
]
