"""Per-channel flow propagation: traffic specs -> channel arrival rates.

The paper's Section 3.2 derives per-*class* channel rates (Eq. 14) under
uniform traffic by symmetry.  For an arbitrary destination distribution the
symmetry breaks — a hotspot drives one ejection channel far above its class
average — so this module propagates a :class:`~repro.traffic.spec.TrafficSpec`
through a network's actual routing function and accounts flow on every
*physical* channel:

* :func:`bft_channel_flows` walks the butterfly fat-tree's adaptive
  up/down routing.  Climbing worms split equally over the two parent links
  of every switch (the simulator's uniform tie-break has the same marginal),
  and all level-``l`` ancestors of a leaf cover the same leaf block, so the
  climb distribution is independent of the destination; the descent follows
  the unique down path.  The computation is exact under these routing
  semantics.
* :func:`single_path_flows` walks any deterministically routed topology
  (the e-cube hypercube) destination by destination.

Both return a :class:`ChannelFlows` record normalized *per unit injection
rate* — multiply by ``lambda_0`` for absolute rates — carrying per-link
rates, link-to-link transition flows (which become the routing
probabilities ``R_{i|j}`` of the Section 2 recursion), and the per-source
mean channel distance needed by the Eq. 25 latency formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .spec import TrafficSpec, UniformSpec

__all__ = [
    "ChannelFlows",
    "bft_channel_flows",
    "single_path_flows",
    "masked_channel_flows",
]


@dataclass(frozen=True)
class ChannelFlows:
    """Flow accounting of one (topology, traffic spec) pair.

    All quantities are per unit per-source injection rate (``lambda_0 = 1``
    for an activity-1 source); rates scale linearly with the workload.

    Attributes
    ----------
    topology:
        The network the flows were traced on (link ids refer to it).
    link_rate:
        Message rate carried by each physical link, shape ``(num_links,)``.
    edge_flow:
        ``edge_flow[e][f]`` is the rate of messages leaving link ``e``
        directly onto link ``f`` (one dict per link; terminal ejection
        links have empty dicts).
    entry_link:
        Injection link of each *active* source PE.
    source_weight:
        Per-source activity (0 for silent sources of deterministic
        patterns), shape ``(N,)``.
    source_distance:
        Mean path length in channels — injection and ejection included —
        for each active source (``nan`` for silent ones), shape ``(N,)``.
    """

    topology: object
    link_rate: np.ndarray
    edge_flow: tuple[dict[int, float], ...]
    entry_link: dict[int, int]
    source_weight: np.ndarray
    source_distance: np.ndarray

    @property
    def total_rate(self) -> float:
        """Aggregate injected rate (equals the number of active sources)."""
        return float(self.source_weight.sum())

    def average_distance(self) -> float:
        """Traffic-weighted mean channel distance over active sources."""
        w = self.source_weight
        active = w > 0
        return float(np.sum(w[active] * self.source_distance[active]) / w[active].sum())


def _spec_matrix(spec: TrafficSpec, num_pes: int) -> np.ndarray:
    spec.validate(num_pes)
    matrix = np.asarray(spec.destination_matrix(num_pes), dtype=float)
    if matrix.shape != (num_pes, num_pes):
        raise ConfigurationError(
            f"destination matrix must have shape ({num_pes}, {num_pes})"
        )
    if np.any(matrix < 0) or np.any(np.diagonal(matrix) != 0.0):
        raise ConfigurationError(
            "destination matrix must be non-negative with a zero diagonal"
        )
    return matrix


def bft_channel_flows(topology, spec: TrafficSpec) -> ChannelFlows:
    """Exact per-link flows of ``spec`` on a butterfly fat-tree.

    Cost is roughly ``O(N * sqrt(N) * levels)`` for dense destination
    matrices (much less for permutation patterns); instant for the sizes
    the experiments use (``N <= 256``).
    """
    n_pes = topology.num_processors
    levels = topology.levels
    matrix = _spec_matrix(spec, n_pes)
    activity = matrix.sum(axis=1)

    link_rate = np.zeros(topology.num_links)
    edge_flow: tuple[dict[int, float], ...] = tuple(
        {} for _ in range(topology.num_links)
    )
    entry_link: dict[int, int] = {}
    source_distance = np.full(n_pes, np.nan)
    link_dst = topology.link_dst

    def add(e_from: int, e_to: int, mass: float) -> None:
        edge_flow[e_from][e_to] = edge_flow[e_from].get(e_to, 0.0) + mass
        link_rate[e_to] += mass

    def descend(node: int, from_link: int, block_lo: int, block_size: int, pvec) -> None:
        """Push turning flow down the unique per-quarter child links."""
        quarter = block_size // 4
        for qi in range(4):
            sub = pvec[qi * quarter : (qi + 1) * quarter]
            mass = float(sub.sum())
            if mass <= 0.0:
                continue
            qlo = block_lo + qi * quarter
            opts = topology.route_options(node, qlo)
            down = opts.links[0]
            add(from_link, down, mass)
            if quarter > 1:
                descend(opts.next_nodes[0], down, qlo, quarter, sub)

    for s in range(n_pes):
        p = matrix[s]
        weight = float(activity[s])
        if weight <= 0.0:
            continue
        # climb[l]: mass that must reach at least level l (NCA >= l).
        climb = np.zeros(levels + 2)
        for l in range(1, levels + 1):
            blk = 4 ** (l - 1)
            lo = (s // blk) * blk
            climb[l] = weight - float(p[lo : lo + blk].sum())
        source_distance[s] = 2.0 * float(climb[1 : levels + 1].sum()) / weight

        inject = topology.injection_options(s).links[0]
        entry_link[s] = inject
        link_rate[inject] += weight
        # frontier: mass arriving at level-l switches, keyed by incoming link.
        frontier = {inject: weight}
        for l in range(1, levels + 1):
            here, upward = climb[l], climb[l + 1]
            if here <= 0.0:
                break
            blk = 4**l
            lo = (s // blk) * blk
            inner = 4 ** (l - 1)
            ilo = (s // inner) * inner
            p_turn = p[lo : lo + blk].copy()
            p_turn[ilo - lo : ilo - lo + inner] = 0.0
            turning = float(p_turn.sum())
            next_frontier: dict[int, float] = {}
            for e_in, mass in frontier.items():
                switch = link_dst[e_in]
                if turning > 0.0:
                    descend(switch, e_in, lo, blk, p_turn * (mass / here))
                if upward > 0.0:
                    cont = mass * (upward / here)
                    outside = lo + blk if lo + blk < n_pes else lo - 1
                    ups = topology.route_options(switch, outside)
                    share = cont / len(ups.links)
                    for up in ups.links:
                        add(e_in, up, share)
                        next_frontier[up] = next_frontier.get(up, 0.0) + share
            frontier = next_frontier

    return ChannelFlows(
        topology=topology,
        link_rate=link_rate,
        edge_flow=edge_flow,
        entry_link=entry_link,
        source_weight=activity,
        source_distance=source_distance,
    )


def masked_channel_flows(topology, spec: TrafficSpec | None = None) -> ChannelFlows:
    """Exact per-link flows on any (possibly fault-masked) topology.

    Routing-agnostic tracer: every positive-probability (source,
    destination) pair is propagated hop by hop, splitting its mass equally
    over the alternatives each :meth:`route_options` call offers (matching
    the simulators' uniform tie-break).  On a nominal butterfly fat-tree
    this reproduces :func:`bft_channel_flows` exactly up to float summation
    order; on a :class:`~repro.faults.mask.FaultedTopology` the rerouted
    mass concentrates on the surviving siblings, which is precisely the
    redundancy loss the degraded stage graph prices.

    Distances use :meth:`path_length` directly — fault masking only filters
    minimal-routing alternatives, so surviving paths keep nominal lengths.
    Cost is ``O(pairs x hops x frontier width)``: a few seconds for dense
    uniform traffic at ``N = 256``, instant at experiment quick sizes.

    Raises
    ------
    PartitionedNetworkError
        (from the topology's routing) when a traffic-carrying pair has no
        surviving route.
    """
    if spec is None:
        spec = UniformSpec()
    n_pes = topology.num_processors
    matrix = _spec_matrix(spec, n_pes)
    activity = matrix.sum(axis=1)

    link_rate = np.zeros(topology.num_links)
    edge_flow: tuple[dict[int, float], ...] = tuple(
        {} for _ in range(topology.num_links)
    )
    entry_link: dict[int, int] = {}
    source_distance = np.full(n_pes, np.nan)

    for s in range(n_pes):
        weight = float(activity[s])
        if weight <= 0.0:
            continue
        inj = topology.injection_options(s)
        if len(inj.links) != 1:
            raise ConfigurationError(
                "masked_channel_flows expects a single injection channel; "
                f"PE {s} offers {len(inj.links)}"
            )
        entry_link[s] = inj.links[0]
        hops = 0.0
        for d in np.nonzero(matrix[s] > 0.0)[0]:
            d = int(d)
            mass = float(matrix[s, d])
            link_rate[inj.links[0]] += mass
            hops += mass * topology.path_length(s, d)
            # frontier: in-flight mass keyed by (incoming link, current node).
            frontier = {(inj.links[0], inj.next_nodes[0]): mass}
            while frontier:
                nxt: dict[tuple[int, int], float] = {}
                for (e_in, node), m in frontier.items():
                    if node == d:
                        continue
                    opts = topology.route_options(node, d)
                    share = m / len(opts.links)
                    for e_out, n_out in zip(opts.links, opts.next_nodes):
                        edge_flow[e_in][e_out] = (
                            edge_flow[e_in].get(e_out, 0.0) + share
                        )
                        link_rate[e_out] += share
                        key = (e_out, n_out)
                        nxt[key] = nxt.get(key, 0.0) + share
                frontier = nxt
        source_distance[s] = hops / weight

    return ChannelFlows(
        topology=topology,
        link_rate=link_rate,
        edge_flow=edge_flow,
        entry_link=entry_link,
        source_weight=activity,
        source_distance=source_distance,
    )


def single_path_flows(topology, spec: TrafficSpec) -> ChannelFlows:
    """Per-link flows on a deterministically routed topology (e.g. e-cube).

    Walks every positive-probability (source, destination) pair through
    :meth:`route_options`; raises when the topology ever offers more than
    one link (adaptive routing needs a dedicated tracer like
    :func:`bft_channel_flows`).
    """
    n_pes = topology.num_processors
    matrix = _spec_matrix(spec, n_pes)
    activity = matrix.sum(axis=1)

    link_rate = np.zeros(topology.num_links)
    edge_flow: tuple[dict[int, float], ...] = tuple(
        {} for _ in range(topology.num_links)
    )
    entry_link: dict[int, int] = {}
    source_distance = np.full(n_pes, np.nan)

    for s in range(n_pes):
        weight = float(activity[s])
        if weight <= 0.0:
            continue
        inj = topology.injection_options(s)
        entry_link[s] = inj.links[0]
        hops = 0.0
        for d in np.nonzero(matrix[s] > 0.0)[0]:
            mass = float(matrix[s, d])
            link, node = inj.links[0], inj.next_nodes[0]
            link_rate[link] += mass
            length = 1
            while node != d:
                opts = topology.route_options(node, int(d))
                if len(opts.links) != 1:
                    raise ConfigurationError(
                        "single_path_flows requires deterministic routing; "
                        f"node {node} offers {len(opts.links)} links"
                    )
                nxt = opts.links[0]
                edge_flow[link][nxt] = edge_flow[link].get(nxt, 0.0) + mass
                link_rate[nxt] += mass
                link, node = nxt, opts.next_nodes[0]
                length += 1
            hops += mass * length
        source_distance[s] = hops / weight

    return ChannelFlows(
        topology=topology,
        link_rate=link_rate,
        edge_flow=edge_flow,
        entry_link=entry_link,
        source_weight=activity,
        source_distance=source_distance,
    )
