"""Pattern-aware analytical models: channel flows -> Section 2 stage graphs.

Converts the exact per-channel flow accounting of
:mod:`repro.traffic.flows` into a
:class:`~repro.core.generic_model.ChannelGraphModel`, making non-uniform
destination patterns solvable by the same Eqs. 3-11 recursion (and the same
batch engine) that reproduces the paper's uniform results:

* every physical channel becomes a stage (the fat-tree's redundant up-link
  pairs pool into one two-server stage, exactly like the closed-form
  model's M/G/2 treatment, unless the variant disables it);
* transition probabilities are flow ratios, and the per-queue routing
  probabilities ``R_{i|j}`` feeding the Eq. 10 blocking correction are the
  ratios against the specific feeding link;
* every *active* source contributes an entry point weighted by its traffic
  share with its own mean channel distance, generalizing Eq. 25 to
  asymmetric workloads.

For the uniform spec on a butterfly fat-tree this construction reproduces
the closed-form :class:`~repro.core.bft_model.ButterflyFatTreeModel` with
the exact *conditional* climb probabilities
(:meth:`ModelVariant.conditional_up`) — flow conservation forces the exact
branching, so the paper's unconditional-``P^_l`` approximation has no
per-channel analogue and the ``conditional_up_probability`` switch is
ignored here.  All other variant switches (multi-server pooling, blocking
correction, SCV mode) apply unchanged.
"""

from __future__ import annotations

import numpy as np

from ..config import Workload
from ..core.generic_model import ChannelGraphModel, EntryPoint, Stage, Transition
from ..core.variants import ModelVariant
from ..errors import ConfigurationError
from ..topology.base import DOWN, UP
from ..topology.butterfly_fattree import ButterflyFatTree
from ..topology.hypercube import Hypercube
from ..util.validation import check_power_of
from .flows import ChannelFlows, bft_channel_flows, single_path_flows
from .spec import TrafficSpec

__all__ = [
    "stage_graph_from_flows",
    "bft_traffic_stage_graph",
    "hypercube_traffic_stage_graph",
]


def _stage_name(topology, members: list[int]) -> str:
    """Readable unique stage names: inj<pe> / ej<pe> / ch<link> / pool<link>."""
    e = members[0]
    cls = topology.link_class[e]
    if len(members) > 1:
        return f"pool{e}"
    if cls.level == 0 and cls.direction == UP:
        return f"inj{topology.link_src[e]}"
    if cls.level == 0 and cls.direction == DOWN:
        return f"ej{topology.link_dst[e]}"
    return f"ch{e}"


def stage_graph_from_flows(
    flows: ChannelFlows,
    workload: Workload,
    variant: ModelVariant | None = None,
) -> ChannelGraphModel:
    """Build the Section 2 stage graph of one traced traffic pattern.

    Channels pool into multi-server stages along the topology's resource
    groups (the fat-tree's up-link pairs) when the variant keeps the
    multi-server treatment; otherwise every link is its own M/G/1 stage.
    Links that carry no flow are omitted.  The graph is built at
    ``workload``'s rate and scales linearly — the returned model's
    ``latency_batch`` / ``stability_batch`` evaluate whole load grids in
    one NumPy pass, and its ``reference_rate`` is the workload's
    ``injection_rate`` so loads keep meaning "lambda_0 per (active) PE".
    """
    variant = variant or ModelVariant.paper()
    topology = flows.topology
    lam0 = workload.injection_rate
    if lam0 <= 0.0:
        raise ConfigurationError(
            "traffic stage graphs need a positive reference injection rate"
        )
    if variant.multiserver_up:
        groups = [list(g) for g in topology.groups]
    else:
        groups = [[e] for e in range(topology.num_links)]
    group_of = np.empty(topology.num_links, dtype=int)
    for gid, members in enumerate(groups):
        for e in members:
            group_of[e] = gid

    rate = flows.link_rate
    group_rate = np.array([sum(rate[e] for e in g) for g in groups])
    names = [
        _stage_name(topology, members) if group_rate[gid] > 0.0 else None
        for gid, members in enumerate(groups)
    ]

    stages: list[Stage] = []
    for gid, members in enumerate(groups):
        if names[gid] is None:
            continue
        # flow and feeding-link rate aggregated per downstream group
        out: dict[int, list[float]] = {}
        for e in members:
            for target_link, flow in flows.edge_flow[e].items():
                tg = int(group_of[target_link])
                rec = out.setdefault(tg, [0.0, 0.0, -1])
                rec[0] += flow
                if rec[2] != e:  # count each feeding link's rate once
                    rec[1] += rate[e]
                    rec[2] = e
        total_out = sum(rec[0] for rec in out.values())
        transitions = []
        for tg, (flow, feed_rate, _) in sorted(out.items()):
            if flow <= 0.0:
                continue
            transitions.append(
                Transition(
                    names[tg],
                    probability=min(1.0, flow / total_out),
                    queue_probability=min(1.0, flow / feed_rate),
                )
            )
        stages.append(
            Stage(
                names[gid],
                rate_per_server=lam0 * float(group_rate[gid]) / len(members),
                servers=len(members),
                transitions=tuple(transitions),
            )
        )

    entries = []
    for s in sorted(flows.entry_link):
        name = names[group_of[flows.entry_link[s]]]
        entries.append(
            EntryPoint(
                name=name,
                weight=float(flows.source_weight[s]),
                distance=float(flows.source_distance[s]),
            )
        )
    if not entries:
        raise ConfigurationError("traffic spec generates no traffic (all sources silent)")
    return ChannelGraphModel(
        stages,
        message_flits=workload.message_flits,
        entries=tuple(entries),
        variant=variant,
        reference_rate=lam0,
    )


def bft_traffic_stage_graph(
    num_processors: int,
    workload: Workload,
    spec: TrafficSpec,
    variant: ModelVariant | None = None,
) -> ChannelGraphModel:
    """Pattern-aware per-channel model of a butterfly fat-tree.

    The analytical counterpart of driving the simulators with
    ``PoissonTraffic(..., spec=spec)``: destination probabilities propagate
    through the adaptive up/down routing into per-channel rates, and the
    resulting graph solves, sweeps and saturation-searches through the
    batch engine like every other model.
    """
    check_power_of("num_processors", num_processors, 4)
    flows = bft_channel_flows(ButterflyFatTree(num_processors), spec)
    return stage_graph_from_flows(flows, workload, variant)


def hypercube_traffic_stage_graph(
    dimension: int,
    workload: Workload,
    spec: TrafficSpec,
    variant: ModelVariant | None = None,
) -> ChannelGraphModel:
    """Pattern-aware per-channel model of a binary e-cube hypercube."""
    if not isinstance(dimension, int) or dimension < 1:
        raise ConfigurationError(
            f"dimension must be a positive integer, got {dimension!r}"
        )
    flows = single_path_flows(Hypercube(dimension), spec)
    return stage_graph_from_flows(flows, workload, variant)
