"""Traffic scenarios: destination patterns as first-class specifications.

The paper's analysis assumes uniformly random destinations (assumption 1),
but its channel-rate derivation (Eq. 14) is just flow accounting and works
for *any* per-source destination distribution.  A :class:`TrafficSpec`
captures exactly that distribution — for every source PE, a probability
vector over destinations — in a form both layers of the library consume:

* the simulators sample destinations from it
  (:class:`~repro.simulation.traffic.PoissonTraffic` takes a ``spec``), and
* the analytical side propagates it through a network's routing function to
  obtain per-channel arrival rates and routing probabilities
  (:mod:`repro.traffic.flows` / :mod:`repro.traffic.analytic`).

Built-in patterns (registry names in parentheses):

* :class:`UniformSpec` (``uniform``) — the paper's assumption 1;
* :class:`PermutationSpec` (``permutation``) — a fixed random derangement;
* :class:`HotspotSpec` (``hotspot``) — probability ``f`` to one hot node,
  the remainder uniform over the others;
* :class:`QuadLocalSpec` (``quad-local``) — uniform within the source's
  4-leaf quad;
* :class:`TransposeSpec` (``transpose``) — swap the two halves of the
  address bits (matrix-transpose communication);
* :class:`BitReversalSpec` (``bit-reversal``) — reverse the address bits
  (FFT communication);
* :class:`BitComplementSpec` (``bit-complement``) — complement every bit
  (worst-case distance permutation);
* :class:`TornadoSpec` (``tornado``) — offset by half the machine.

Deterministic patterns may have fixed points (``destination == source``,
e.g. node 0 under transpose); those sources are *silent* — they inject no
traffic — following the usual interconnect-benchmark convention.  A spec
reports this through :meth:`TrafficSpec.source_activity`.

:class:`BurstyArrivals` is an orthogonal *arrival-process* modifier: a
two-state modulated Poisson process (ON-OFF) with the same long-run rate
but bursty short-term behaviour.  It changes message timing, not
destinations, and is honoured by the simulators only — the analytical model
keeps the Poisson arrival assumption and sees the long-run mean rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "TrafficSpec",
    "UniformSpec",
    "PermutationSpec",
    "HotspotSpec",
    "QuadLocalSpec",
    "TransposeSpec",
    "BitReversalSpec",
    "BitComplementSpec",
    "TornadoSpec",
    "BurstyArrivals",
    "make_spec",
    "register_spec",
    "available_patterns",
]


def _check_num_pes(num_pes: int) -> None:
    if not isinstance(num_pes, int) or num_pes < 2:
        raise ConfigurationError(f"num_pes must be an integer >= 2, got {num_pes!r}")


def _uniform_excluding(src: int, lo: int, hi: int, rng: np.random.Generator) -> int:
    """Uniform draw from ``[lo, hi)`` excluding ``src`` (must lie inside)."""
    d = int(rng.integers(lo, hi - 1))
    return d + 1 if d >= src else d


class TrafficSpec:
    """A per-source destination distribution (plus optional silent sources).

    Subclasses implement :meth:`destination_matrix`; the base class derives
    sampling and activity from it (built-ins override both with closed
    forms, so the dense matrix is only materialized when the analytical
    path needs it).  Specs are stateless with respect to the network size:
    the same instance can describe a 16-PE and a 1024-PE machine.
    """

    #: Registry name; subclasses override.
    name: str = "base"

    def validate(self, num_pes: int) -> None:
        """Raise :class:`ConfigurationError` when the pattern cannot apply."""
        _check_num_pes(num_pes)

    # --- the distribution ----------------------------------------------------

    def destination_matrix(self, num_pes: int) -> np.ndarray:
        """``(N, N)`` matrix: row ``s`` is the destination distribution of
        source ``s``.  Rows sum to 1 for active sources and to 0 for silent
        ones; the diagonal is always 0 (no self-addressed messages)."""
        raise NotImplementedError

    def source_activity(self, num_pes: int) -> np.ndarray:
        """Per-source injection-rate multiplier (the row sums).

        Built-ins use 1 (active) or 0 (silent fixed point); custom specs
        may use fractional values — both the analytical flow accounting and
        :class:`~repro.simulation.traffic.PoissonTraffic` scale that
        source's rate by the same factor.
        """
        self.validate(num_pes)
        return self.destination_matrix(num_pes).sum(axis=1)

    def sample_destination(self, src: int, num_pes: int, rng: np.random.Generator) -> int:
        """Draw one destination for a message sourced at ``src``.

        The generic implementation inverts the cumulative row of
        :meth:`destination_matrix` (cached per network size); calling it for
        a silent source is an error.
        """
        cdf = self._cached_cdf(num_pes)[src]
        if cdf[-1] <= 0.0:
            raise ConfigurationError(
                f"source {src} is silent under pattern {self.name!r}"
            )
        return int(np.searchsorted(cdf, rng.random() * cdf[-1], side="right"))

    def _cached_cdf(self, num_pes: int) -> np.ndarray:
        cache = getattr(self, "_cdf_cache", None)
        if cache is None or cache[0] != num_pes:
            self.validate(num_pes)
            cache = (num_pes, np.cumsum(self.destination_matrix(num_pes), axis=1))
            # Specs are otherwise immutable; the cache is a pure memo.
            object.__setattr__(self, "_cdf_cache", cache)
        return cache[1]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return self.name


class _PermutationLike(TrafficSpec):
    """Shared machinery for deterministic one-destination-per-source patterns."""

    def destination_of(self, src: int, num_pes: int) -> int:
        """The fixed destination of ``src`` (may equal ``src``: silent)."""
        raise NotImplementedError

    def destination_matrix(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        m = np.zeros((num_pes, num_pes))
        for s in range(num_pes):
            d = self.destination_of(s, num_pes)
            if d != s:
                m[s, d] = 1.0
        return m

    def source_activity(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        return np.array(
            [
                0.0 if self.destination_of(s, num_pes) == s else 1.0
                for s in range(num_pes)
            ]
        )

    def sample_destination(self, src: int, num_pes: int, rng: np.random.Generator) -> int:
        d = self.destination_of(src, num_pes)
        if d == src:
            raise ConfigurationError(
                f"source {src} is silent under pattern {self.name!r}"
            )
        return d


@dataclass(frozen=True)
class UniformSpec(TrafficSpec):
    """Uniformly random destination excluding the source (assumption 1)."""

    name: str = "uniform"

    def destination_matrix(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        m = np.full((num_pes, num_pes), 1.0 / (num_pes - 1))
        np.fill_diagonal(m, 0.0)
        return m

    def source_activity(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        return np.ones(num_pes)

    def sample_destination(self, src: int, num_pes: int, rng: np.random.Generator) -> int:
        return _uniform_excluding(src, 0, num_pes, rng)


@dataclass(frozen=True)
class PermutationSpec(_PermutationLike):
    """A fixed random derangement: PE ``i`` always sends to ``pi(i)``.

    ``seed`` makes the derangement reproducible; pass ``permutation``
    explicitly to pin a specific mapping (entries equal to their index are
    treated as silent sources).
    """

    seed: int = 0
    permutation: tuple[int, ...] | None = None
    name: str = "permutation"

    def validate(self, num_pes: int) -> None:
        super().validate(num_pes)
        if self.permutation is not None:
            perm = tuple(self.permutation)
            if sorted(perm) != list(range(num_pes)):
                raise ConfigurationError(
                    f"permutation must be a permutation of 0..{num_pes - 1}"
                )

    def permutation_for(self, num_pes: int) -> np.ndarray:
        """The concrete permutation applied to an ``num_pes``-PE machine.

        Cached per network size (for explicit permutations too — this is
        the per-message sampling hot path).
        """
        cache = getattr(self, "_perm_cache", None)
        if cache is None or cache[0] != num_pes:
            self.validate(num_pes)
            if self.permutation is not None:
                perm = np.asarray(self.permutation, dtype=int)
            else:
                rng = np.random.default_rng(self.seed)
                while True:
                    perm = rng.permutation(num_pes)
                    if not np.any(perm == np.arange(num_pes)):
                        break
            cache = (num_pes, perm)
            object.__setattr__(self, "_perm_cache", cache)
        return cache[1]

    def destination_of(self, src: int, num_pes: int) -> int:
        return int(self.permutation_for(num_pes)[src])


@dataclass(frozen=True)
class HotspotSpec(TrafficSpec):
    """With probability ``fraction`` send to ``target``; else uniform.

    The uniform remainder excludes both the source and the target, so the
    probability of hitting the hot node is *exactly* ``fraction`` for every
    other source (the naive fallback-includes-target construction inflates
    it to ``f + (1 - f) / (N - 1)``).  The target itself sends uniformly.
    """

    fraction: float = 0.1
    target: int = 0
    name: str = "hotspot"

    def __post_init__(self) -> None:
        # Bad CLI/JSON input must surface as ConfigurationError (exit 2 with a
        # one-line message), never a bare TypeError from the comparison below.
        if isinstance(self.fraction, bool) or not isinstance(
            self.fraction, (int, float)
        ):
            raise ConfigurationError(
                "hotspot_fraction must be a number, got "
                f"{type(self.fraction).__name__}"
            )
        if math.isnan(self.fraction) or not (0.0 <= self.fraction <= 1.0):
            raise ConfigurationError(
                f"hotspot_fraction must be in [0, 1], got {self.fraction!r}"
            )
        if (
            isinstance(self.target, bool)
            or not isinstance(self.target, int)
            or self.target < 0
        ):
            raise ConfigurationError("hotspot_target must be a non-negative integer")

    def validate(self, num_pes: int) -> None:
        super().validate(num_pes)
        if self.target >= num_pes:
            raise ConfigurationError("hotspot_target out of range")
        if num_pes < 3 and self.fraction < 1.0:
            raise ConfigurationError("hotspot with fraction < 1 requires >= 3 PEs")

    def destination_matrix(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        f, t = self.fraction, self.target
        m = np.full((num_pes, num_pes), (1.0 - f) / (num_pes - 2))
        m[:, t] = f
        m[t, :] = 1.0 / (num_pes - 1)
        np.fill_diagonal(m, 0.0)
        m[t, t] = 0.0
        return m

    def source_activity(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        return np.ones(num_pes)

    def sample_destination(self, src: int, num_pes: int, rng: np.random.Generator) -> int:
        t = self.target
        if src == t:
            return _uniform_excluding(src, 0, num_pes, rng)
        if rng.random() < self.fraction:
            return t
        # Uniform over the N-2 destinations that are neither src nor target.
        d = int(rng.integers(0, num_pes - 2))
        a, b = (src, t) if src < t else (t, src)
        if d >= a:
            d += 1
        if d >= b:
            d += 1
        return d


@dataclass(frozen=True)
class QuadLocalSpec(TrafficSpec):
    """Uniform within the source's 4-leaf quad (shares a level-1 switch)."""

    name: str = "quad-local"

    def validate(self, num_pes: int) -> None:
        super().validate(num_pes)
        if num_pes % 4 != 0:
            raise ConfigurationError("quad-local requires num_pes divisible by 4")

    def destination_matrix(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        m = np.zeros((num_pes, num_pes))
        for s in range(num_pes):
            quad = s - s % 4
            m[s, quad : quad + 4] = 1.0 / 3.0
            m[s, s] = 0.0
        return m

    def source_activity(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        return np.ones(num_pes)

    def sample_destination(self, src: int, num_pes: int, rng: np.random.Generator) -> int:
        quad = src - src % 4
        return _uniform_excluding(src, quad, quad + 4, rng)


def _bits_of(num_pes: int, pattern: str) -> int:
    bits = num_pes.bit_length() - 1
    if num_pes < 2 or (1 << bits) != num_pes:
        raise ConfigurationError(f"{pattern} requires num_pes to be a power of 2")
    return bits


@dataclass(frozen=True)
class TransposeSpec(_PermutationLike):
    """Swap the high and low halves of the address bits (matrix transpose).

    Requires ``N = 2**(2k)``; the ``2**k`` sources whose halves coincide are
    fixed points and stay silent.
    """

    name: str = "transpose"

    def validate(self, num_pes: int) -> None:
        super().validate(num_pes)
        if _bits_of(num_pes, self.name) % 2 != 0:
            raise ConfigurationError(
                "transpose requires num_pes to be an even power of 2"
            )

    def destination_of(self, src: int, num_pes: int) -> int:
        half = _bits_of(num_pes, self.name) // 2
        lo = src & ((1 << half) - 1)
        return (src >> half) | (lo << half)


@dataclass(frozen=True)
class BitReversalSpec(_PermutationLike):
    """Reverse the address bits (the FFT butterfly exchange pattern).

    Palindromic addresses are fixed points and stay silent.
    """

    name: str = "bit-reversal"

    def validate(self, num_pes: int) -> None:
        super().validate(num_pes)
        _bits_of(num_pes, self.name)

    def destination_of(self, src: int, num_pes: int) -> int:
        bits = _bits_of(num_pes, self.name)
        out = 0
        for k in range(bits):
            out = (out << 1) | ((src >> k) & 1)
        return out


@dataclass(frozen=True)
class BitComplementSpec(_PermutationLike):
    """Complement every address bit (no fixed points; maximal distances)."""

    name: str = "bit-complement"

    def validate(self, num_pes: int) -> None:
        super().validate(num_pes)
        _bits_of(num_pes, self.name)

    def destination_of(self, src: int, num_pes: int) -> int:
        return src ^ (num_pes - 1)


@dataclass(frozen=True)
class TornadoSpec(_PermutationLike):
    """Send halfway around the machine: ``dst = (src + N // 2) mod N``.

    The classic adversarial pattern for rings/tori; on indirect networks it
    is simply a fixed long-range permutation with no fixed points.
    """

    name: str = "tornado"

    def destination_of(self, src: int, num_pes: int) -> int:
        return (src + num_pes // 2) % num_pes


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state modulated Poisson (ON-OFF) arrival modifier.

    Each source alternates between exponentially distributed ON periods
    (mean ``burst_cycles``) during which it injects at ``rate / duty``, and
    OFF periods (mean ``burst_cycles * (1 - duty) / duty``) during which it
    is silent.  The long-run mean rate equals the workload's configured
    injection rate; only the short-term variability changes (inter-arrival
    CV > 1).  Consumed by the simulators; the analytical model keeps the
    Poisson assumption and sees the mean rate.
    """

    duty: float = 0.25
    burst_cycles: float = 50.0

    def __post_init__(self) -> None:
        if not (0.0 < self.duty <= 1.0):
            raise ConfigurationError(f"duty must be in (0, 1], got {self.duty!r}")
        if self.burst_cycles <= 0.0:
            raise ConfigurationError(
                f"burst_cycles must be positive, got {self.burst_cycles!r}"
            )

    @property
    def on_rate_factor(self) -> float:
        """Rate multiplier while ON (``1 / duty``)."""
        return 1.0 / self.duty

    @property
    def off_cycles(self) -> float:
        """Mean OFF duration preserving the long-run rate."""
        return self.burst_cycles * (1.0 - self.duty) / self.duty


# --- registry -----------------------------------------------------------------------

_REGISTRY: dict[str, type[TrafficSpec]] = {}


def register_spec(cls: type[TrafficSpec]) -> type[TrafficSpec]:
    """Add a spec class to the pattern registry (keyed by ``cls.name``)."""
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (
    UniformSpec,
    PermutationSpec,
    HotspotSpec,
    QuadLocalSpec,
    TransposeSpec,
    BitReversalSpec,
    BitComplementSpec,
    TornadoSpec,
):
    register_spec(_cls)


def available_patterns() -> list[str]:
    """Registered pattern names (the CLI's ``--pattern`` choices)."""
    return sorted(_REGISTRY)


def pattern_descriptions() -> dict[str, str]:
    """``{name: one-line description}`` for every registered pattern.

    The description is the first line of the spec class's docstring —
    the registry stays the single source of truth, and the CLI's
    ``repro patterns`` listing picks up custom
    :func:`register_spec` entries automatically.
    """
    out: dict[str, str] = {}
    for name in available_patterns():
        doc = (_REGISTRY[name].__doc__ or "").strip()
        first = doc.splitlines()[0].strip() if doc else ""
        out[name] = first.replace("``", "")
    return out


def make_spec(
    name: str,
    *,
    hotspot_fraction: float = 0.1,
    hotspot_target: int = 0,
    permutation_seed: int = 0,
    permutation=None,
) -> TrafficSpec:
    """Instantiate a registered pattern by name.

    Pattern-specific parameters are accepted uniformly and ignored by
    patterns that do not use them, so callers (the CLI in particular) can
    forward one flag set for every pattern.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; known: {', '.join(available_patterns())}"
        ) from None
    if cls is HotspotSpec:
        return HotspotSpec(fraction=hotspot_fraction, target=hotspot_target)
    if cls is PermutationSpec:
        perm = tuple(permutation) if permutation is not None else None
        return PermutationSpec(seed=permutation_seed, permutation=perm)
    return cls()
