"""Analytical model for generalized (c, p) fat-trees — the conclusion's claim.

The paper closes with: "the framework can be extended for networks that
require queuing models with more than two servers."  This module carries
out that extension.  All of Section 3's derivations generalize directly:

* climb probability:  ``P^_l = (c^n - c^l) / (c^n - 1)``;
* channel rates:      ``lambda_{l,l+1} = lambda_0 * P^_l * (c/p)^l``
  (``N * P^_l * lambda_0`` messages spread over ``N * (p/c)^l`` links);
* down sweep:         one of ``c`` children, ``R = 1/c`` (Eq. 18 shape);
* up sweep:           the ``p`` parent links form one M/G/p channel fed the
  total rate ``p * lambda`` (Eqs. 20-23 shape, with
  :func:`repro.queueing.mgm.mgm_waiting_time` supplying the general-``m``
  Hokstad-style wait), and the turn-down branch targets one of ``c - 1``
  sibling channels;
* latency/throughput: Eqs. 25-26 unchanged, with
  ``D_bar = sum_l 2 l (c^l - c^(l-1)) / (c^n - 1)``.

Setting ``(c, p) = (4, 2)`` reproduces
:class:`~repro.core.bft_model.ButterflyFatTreeModel` to machine precision
(a test asserts it), so this is a strict generalization, not a parallel
implementation.

Like the 4-2 model, the sweeps are implemented batched: ``solve_batch`` /
``latency_batch`` evaluate a whole vector of injection rates in one NumPy
pass (``inf`` propagating per point past saturation), and the scalar
``solve`` / ``latency`` are one-point wrappers over that engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError
from ..queueing.distributions import scv_for_mode_batch
from ..queueing.mg1 import mg1_waiting_time_batch
from ..queueing.mgm import mgm_waiting_time_batch
from .batch import (
    BatchSolution,
    as_injection_rates,
    assemble_level_batch,
    charged_wait,
    level_detail_columns,
)
from .blocking import blocking_probability_batch
from .variants import ModelVariant

__all__ = [
    "GeneralizedFatTreeModel",
    "generalized_up_probability",
    "generalized_channel_rates",
    "generalized_channel_rates_batch",
    "generalized_average_distance",
]


def generalized_up_probability(children: int, levels: int, level: int) -> float:
    """``P^_l`` for block radix ``c``: ``(c^n - c^l) / (c^n - 1)``."""
    if children < 2 or levels < 1:
        raise ConfigurationError("children must be >= 2 and levels >= 1")
    if not (0 <= level <= levels):
        raise ConfigurationError(f"level must be in [0, {levels}], got {level!r}")
    return (children**levels - children**level) / (children**levels - 1)


def generalized_channel_rates(
    children: int, parents: int, levels: int, injection_rate: float
) -> np.ndarray:
    """Per-link rates ``lambda_{l,l+1} = lambda_0 P^_l (c/p)^l``, l = 0..n-1."""
    if parents < 1:
        raise ConfigurationError("parents must be >= 1")
    if injection_rate < 0:
        raise ConfigurationError("injection_rate must be >= 0")
    ls = np.arange(levels)
    c, n = float(children), levels
    probs = (c**n - c**ls) / (c**n - 1.0)
    return injection_rate * probs * (c / parents) ** ls


def generalized_channel_rates_batch(
    children: int, parents: int, levels: int, injection_rates: np.ndarray
) -> np.ndarray:
    """Per-link rates for a vector of injection rates: shape ``(levels, K)``.

    Column ``k`` is elementwise identical to
    ``generalized_channel_rates(c, p, n, injection_rates[k])``.
    """
    if parents < 1:
        raise ConfigurationError("parents must be >= 1")
    inj = np.asarray(injection_rates, dtype=float)
    if inj.ndim != 1:
        raise ConfigurationError("injection_rates must be a 1-D array")
    if np.any(inj < 0):
        raise ConfigurationError("injection_rates must be >= 0")
    ls = np.arange(levels)
    c, n = float(children), levels
    probs = (c**n - c**ls) / (c**n - 1.0)
    scale = (c / parents) ** ls
    return (inj[np.newaxis, :] * probs[:, np.newaxis]) * scale[:, np.newaxis]


def generalized_average_distance(children: int, levels: int) -> float:
    """``D_bar`` for radix-``c`` blocks (exact rational arithmetic)."""
    if children < 2 or levels < 1:
        raise ConfigurationError("children must be >= 2 and levels >= 1")
    denom = children**levels - 1
    total = Fraction(0)
    for l in range(1, levels + 1):
        total += Fraction(2 * l * (children**l - children ** (l - 1)), denom)
    return float(total)


@dataclass(frozen=True)
class GeneralizedSolution:
    """Per-channel-class solution (same layout as :class:`BftSolution`)."""

    workload: Workload
    levels: int
    rate: np.ndarray
    down_service: np.ndarray
    down_wait: np.ndarray
    up_service: np.ndarray
    up_wait: np.ndarray
    average_distance: float

    @property
    def saturated(self) -> bool:
        """True when any channel diverged (no steady state)."""
        return not (
            np.all(np.isfinite(self.down_service))
            and np.all(np.isfinite(self.down_wait))
            and np.all(np.isfinite(self.up_service))
            and np.all(np.isfinite(self.up_wait))
        )

    @property
    def latency(self) -> float:
        """Average latency via Eq. 25 (``inf`` past saturation)."""
        if self.saturated:
            return math.inf
        return (
            float(self.up_wait[0])
            + float(self.up_service[0])
            + self.average_distance
            - 1.0
        )


class GeneralizedFatTreeModel:
    """Latency/throughput model of a ``(children, parents)`` fat-tree.

    Parameters
    ----------
    children, parents, levels:
        Family parameters; the machine has ``children**levels`` PEs and the
        up channels are M/G/``parents`` queues.
    variant:
        The same ablation switches as the 4-2 model; ``multiserver_up=False``
        degrades every up pair/bundle to independent M/G/1 queues.
    """

    def __init__(
        self,
        children: int,
        parents: int,
        levels: int,
        variant: ModelVariant | None = None,
    ) -> None:
        if not isinstance(children, int) or children < 2:
            raise ConfigurationError(f"children must be an integer >= 2, got {children!r}")
        if not isinstance(parents, int) or parents < 1:
            raise ConfigurationError(f"parents must be an integer >= 1, got {parents!r}")
        if not isinstance(levels, int) or levels < 1:
            raise ConfigurationError(f"levels must be an integer >= 1, got {levels!r}")
        self.children = children
        self.parents = parents
        self.levels = levels
        self.num_processors = children**levels
        self.variant = variant or ModelVariant.paper()
        self.average_distance = generalized_average_distance(children, levels)

    # --- helpers -------------------------------------------------------------------

    def _scv_batch(self, service: np.ndarray, flits: int) -> np.ndarray:
        return scv_for_mode_batch(self.variant.scv_mode, service, flits)

    def _climb(self, level: int) -> float:
        c, n = self.children, self.levels
        if self.variant.conditional_up_probability:
            if level < 1:
                raise ConfigurationError("conditional climb needs level >= 1")
            return (c**n - c**level) / (c**n - c ** (level - 1))
        return generalized_up_probability(c, n, level)

    # --- solver ----------------------------------------------------------------------

    def solve_batch(self, injection_rates, message_flits: int) -> BatchSolution:
        """Two-sweep resolution over a whole vector of injection rates.

        The Eq. 16-24-shaped sweeps broadcast over a load axis exactly like
        :meth:`ButterflyFatTreeModel.solve_batch
        <repro.core.bft_model.ButterflyFatTreeModel.solve_batch>`; up
        channels use M/G/p waits.  Column ``k`` is bit-identical to the
        scalar solve at ``injection_rates[k]``.
        """
        if not isinstance(message_flits, int) or message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        inj = as_injection_rates(injection_rates)
        c, p, n = self.children, self.parents, self.levels
        flits = message_flits
        blocking = self.variant.blocking_correction
        rate = generalized_channel_rates_batch(c, p, n, inj)  # (levels, K)

        down_service = np.empty_like(rate)
        down_wait = np.empty_like(rate)
        up_service = np.empty_like(rate)
        up_wait = np.empty_like(rate)

        down_service[0] = float(flits)
        down_wait[0] = mg1_waiting_time_batch(
            rate[0], down_service[0], self._scv_batch(down_service[0], flits)
        )
        for l in range(1, n):
            p_block = blocking_probability_batch(
                1, rate[l], rate[l - 1], 1.0 / c, enabled=blocking
            )
            down_service[l] = down_service[l - 1] + charged_wait(
                p_block, down_wait[l - 1]
            )
            down_wait[l] = mg1_waiting_time_batch(
                rate[l], down_service[l], self._scv_batch(down_service[l], flits)
            )

        for u in range(n - 1, -1, -1):
            p_up = self._climb(u + 1)
            p_down = 1.0 - p_up
            service = np.zeros(inj.shape)
            if p_up > 0.0:
                if self.variant.multiserver_up:
                    servers, group_rate, queue_prob = p, p * rate[u + 1], p_up
                else:
                    servers, group_rate, queue_prob = 1, rate[u + 1], p_up / p
                p_block_up = blocking_probability_batch(
                    servers, rate[u], group_rate, queue_prob, enabled=blocking
                )
                service = service + p_up * (
                    up_service[u + 1] + charged_wait(p_block_up, up_wait[u + 1])
                )
            p_block_down = blocking_probability_batch(
                1, rate[u], rate[u], p_down / (c - 1), enabled=blocking
            )
            service = service + p_down * (
                down_service[u] + charged_wait(p_block_down, down_wait[u])
            )
            up_service[u] = service
            scv = self._scv_batch(up_service[u], flits)
            if u == 0:
                up_wait[0] = mg1_waiting_time_batch(rate[0], up_service[0], scv)
            elif self.variant.multiserver_up:
                up_wait[u] = mgm_waiting_time_batch(p * rate[u], up_service[u], p, scv)
            else:
                up_wait[u] = mg1_waiting_time_batch(rate[u], up_service[u], scv)

        return assemble_level_batch(
            message_flits=flits,
            injection_rates=inj,
            average_distance=self.average_distance,
            rate=rate,
            down_service=down_service,
            down_wait=down_wait,
            up_service=up_service,
            up_wait=up_wait,
        )

    def solve(self, workload: Workload) -> GeneralizedSolution:
        """Two-sweep resolution of all channel classes (Eqs. 16-24 shape).

        Thin wrapper over a one-point :meth:`solve_batch`.
        """
        if not isinstance(workload, Workload):
            raise ConfigurationError(f"workload must be a Workload, got {workload!r}")
        batch = self.solve_batch(
            np.array([workload.injection_rate]), workload.message_flits
        )
        return GeneralizedSolution(
            workload=workload,
            levels=self.levels,
            average_distance=self.average_distance,
            **level_detail_columns(batch),
        )

    # --- public API ---------------------------------------------------------------------

    def latency(self, workload: Workload) -> float:
        """Average message latency in cycles (``inf`` past saturation)."""
        return self.solve(workload).latency

    def latency_batch(self, loads, message_flits: int) -> np.ndarray:
        """Average latency for a vector of injection rates in one NumPy pass.

        ``loads`` are injection rates ``lambda_0`` (messages/cycle/PE);
        entry ``k`` equals ``latency(Workload(message_flits, loads[k]))``.
        """
        return self.solve_batch(loads, message_flits).latencies

    def stability_batch(self, loads, message_flits: int) -> np.ndarray:
        """Vectorized Eq. 26 stability test (one bool per injection rate)."""
        return self.solve_batch(loads, message_flits).stable_mask

    def latency_at_flit_load(self, flit_load: float, message_flits: int) -> float:
        """Latency with load in flits/cycle/PE."""
        return self.latency(Workload.from_flit_load(flit_load, message_flits))

    def zero_load_latency(self, message_flits: int) -> float:
        """Contention-free limit ``s/f + D_bar - 1``."""
        return float(message_flits) + self.average_distance - 1.0

    def is_stable(self, workload: Workload) -> bool:
        """Eq. 26 stability test on the injection channel."""
        sol = self.solve(workload)
        if sol.saturated:
            return False
        return workload.injection_rate * float(sol.up_service[0]) < 1.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"GeneralizedFatTreeModel(c={self.children}, p={self.parents}, "
            f"levels={self.levels}, N={self.num_processors}, "
            f"variant={self.variant.label!r})"
        )
