"""Model-variant switches for ablation studies.

The paper's model differs from prior wormhole analyses in two ways (its
stated novelties): multi-server queues for redundant links, and the
blocking-probability correction ``P_{i|j}``.  It additionally adopts the
Draper–Ghosh SCV approximation and uses the *unconditional* up-probability
``P^_l`` (Eq. 12) as the branching probability for messages already
travelling upward.  :class:`ModelVariant` lets each of these choices be
toggled independently, so the ablation benchmarks can quantify how much
each ingredient contributes to the model's accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..queueing.distributions import ScvMode

__all__ = ["ModelVariant"]


@dataclass(frozen=True)
class ModelVariant:
    """A configuration of the analytical model's approximations.

    Attributes
    ----------
    label:
        Human-readable name used in reports.
    multiserver_up:
        Treat the two up-links of a switch as one two-server channel
        (Eqs. 7-8, 21, 23).  When False, each up-link is modelled as an
        independent M/G/1 queue fed half the traffic — the prior-art
        treatment the paper improves on.
    blocking_correction:
        Apply the wormhole blocking probability ``P_{i|j}`` of Eqs. 9-10.
        When False, the raw queueing wait is charged at every hop
        (``P_{i|j} = 1``), as in store-and-forward-derived models.
    scv_mode:
        Service-time variability approximation (Eq. 5 by default).
    conditional_up_probability:
        Replace the paper's unconditional ``P^_l`` branching probability
        with the exact conditional ``(4^n - 4^l) / (4^n - 4^{l-1})`` for a
        message that has already climbed to level ``l``.  Off in the paper.
    """

    label: str = "paper"
    multiserver_up: bool = True
    blocking_correction: bool = True
    scv_mode: ScvMode = ScvMode.DRAPER_GHOSH
    conditional_up_probability: bool = False

    # --- presets -------------------------------------------------------------

    @classmethod
    def paper(cls) -> "ModelVariant":
        """The model exactly as published (with the errata's factor of 2)."""
        return cls()

    @classmethod
    def no_multiserver(cls) -> "ModelVariant":
        """Ablation: independent M/G/1 up-links instead of M/G/2 pairs."""
        return cls(label="no-multiserver", multiserver_up=False)

    @classmethod
    def no_blocking_correction(cls) -> "ModelVariant":
        """Ablation: drop the wormhole blocking probability (P = 1)."""
        return cls(label="no-blocking-correction", blocking_correction=False)

    @classmethod
    def naive(cls) -> "ModelVariant":
        """Both novelties disabled — a prior-art-style reference model."""
        return cls(label="naive", multiserver_up=False, blocking_correction=False)

    @classmethod
    def deterministic_scv(cls) -> "ModelVariant":
        """Ablation: deterministic service times (C_b^2 = 0, M/D/m)."""
        return cls(label="scv=0", scv_mode=ScvMode.DETERMINISTIC)

    @classmethod
    def exponential_scv(cls) -> "ModelVariant":
        """Ablation: exponential service times (C_b^2 = 1, M/M/m)."""
        return cls(label="scv=1", scv_mode=ScvMode.EXPONENTIAL)

    @classmethod
    def conditional_up(cls) -> "ModelVariant":
        """Extension: exact conditional climb probability."""
        return cls(label="conditional-up", conditional_up_probability=True)

    def with_label(self, label: str) -> "ModelVariant":
        """Return a relabelled copy (for report formatting)."""
        return replace(self, label=label)
