"""Wormhole blocking-probability correction (Eqs. 9-10).

Plain M/G/m queueing assumes every arrival may have to wait behind any
message in service.  In wormhole routing this over-counts: once a worm
occupies an incoming link, no further arrival can appear on that link until
the worm completes, so a worm arriving on link ``i`` only ever waits for
worms from *other* incoming links.  The paper corrects the queueing wait by
the factor

    ``P_{i|j} = 1 - m * (lambda_i / lambda_j) * R_{i|j}``          (Eq. 10)

— one minus the (approximate) probability that a message currently holding
one of outgoing channel ``j``'s ``m`` servers came from link ``i`` itself —
and charges ``w_{i|j} = P_{i|j} * W_j`` (Eq. 9).  For ``m = 1`` the
expression is exact; for larger ``m`` it ignores the small probability of
multiple same-input messages in service.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["blocking_probability", "blocking_probability_batch"]


def blocking_probability(
    servers: int,
    incoming_rate: float,
    outgoing_total_rate: float,
    routing_probability: float,
    *,
    enabled: bool = True,
) -> float:
    """Evaluate ``P_{i|j}`` (Eq. 10), clamped to ``[0, 1]``.

    Parameters
    ----------
    servers:
        ``m`` — number of servers of the outgoing channel (1 for ordinary
        links, 2 for the fat-tree's up-link pairs).
    incoming_rate:
        ``lambda_i`` — message rate on the incoming link.
    outgoing_total_rate:
        ``lambda_j`` — *total* message rate on the outgoing channel (summed
        over its servers).
    routing_probability:
        ``R_{i|j}`` — probability that a message from ``i`` is routed to
        channel ``j``.
    enabled:
        When False (ablation), returns 1.0 — the uncorrected wait.

    Notes
    -----
    The clamp matters only in extreme asymmetric configurations that the
    paper does not reach (in the fat-tree all arguments keep the expression
    inside ``[0, 1]``); the clamp keeps the generic solver safe on arbitrary
    user-supplied channel graphs.
    """
    if not enabled:
        return 1.0
    if not isinstance(servers, int) or servers < 1:
        raise ConfigurationError(f"servers must be a positive integer, got {servers!r}")
    if incoming_rate < 0 or outgoing_total_rate < 0:
        raise ConfigurationError("rates must be non-negative")
    if not (0.0 <= routing_probability <= 1.0):
        raise ConfigurationError(
            f"routing_probability must be in [0, 1], got {routing_probability!r}"
        )
    if outgoing_total_rate == 0.0:
        # No traffic on the outgoing channel: the wait is zero anyway, and
        # the correction factor is irrelevant; return the m=0 limit of 1.
        return 1.0
    p = 1.0 - servers * (incoming_rate / outgoing_total_rate) * routing_probability
    return min(1.0, max(0.0, p))


def blocking_probability_batch(
    servers: int,
    incoming_rate: np.ndarray,
    outgoing_total_rate: np.ndarray,
    routing_probability: float,
    *,
    enabled: bool = True,
) -> np.ndarray:
    """Vectorized ``P_{i|j}`` (Eq. 10) over arrays of channel rates.

    Broadcasts the two rate arrays (a load axis in the batch solvers);
    elementwise identical to :func:`blocking_probability`, including the
    zero-traffic convention ``P = 1`` and the ``[0, 1]`` clamp.
    """
    if not enabled:
        inc = np.asarray(incoming_rate, dtype=float)
        out = np.asarray(outgoing_total_rate, dtype=float)
        return np.ones(np.broadcast(inc, out).shape)
    if not isinstance(servers, int) or servers < 1:
        raise ConfigurationError(f"servers must be a positive integer, got {servers!r}")
    if not (0.0 <= routing_probability <= 1.0):
        raise ConfigurationError(
            f"routing_probability must be in [0, 1], got {routing_probability!r}"
        )
    inc = np.asarray(incoming_rate, dtype=float)
    out = np.asarray(outgoing_total_rate, dtype=float)
    if np.any(inc < 0) or np.any(out < 0):
        raise ConfigurationError("rates must be non-negative")
    with np.errstate(divide="ignore", invalid="ignore"):
        p = 1.0 - servers * (inc / out) * routing_probability
    p = np.minimum(1.0, np.maximum(0.0, p))
    return np.where(out == 0.0, 1.0, p)
