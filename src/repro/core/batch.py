"""Batch evaluation results: whole load grids solved in one NumPy pass.

The scalar solvers resolve one operating point per call, which makes every
latency-vs-load curve (Figure 3) and every Eq. 26 saturation search O(points
x levels) Python.  The batch engine broadcasts the same Eq. 3-11 recursion
over a *load axis* instead: all per-stage service times, M/G/m waits and
blocking corrections become arrays with one entry per injection rate, and
``inf`` propagates per point past saturation without poisoning the finite
entries.

:class:`BatchSolution` is the result type shared by all three model classes
(:meth:`ButterflyFatTreeModel.solve_batch <repro.core.bft_model.ButterflyFatTreeModel.solve_batch>`,
:meth:`GeneralizedFatTreeModel.solve_batch <repro.core.generalized_model.GeneralizedFatTreeModel.solve_batch>`,
and the :class:`~repro.core.generic_model.ChannelGraphModel` batch API).
Each scalar ``latency(workload)`` is a thin wrapper over a one-point batch,
so batch and scalar sweeps agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..obs.metrics import METRICS

__all__ = [
    "BatchSolution",
    "as_injection_rates",
    "assemble_level_batch",
    "charged_wait",
    "level_detail_columns",
]

#: Per-channel-class arrays carried in :attr:`BatchSolution.details` by the
#: two-sweep fat-tree solvers (each of shape ``(levels, K)``).
LEVEL_DETAIL_KEYS = ("rate", "down_service", "down_wait", "up_service", "up_wait")


def charged_wait(p_block: np.ndarray, wait: np.ndarray) -> np.ndarray:
    """Vectorized blocking charge ``P_{i|j} * W_j`` (Eq. 9).

    A zero blocking probability cancels the wait even when the wait has
    diverged (guards against ``0 * inf -> NaN`` per point, the batch
    analogue of the scalar solvers' ``charge`` helper).
    """
    with np.errstate(invalid="ignore"):
        product = p_block * wait
    return np.where(np.asarray(p_block) == 0.0, 0.0, product)


def as_injection_rates(loads) -> np.ndarray:
    """Validate and normalize a load grid into a 1-D float array of rates.

    Accepts any sequence or array of non-negative, finite injection rates
    (messages/cycle/PE).  Scalars are promoted to a one-point grid.
    """
    rates = np.atleast_1d(np.asarray(loads, dtype=float))
    if rates.ndim != 1:
        raise ConfigurationError("loads must be a scalar or 1-D sequence")
    if rates.size == 0:
        raise ConfigurationError("loads must be non-empty")
    if not np.all(np.isfinite(rates)) or np.any(rates < 0):
        raise ConfigurationError("loads must be finite and non-negative")
    return rates


@dataclass(frozen=True)
class BatchSolution:
    """Model solution over a whole vector of injection rates.

    All per-point arrays have shape ``(K,)`` where ``K`` is the number of
    operating points; ``details`` optionally carries per-channel-class
    arrays of shape ``(levels, K)`` for callers that need the full solution
    (the scalar ``solve`` wrappers do).

    Attributes
    ----------
    message_flits:
        Worm length ``s/f`` shared by every point of the batch.
    injection_rates:
        The load grid ``lambda_0`` in messages/cycle/PE.
    injection_service:
        ``x_{0,1}`` at each point (drives the Eq. 26 stability test).
    injection_wait:
        ``W_{0,1}`` at each point.
    latencies:
        Average latency (Eq. 25) at each point, ``inf`` past saturation.
    average_distance:
        ``D_bar`` of the network (shared by every point).
    details:
        Optional per-level arrays (``rate``, ``down_service``, ...), each of
        shape ``(levels, K)``.
    """

    message_flits: int
    injection_rates: np.ndarray
    injection_service: np.ndarray
    injection_wait: np.ndarray
    latencies: np.ndarray
    average_distance: float
    details: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        shape = self.injection_rates.shape
        for name in ("injection_service", "injection_wait", "latencies"):
            if getattr(self, name).shape != shape:
                raise ConfigurationError(
                    f"{name} must have shape {shape}, got {getattr(self, name).shape}"
                )

    # --- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.injection_rates.size)

    @property
    def n_points(self) -> int:
        """Number of operating points in the batch."""
        return len(self)

    @property
    def flit_loads(self) -> np.ndarray:
        """The load grid in Figure-3 units (flits/cycle/PE)."""
        return self.injection_rates * self.message_flits

    # --- masks --------------------------------------------------------------

    @property
    def finite_mask(self) -> np.ndarray:
        """True where the point admits a steady state (finite latency)."""
        return np.isfinite(self.latencies)

    @property
    def saturated_mask(self) -> np.ndarray:
        """True where any channel diverged (latency is ``inf``)."""
        return ~self.finite_mask

    @property
    def stable_mask(self) -> np.ndarray:
        """Eq. 26 stability per point: finite and ``lambda_0 x_{0,1} < 1``.

        This is the vectorized analogue of the models' scalar
        ``is_stable(workload)`` and drives the batched saturation bracket.
        """
        with np.errstate(invalid="ignore"):
            keeps_up = self.injection_rates * self.injection_service < 1.0
        return self.finite_mask & keeps_up

    # --- conversions --------------------------------------------------------

    def as_curve(self, label: str = "model"):
        """Render the batch as a :class:`~repro.core.sweep.LatencyCurve`."""
        from .sweep import LatencyCurve

        return LatencyCurve(
            label=label,
            message_flits=self.message_flits,
            flit_loads=self.flit_loads,
            latencies=self.latencies,
        )

    def as_rows(self) -> list[tuple[float, float]]:
        """(flit_load, latency) pairs for table rendering."""
        return [
            (float(x), float(y)) for x, y in zip(self.flit_loads, self.latencies)
        ]


def assemble_level_batch(
    *,
    message_flits: int,
    injection_rates: np.ndarray,
    average_distance: float,
    rate: np.ndarray,
    down_service: np.ndarray,
    down_wait: np.ndarray,
    up_service: np.ndarray,
    up_wait: np.ndarray,
) -> BatchSolution:
    """Assemble a :class:`BatchSolution` from two-sweep fat-tree arrays.

    Shared tail of the BFT and generalized ``solve_batch`` implementations:
    a point counts as saturated when *any* channel class diverged, and
    finite points get the Eq. 25 latency ``W_{0,1} + x_{0,1} + D_bar - 1``.
    """
    finite = (
        np.all(np.isfinite(down_service), axis=0)
        & np.all(np.isfinite(down_wait), axis=0)
        & np.all(np.isfinite(up_service), axis=0)
        & np.all(np.isfinite(up_wait), axis=0)
    )
    if METRICS.enabled:
        # Same counter names as the stage-graph engine, so the model and
        # batch backends report identical solve telemetry per operating
        # point whichever family answered.
        METRICS.add("solve.batch")
        METRICS.add("solve.points", float(finite.size))
        METRICS.add(
            "solve.saturated_points", float(finite.size - np.count_nonzero(finite))
        )
    latencies = np.where(
        finite,
        up_wait[0] + up_service[0] + average_distance - 1.0,
        np.inf,
    )
    return BatchSolution(
        message_flits=message_flits,
        injection_rates=injection_rates,
        injection_service=up_service[0],
        injection_wait=up_wait[0],
        latencies=latencies,
        average_distance=average_distance,
        details={
            "rate": rate,
            "down_service": down_service,
            "down_wait": down_wait,
            "up_service": up_service,
            "up_wait": up_wait,
        },
    )


def level_detail_columns(batch: BatchSolution, point: int = 0) -> dict[str, np.ndarray]:
    """Extract one operating point's per-level arrays as independent copies.

    Used by the scalar ``solve`` wrappers to build their single-point
    solution records from a one-point batch.
    """
    return {
        name: batch.details[name][:, point].copy() for name in LEVEL_DETAIL_KEYS
    }
