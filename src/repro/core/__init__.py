"""The paper's analytical wormhole-routing model (S4 in DESIGN.md).

* :mod:`repro.core.rates` — channel arrival rates (Eqs. 12-15);
* :mod:`repro.core.blocking` — the wormhole blocking correction (Eqs. 9-10);
* :mod:`repro.core.bft_model` — the closed-form butterfly fat-tree solver
  (Eqs. 16-25);
* :mod:`repro.core.generic_model` — the general Section-2 recursion on
  arbitrary channel graphs (Eqs. 3, 11), with ready-made fat-tree and
  hypercube instantiations;
* :mod:`repro.core.throughput` — the Eq. 26 saturation solver;
* :mod:`repro.core.sweep` — latency-vs-load curves;
* :mod:`repro.core.variants` — ablation switches.
"""

from .batch import BatchSolution, as_injection_rates
from .bft_model import BftSolution, ButterflyFatTreeModel
from .blocking import blocking_probability, blocking_probability_batch
from .generalized_model import (
    GeneralizedFatTreeModel,
    generalized_average_distance,
    generalized_channel_rates,
    generalized_channel_rates_batch,
    generalized_up_probability,
)
from .generic_model import (
    ChannelGraphModel,
    EntryPoint,
    Stage,
    StageBatchSolution,
    StageSolution,
    Transition,
    bft_stage_graph,
    generalized_fattree_stage_graph,
    hypercube_stage_graph,
)
from .rates import (
    bft_channel_rates,
    bft_channel_rates_batch,
    bft_channel_rates_for_matrix,
    bft_matrix_up_crossings,
    bft_total_up_crossings,
    conditional_up_probability,
    down_probability,
    up_probability,
)
from .sweep import (
    LatencyCurve,
    latency_sweep,
    load_grid_to_saturation,
    resolve_traffic_model,
)
from .throughput import (
    SaturationResult,
    saturation_flit_load,
    saturation_injection_rate,
)
from .variants import ModelVariant

__all__ = [
    "BatchSolution",
    "as_injection_rates",
    "BftSolution",
    "ButterflyFatTreeModel",
    "blocking_probability",
    "blocking_probability_batch",
    "bft_channel_rates_batch",
    "generalized_channel_rates_batch",
    "StageBatchSolution",
    "GeneralizedFatTreeModel",
    "generalized_average_distance",
    "generalized_channel_rates",
    "generalized_up_probability",
    "ChannelGraphModel",
    "EntryPoint",
    "Stage",
    "StageSolution",
    "Transition",
    "bft_stage_graph",
    "generalized_fattree_stage_graph",
    "hypercube_stage_graph",
    "bft_channel_rates",
    "bft_channel_rates_for_matrix",
    "bft_matrix_up_crossings",
    "bft_total_up_crossings",
    "conditional_up_probability",
    "down_probability",
    "up_probability",
    "LatencyCurve",
    "latency_sweep",
    "load_grid_to_saturation",
    "resolve_traffic_model",
    "SaturationResult",
    "saturation_flit_load",
    "saturation_injection_rate",
    "ModelVariant",
]
