"""Saturation-throughput solver (Section 2.3 / Eq. 26).

The network saturates at the injection rate where the source service time
equals the inter-arrival time: ``x_{0,1} = 1 / lambda_0`` (Eq. 26).  Since
``x_{0,1}`` grows monotonically with load while ``1/lambda_0`` falls, the
crossing is unique; equivalently, saturation is the supremum of injection
rates at which every channel in the model still admits a steady state
(interior channels can saturate first, driving ``x_{0,1}`` to infinity,
which the same criterion captures).

Following the paper's procedure ("we let source arrival rate increase ...
until the above equation is satisfied"), :func:`saturation_injection_rate`
brackets the boundary by doubling and then bisects it to a relative
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..config import Workload
from ..errors import ConfigurationError, SaturatedError

__all__ = ["SaturationResult", "saturation_injection_rate", "saturation_flit_load"]


class _StabilityModel(Protocol):
    """Anything exposing the Eq. 26 stability test (the BFT model does)."""

    def is_stable(self, workload: Workload) -> bool: ...


@dataclass(frozen=True)
class SaturationResult:
    """Saturation point of a model for one message length.

    ``injection_rate`` is the critical ``lambda_0`` (messages/cycle/PE);
    ``flit_load`` the same point in Figure-3 units; the bracket records the
    final bisection interval.
    """

    message_flits: int
    injection_rate: float
    lower_bound: float
    upper_bound: float

    @property
    def flit_load(self) -> float:
        return self.injection_rate * self.message_flits

    @property
    def workload(self) -> Workload:
        return Workload(self.message_flits, self.injection_rate)


def saturation_injection_rate(
    model: _StabilityModel,
    message_flits: int,
    *,
    initial_rate: float | None = None,
    rel_tol: float = 1e-6,
    max_doublings: int = 60,
    stable: Callable[[Workload], bool] | None = None,
) -> SaturationResult:
    """Find the saturation injection rate of ``model`` by bracket + bisection.

    Parameters
    ----------
    model:
        Object with an ``is_stable(workload)`` method (ignored when a
        custom ``stable`` predicate is supplied).
    message_flits:
        Worm length for the sweep.
    initial_rate:
        Starting guess; defaults to one message per ``100 * F`` cycles,
        comfortably below saturation for every network in the paper.
    rel_tol:
        Relative width of the final bisection bracket.
    max_doublings:
        Budget for the upward bracket search.
    stable:
        Optional replacement stability predicate (used to drive the same
        search with a simulator in the empirical-saturation harness).
    """
    if not isinstance(message_flits, int) or message_flits <= 0:
        raise ConfigurationError("message_flits must be a positive integer")
    if rel_tol <= 0:
        raise ConfigurationError("rel_tol must be positive")
    predicate = stable if stable is not None else model.is_stable
    lo = initial_rate if initial_rate is not None else 1.0 / (100.0 * message_flits)
    if lo <= 0:
        raise ConfigurationError("initial_rate must be positive")

    if not predicate(Workload(message_flits, lo)):
        # Even the starting guess saturates: shrink downwards first.
        hi = lo
        for _ in range(max_doublings):
            lo /= 2.0
            if predicate(Workload(message_flits, lo)):
                break
        else:
            raise SaturatedError(
                "model is unstable at every probed rate; no saturation bracket found"
            )
    else:
        hi = lo
        for _ in range(max_doublings):
            hi *= 2.0
            if not predicate(Workload(message_flits, hi)):
                break
            lo = hi
        else:
            raise SaturatedError(
                "model remained stable at every probed rate; no saturation bracket found"
            )

    # Bisection: invariant lo stable, hi unstable.
    while (hi - lo) > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if predicate(Workload(message_flits, mid)):
            lo = mid
        else:
            hi = mid
    return SaturationResult(
        message_flits=message_flits,
        injection_rate=lo,
        lower_bound=lo,
        upper_bound=hi,
    )


def saturation_flit_load(model: _StabilityModel, message_flits: int, **kwargs) -> float:
    """Convenience wrapper returning the saturation point in flits/cycle/PE."""
    return saturation_injection_rate(model, message_flits, **kwargs).flit_load
