"""Saturation-throughput solver (Section 2.3 / Eq. 26).

The network saturates at the injection rate where the source service time
equals the inter-arrival time: ``x_{0,1} = 1 / lambda_0`` (Eq. 26).  Since
``x_{0,1}`` grows monotonically with load while ``1/lambda_0`` falls, the
crossing is unique; equivalently, saturation is the supremum of injection
rates at which every channel in the model still admits a steady state
(interior channels can saturate first, driving ``x_{0,1}`` to infinity,
which the same criterion captures).

Two search strategies share the same bracketing invariant:

* **Vectorized** (default when the model exposes ``stability_batch``): the
  whole doubling ladder is evaluated in *one* batched model solve, and the
  bracket is then narrowed by solving a uniform grid of interior points per
  pass — a multiway bisection that reaches the same boundary with a handful
  of batched solves instead of ~25 scalar ones.
* **Scalar** (simulators, custom ``stable`` predicates, or
  ``vectorized=False``): the paper's procedure — "we let source arrival
  rate increase ... until the above equation is satisfied" — bracketing by
  doubling and bisecting to a relative tolerance, one solve per probe.

Both return the stable lower edge of a bracket whose relative width is at
most ``rel_tol``, so their results agree to ``rel_tol``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError, SaturatedError

__all__ = [
    "SaturationResult",
    "resolve_traffic_model",
    "saturation_injection_rate",
    "saturation_flit_load",
]


def resolve_traffic_model(model, spec, message_flits: int):
    """Build the pattern-aware solver of ``model`` for ``spec``.

    ``model`` must expose ``traffic_model(spec, message_flits)`` (the
    butterfly fat-tree model does); the result is a batch-capable channel
    graph whose sweeps and saturation searches describe the non-uniform
    workload.  Shared by :func:`saturation_injection_rate`,
    :func:`~repro.core.sweep.latency_sweep` and
    :func:`~repro.core.sweep.load_grid_to_saturation`.
    """
    builder = getattr(model, "traffic_model", None)
    if builder is None:
        raise ConfigurationError(
            "spec= requires a model exposing traffic_model(spec, message_flits) "
            f"(got {type(model).__name__}); build the pattern stage graph "
            "explicitly for other models"
        )
    return builder(spec, message_flits)


class _StabilityModel(Protocol):
    """Anything exposing the Eq. 26 stability test (the BFT model does)."""

    def is_stable(self, workload: Workload) -> bool: ...


@dataclass(frozen=True)
class SaturationResult:
    """Saturation point of a model for one message length.

    ``injection_rate`` is the critical ``lambda_0`` (messages/cycle/PE);
    ``flit_load`` the same point in Figure-3 units; the bracket records the
    final search interval.
    """

    message_flits: int
    injection_rate: float
    lower_bound: float
    upper_bound: float

    @property
    def flit_load(self) -> float:
        return self.injection_rate * self.message_flits

    @property
    def workload(self) -> Workload:
        return Workload(self.message_flits, self.injection_rate)


def saturation_injection_rate(
    model: _StabilityModel,
    message_flits: int,
    *,
    initial_rate: float | None = None,
    rel_tol: float = 1e-6,
    max_doublings: int = 60,
    stable: Callable[[Workload], bool] | None = None,
    vectorized: bool | None = None,
    spec=None,
) -> SaturationResult:
    """Find the saturation injection rate of ``model`` (bracket + narrow).

    Parameters
    ----------
    model:
        Object with an ``is_stable(workload)`` method; models that also
        expose ``stability_batch(loads, message_flits)`` get the vectorized
        search (ignored when a custom ``stable`` predicate is supplied).
    message_flits:
        Worm length for the sweep.
    initial_rate:
        Starting guess; defaults to one message per ``100 * F`` cycles,
        comfortably below saturation for every network in the paper.
    rel_tol:
        Relative width of the final bracket.
    max_doublings:
        Budget for the geometric bracket search (in either direction).
    stable:
        Optional replacement stability predicate (used to drive the same
        search with a simulator in the empirical-saturation harness);
        implies the scalar path.
    vectorized:
        Force (True) or forbid (False) the batched search; ``None`` (the
        default) auto-detects ``stability_batch`` on the model.  Forcing
        it on a model without ``stability_batch`` (or together with a
        ``stable`` predicate) raises :class:`ConfigurationError` rather
        than silently falling back.
    spec:
        Optional :class:`~repro.traffic.spec.TrafficSpec`: search the
        saturation point of the *pattern-aware* solver built by
        ``model.traffic_model(spec, message_flits)`` instead of the
        uniform model.  The pattern graphs expose ``stability_batch``, so
        the search stays vectorized.
    """
    if not isinstance(message_flits, int) or message_flits <= 0:
        raise ConfigurationError("message_flits must be a positive integer")
    if spec is not None:
        if stable is not None:
            raise ConfigurationError(
                "spec= cannot be combined with a custom stable predicate"
            )
        model = resolve_traffic_model(model, spec, message_flits)
    if rel_tol <= 0:
        raise ConfigurationError("rel_tol must be positive")
    lo = initial_rate if initial_rate is not None else 1.0 / (100.0 * message_flits)
    if lo <= 0:
        raise ConfigurationError("initial_rate must be positive")

    if vectorized:
        if stable is not None:
            raise ConfigurationError(
                "vectorized=True cannot be combined with a custom stable "
                "predicate (per-point predicates have no batch form)"
            )
        if not hasattr(model, "stability_batch"):
            raise ConfigurationError(
                "vectorized=True requires a model exposing stability_batch"
            )
    use_batch = (
        vectorized
        if vectorized is not None
        else (stable is None and hasattr(model, "stability_batch"))
    )
    if use_batch:
        return _saturation_vectorized(
            model, message_flits, lo, rel_tol=rel_tol, max_doublings=max_doublings
        )
    predicate = stable if stable is not None else model.is_stable
    return _saturation_scalar(
        predicate, message_flits, lo, rel_tol=rel_tol, max_doublings=max_doublings
    )


# --- scalar search (simulators / custom predicates) ---------------------------------


def _saturation_scalar(
    predicate: Callable[[Workload], bool],
    message_flits: int,
    lo: float,
    *,
    rel_tol: float,
    max_doublings: int,
) -> SaturationResult:
    """The seed algorithm: doubling bracket plus bisection, one solve per probe."""
    if not predicate(Workload(message_flits, lo)):
        # Even the starting guess saturates: shrink downwards first.
        hi = lo
        for _ in range(max_doublings):
            lo /= 2.0
            if predicate(Workload(message_flits, lo)):
                break
        else:
            raise SaturatedError(
                "model is unstable at every probed rate; no saturation bracket found"
            )
    else:
        hi = lo
        for _ in range(max_doublings):
            hi *= 2.0
            if not predicate(Workload(message_flits, hi)):
                break
            lo = hi
        else:
            raise SaturatedError(
                "model remained stable at every probed rate; no saturation bracket found"
            )

    # Bisection: invariant lo stable, hi unstable.
    while (hi - lo) > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if predicate(Workload(message_flits, mid)):
            lo = mid
        else:
            hi = mid
    return SaturationResult(
        message_flits=message_flits,
        injection_rate=lo,
        lower_bound=lo,
        upper_bound=hi,
    )


# --- vectorized search (batched models) ---------------------------------------------

#: Interior points per refinement solve: each batched pass narrows the
#: bracket by a factor of ``2**_REFINE_DEPTH`` (the multiway analogue of
#: that many bisection steps).
_REFINE_DEPTH = 6


def _saturation_vectorized(
    model,
    message_flits: int,
    start: float,
    *,
    rel_tol: float,
    max_doublings: int,
) -> SaturationResult:
    """Bracket on a geometric ladder, then narrow on uniform grids.

    Every probe ladder/grid is one ``stability_batch`` call, so the whole
    search costs a handful of batched model solves.
    """
    # One batched solve covers the starting guess and the entire upward
    # doubling ladder of the scalar search.
    ladder = start * np.power(2.0, np.arange(max_doublings + 1))
    stab = np.asarray(model.stability_batch(ladder, message_flits), dtype=bool)
    if stab[0]:
        unstable = np.nonzero(~stab)[0]
        if unstable.size == 0:
            raise SaturatedError(
                "model remained stable at every probed rate; no saturation bracket found"
            )
        j = int(unstable[0])
        lo, hi = float(ladder[j - 1]), float(ladder[j])
    else:
        # Even the starting guess saturates: shrink downwards instead.
        ladder = start * np.power(0.5, np.arange(1, max_doublings + 1))
        stab = np.asarray(model.stability_batch(ladder, message_flits), dtype=bool)
        stable_idx = np.nonzero(stab)[0]
        if stable_idx.size == 0:
            raise SaturatedError(
                "model is unstable at every probed rate; no saturation bracket found"
            )
        j = int(stable_idx[0])
        lo = float(ladder[j])
        hi = float(ladder[j - 1]) if j > 0 else start

    # Multiway bisection: each pass solves a uniform grid of interior
    # points in one batch and keeps the sub-interval straddling the
    # stable/unstable boundary (invariant: lo stable, hi unstable).
    while (hi - lo) > rel_tol * hi:
        needed = (hi - lo) / (rel_tol * hi)
        depth = min(_REFINE_DEPTH, max(1, math.ceil(math.log2(needed))))
        grid = np.linspace(lo, hi, 2**depth + 1)
        interior = grid[1:-1]
        if interior[0] <= lo or interior[-1] >= hi:
            break  # bracket is at floating-point resolution already
        stab = np.asarray(model.stability_batch(interior, message_flits), dtype=bool)
        unstable = np.nonzero(~stab)[0]
        if unstable.size == 0:
            lo = float(interior[-1])
        else:
            j = int(unstable[0])
            hi = float(interior[j])
            if j > 0:
                lo = float(interior[j - 1])
    return SaturationResult(
        message_flits=message_flits,
        injection_rate=lo,
        lower_bound=lo,
        upper_bound=hi,
    )


def saturation_flit_load(model: _StabilityModel, message_flits: int, **kwargs) -> float:
    """Convenience wrapper returning the saturation point in flits/cycle/PE."""
    return saturation_injection_rate(model, message_flits, **kwargs).flit_load
