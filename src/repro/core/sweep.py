"""Load sweeps: latency-versus-load curves in Figure-3 coordinates.

A :class:`LatencyCurve` is the model-side analogue of one series in the
paper's Figure 3: latency (cycles) sampled over offered load (flits per
cycle per processor) at a fixed message length.  Sweeps saturate gracefully:
points past saturation hold ``inf`` and are reported by ``finite_mask``.

:func:`latency_sweep` dispatches on the evaluator it is given: a bound
``latency`` method of a model exposing ``latency_batch`` (or the model
itself) is evaluated for the *whole grid in one NumPy pass*; any other
callable falls back to one call per point, optionally fanned out across
worker processes (the right mode for simulator-backed sweeps, whose cost
is per-point, not per-sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Sequence

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError
from ..util.parallel import parallel_map
from .throughput import resolve_traffic_model, saturation_injection_rate

__all__ = [
    "LatencyCurve",
    "latency_sweep",
    "load_grid_to_saturation",
    "resolve_traffic_model",
]


@dataclass(frozen=True)
class LatencyCurve:
    """One latency-vs-load series.

    Attributes
    ----------
    label:
        Series name for reports (e.g. ``"Model 64-flit"``).
    message_flits:
        Worm length of the series.
    flit_loads:
        Offered load grid, flits/cycle/PE (Figure 3's x-axis).
    latencies:
        Average latency at each grid point, ``inf`` past saturation.
    """

    label: str
    message_flits: int
    flit_loads: np.ndarray
    latencies: np.ndarray

    def __post_init__(self) -> None:
        if self.flit_loads.shape != self.latencies.shape:
            raise ConfigurationError("flit_loads and latencies must have equal shape")

    @property
    def finite_mask(self) -> np.ndarray:
        """True where the model/simulation produced a finite latency."""
        return np.isfinite(self.latencies)

    @property
    def last_stable_load(self) -> float:
        """Largest grid load with a finite latency (nan when none)."""
        finite = self.flit_loads[self.finite_mask]
        return float(finite.max()) if finite.size else float("nan")

    def as_rows(self) -> list[tuple[float, float]]:
        """(load, latency) pairs for table rendering."""
        return [
            (float(x), float(y)) for x, y in zip(self.flit_loads, self.latencies)
        ]


def _sweep_point(
    flit_load: float, latency_fn: Callable[[Workload], float], message_flits: int
) -> float:
    """One scalar sweep evaluation (module-level so it pickles for workers)."""
    return latency_fn(Workload.from_flit_load(flit_load, message_flits))


def _batch_evaluator(latency_fn):
    """The object whose ``latency_batch`` can evaluate this sweep, or None.

    Batch dispatch applies when the caller hands us either a model object
    directly or a bound ``latency`` method of a model exposing
    ``latency_batch`` — anything else (simulator wrappers, ad-hoc lambdas)
    keeps per-point semantics.
    """
    if hasattr(latency_fn, "latency_batch") and hasattr(latency_fn, "latency"):
        return latency_fn
    owner = getattr(latency_fn, "__self__", None)
    if (
        owner is not None
        and hasattr(owner, "latency_batch")
        and getattr(latency_fn, "__name__", "") == "latency"
    ):
        return owner
    return None


def latency_sweep(
    latency_fn: Callable[[Workload], float],
    message_flits: int,
    flit_loads: Sequence[float],
    *,
    label: str = "model",
    processes: int = 1,
    chunksize: int = 1,
    spec=None,
) -> LatencyCurve:
    """Evaluate a latency curve over a load grid.

    ``latency_fn`` is either a per-workload callable (a simulator wrapper,
    or any function of a :class:`Workload` returning cycles, ``inf``
    allowed) or a batch-capable model — a model object, or its bound
    ``latency`` method.  Batch-capable models are solved for the whole grid
    in one vectorized pass (bit-identical to the per-point loop);
    everything else is evaluated point by point, fanned out over
    ``processes`` workers in chunks of ``chunksize`` when requested.

    ``spec`` (a :class:`~repro.traffic.spec.TrafficSpec`) redirects a
    batch-capable model through its pattern-aware solver — the whole
    non-uniform sweep still runs as one batched evaluation.
    """
    loads = np.asarray(list(flit_loads), dtype=float)
    if loads.ndim != 1 or loads.size == 0:
        raise ConfigurationError("flit_loads must be a non-empty 1-D sequence")
    if np.any(loads < 0):
        raise ConfigurationError("flit_loads must be non-negative")
    if spec is not None:
        target = _batch_evaluator(latency_fn)
        if target is None:
            raise ConfigurationError(
                "spec= requires a batch-capable model, not a per-point callable"
            )
        latency_fn = resolve_traffic_model(target, spec, message_flits)
    model = _batch_evaluator(latency_fn)
    if model is not None:
        # One batched solve; flit_load -> injection rate exactly as
        # Workload.from_flit_load does, so results match the scalar loop.
        lat = np.asarray(
            model.latency_batch(loads / message_flits, message_flits), dtype=float
        )
    else:
        worker = partial(
            _sweep_point, latency_fn=latency_fn, message_flits=message_flits
        )
        lat = np.array(
            parallel_map(
                worker,
                [float(x) for x in loads],
                processes=processes,
                chunksize=chunksize,
            ),
            dtype=float,
        )
    return LatencyCurve(
        label=label, message_flits=message_flits, flit_loads=loads, latencies=lat
    )


def load_grid_to_saturation(
    model,
    message_flits: int,
    *,
    n_points: int = 10,
    fraction: float = 0.98,
    include_zero_limit: bool = True,
    spec=None,
) -> np.ndarray:
    """Build a load grid from near zero up to ``fraction`` of model saturation.

    This mirrors how Figure 3's x-range terminates just past the knee of the
    curves.  The lowest point is placed at 2% of saturation rather than 0
    (zero load is a degenerate operating point for rate-based simulators) —
    clamped below the second grid point so the grid stays strictly
    increasing on dense grids — unless ``include_zero_limit`` is False, in
    which case the grid starts at the first uniform step.  The returned
    grid always holds exactly ``n_points`` loads, whichever convention is
    chosen.  A ``spec`` anchors the grid to the *pattern-aware* saturation
    point instead of the uniform one.
    """
    if n_points < 2:
        raise ConfigurationError("n_points must be >= 2")
    if not (0.0 < fraction < 1.0):
        raise ConfigurationError("fraction must be in (0, 1)")
    if spec is not None:
        model = resolve_traffic_model(model, spec, message_flits)
    sat = saturation_injection_rate(model, message_flits).flit_load
    top = fraction * sat
    if include_zero_limit:
        grid = np.linspace(0.0, top, n_points)
        # On dense grids the first uniform step falls below 2% of
        # saturation; clamp the floor so the grid stays strictly
        # increasing (n_points >= ~51 used to yield grid[0] > grid[1]).
        grid[0] = min(0.02 * sat, grid[1] / 2.0)
    else:
        # Drop the degenerate zero point but keep the promised point count:
        # n_points uniform steps ending at the top of the range.
        grid = np.linspace(0.0, top, n_points + 1)[1:]
    return grid
