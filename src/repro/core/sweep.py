"""Load sweeps: latency-versus-load curves in Figure-3 coordinates.

A :class:`LatencyCurve` is the model-side analogue of one series in the
paper's Figure 3: latency (cycles) sampled over offered load (flits per
cycle per processor) at a fixed message length.  Sweeps saturate gracefully:
points past saturation hold ``inf`` and are reported by ``finite_mask``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError
from .throughput import saturation_injection_rate

__all__ = ["LatencyCurve", "latency_sweep", "load_grid_to_saturation"]


@dataclass(frozen=True)
class LatencyCurve:
    """One latency-vs-load series.

    Attributes
    ----------
    label:
        Series name for reports (e.g. ``"Model 64-flit"``).
    message_flits:
        Worm length of the series.
    flit_loads:
        Offered load grid, flits/cycle/PE (Figure 3's x-axis).
    latencies:
        Average latency at each grid point, ``inf`` past saturation.
    """

    label: str
    message_flits: int
    flit_loads: np.ndarray
    latencies: np.ndarray

    def __post_init__(self) -> None:
        if self.flit_loads.shape != self.latencies.shape:
            raise ConfigurationError("flit_loads and latencies must have equal shape")

    @property
    def finite_mask(self) -> np.ndarray:
        """True where the model/simulation produced a finite latency."""
        return np.isfinite(self.latencies)

    @property
    def last_stable_load(self) -> float:
        """Largest grid load with a finite latency (nan when none)."""
        finite = self.flit_loads[self.finite_mask]
        return float(finite.max()) if finite.size else float("nan")

    def as_rows(self) -> list[tuple[float, float]]:
        """(load, latency) pairs for table rendering."""
        return [
            (float(x), float(y)) for x, y in zip(self.flit_loads, self.latencies)
        ]


def latency_sweep(
    latency_fn: Callable[[Workload], float],
    message_flits: int,
    flit_loads: Sequence[float],
    *,
    label: str = "model",
) -> LatencyCurve:
    """Evaluate ``latency_fn`` over a load grid.

    ``latency_fn`` receives a :class:`Workload` and returns cycles (``inf``
    allowed); it may be a model's ``latency`` method or a simulator wrapper.
    """
    loads = np.asarray(list(flit_loads), dtype=float)
    if loads.ndim != 1 or loads.size == 0:
        raise ConfigurationError("flit_loads must be a non-empty 1-D sequence")
    if np.any(loads < 0):
        raise ConfigurationError("flit_loads must be non-negative")
    lat = np.array(
        [latency_fn(Workload.from_flit_load(x, message_flits)) for x in loads],
        dtype=float,
    )
    return LatencyCurve(
        label=label, message_flits=message_flits, flit_loads=loads, latencies=lat
    )


def load_grid_to_saturation(
    model,
    message_flits: int,
    *,
    n_points: int = 10,
    fraction: float = 0.98,
    include_zero_limit: bool = True,
) -> np.ndarray:
    """Build a load grid from near zero up to ``fraction`` of model saturation.

    This mirrors how Figure 3's x-range terminates just past the knee of the
    curves.  The lowest point is placed at 2% of saturation rather than 0
    (zero load is a degenerate operating point for rate-based simulators)
    unless ``include_zero_limit`` is False, in which case the grid starts at
    the first uniform step.
    """
    if n_points < 2:
        raise ConfigurationError("n_points must be >= 2")
    if not (0.0 < fraction < 1.0):
        raise ConfigurationError("fraction must be in (0, 1)")
    sat = saturation_injection_rate(model, message_flits).flit_load
    top = fraction * sat
    grid = np.linspace(0.0, top, n_points)
    if include_zero_limit:
        grid[0] = 0.02 * sat
    else:
        grid = grid[1:]
    return grid
