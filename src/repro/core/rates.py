"""Channel arrival rates for the butterfly fat-tree (Eqs. 12-15).

Under uniform random destinations and steady state (departure rate equals
arrival rate below saturation), all links at the same level running in the
same direction carry equal traffic, so rates are computed per *channel
class* ``<l, l+1>`` / ``<l+1, l>``:

* ``P^_l = (4^n - 4^l) / (4^n - 1)`` — probability a message generated at a
  leaf must rise above level ``l`` (Eq. 12);
* ``lambda_{l,l+1} = lambda_0 * P^_l * 2^l`` — per-link rate on up channels
  from level ``l`` (Eq. 14), since ``P^_l * 4^n * lambda_0`` messages per
  cycle cross the ``4^n / 2^l`` links of that level going up;
* down rates mirror up rates by symmetry (Eq. 15).

The exact *conditional* probability that a message already at level ``l``
(having climbed from ``l-1``) continues upward is
``(4^n - 4^l) / (4^n - 4^{l-1})``; the paper approximates it by the
unconditional ``P^_l``, and both are provided (the choice is a
:class:`~repro.core.variants.ModelVariant` switch).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "up_probability",
    "down_probability",
    "conditional_up_probability",
    "bft_channel_rates",
    "bft_channel_rates_batch",
    "bft_total_up_crossings",
    "bft_matrix_up_crossings",
    "bft_channel_rates_for_matrix",
]


def _check_levels(levels: int) -> None:
    if not isinstance(levels, int) or levels < 1:
        raise ConfigurationError(f"levels must be a positive integer, got {levels!r}")


def up_probability(levels: int, level: int) -> float:
    """``P^_l`` of Eq. 12: probability of rising above ``level``.

    Defined for ``0 <= level <= levels``; ``P^_0 == 1`` (every message
    enters the network) and ``P^_levels == 0`` (nothing rises above the
    root level).
    """
    _check_levels(levels)
    if not (0 <= level <= levels):
        raise ConfigurationError(f"level must be in [0, {levels}], got {level!r}")
    return (4**levels - 4**level) / (4**levels - 1)


def down_probability(levels: int, level: int) -> float:
    """``P#_l = 1 - P^_l`` of Eq. 13."""
    return 1.0 - up_probability(levels, level)


def conditional_up_probability(levels: int, level: int) -> float:
    """Exact P(rise above ``level`` | already climbed to ``level``).

    Conditioning on the message having left its level-``(level-1)`` subtree
    removes ``4^{level-1}`` candidate destinations from the denominator:
    ``(4^n - 4^l) / (4^n - 4^{l-1})``.  Requires ``level >= 1``.
    """
    _check_levels(levels)
    if not (1 <= level <= levels):
        raise ConfigurationError(f"level must be in [1, {levels}], got {level!r}")
    return (4**levels - 4**level) / (4**levels - 4 ** (level - 1))


def bft_channel_rates(levels: int, injection_rate: float) -> np.ndarray:
    """Per-link rates ``lambda_{l,l+1}`` for ``l = 0 .. levels-1`` (Eq. 14).

    Index ``l`` of the returned array is the rate of one up link from level
    ``l`` to ``l+1``; by Eq. 15 it also equals the rate of one down link
    from ``l+1`` to ``l``.  Index 0 is the injection-channel rate
    ``lambda_0`` itself.
    """
    _check_levels(levels)
    if injection_rate < 0:
        raise ConfigurationError(f"injection_rate must be >= 0, got {injection_rate!r}")
    ls = np.arange(levels)
    probs = (4.0**levels - 4.0**ls) / (4.0**levels - 1.0)
    return injection_rate * probs * 2.0**ls


def bft_channel_rates_batch(levels: int, injection_rates: np.ndarray) -> np.ndarray:
    """Per-link rates for a whole vector of injection rates at once (Eq. 14).

    Returns shape ``(levels, K)`` for ``K`` injection rates: row ``l`` holds
    ``lambda_{l,l+1}`` across the load grid.  Column ``k`` is elementwise
    identical to ``bft_channel_rates(levels, injection_rates[k])`` (same
    operation order, so batch and scalar sweeps agree bit-for-bit).
    """
    _check_levels(levels)
    inj = np.asarray(injection_rates, dtype=float)
    if inj.ndim != 1:
        raise ConfigurationError("injection_rates must be a 1-D array")
    if np.any(inj < 0):
        raise ConfigurationError("injection_rates must be >= 0")
    ls = np.arange(levels)
    probs = (4.0**levels - 4.0**ls) / (4.0**levels - 1.0)
    return (inj[np.newaxis, :] * probs[:, np.newaxis]) * (2.0**ls)[:, np.newaxis]


def bft_matrix_up_crossings(levels: int, matrix: np.ndarray) -> np.ndarray:
    """Aggregate level crossings of an arbitrary destination distribution.

    Generalizes the counting argument behind Eq. 14: element ``l`` is the
    total message mass (per unit ``lambda_0``) crossing from level ``l`` to
    ``l + 1`` — every message whose nearest common ancestor with its source
    sits above level ``l``, i.e. whose destination lies outside the
    source's level-``l`` leaf block.  ``matrix`` is a
    :meth:`~repro.traffic.spec.TrafficSpec.destination_matrix`-style
    ``(N, N)`` row-stochastic (or row-zero for silent sources) array.
    """
    _check_levels(levels)
    n = 4**levels
    m = np.asarray(matrix, dtype=float)
    if m.shape != (n, n):
        raise ConfigurationError(f"matrix must have shape ({n}, {n}), got {m.shape}")
    if np.any(m < 0):
        raise ConfigurationError("matrix entries must be non-negative")
    total = float(m.sum())
    crossings = np.empty(levels)
    for l in range(levels):
        block = 4**l
        blocks = m.reshape(n // block, block, n // block, block)
        # mass staying inside a level-l block never crosses level l
        within = float(np.einsum("ijik->", blocks))
        crossings[l] = total - within
    return crossings


def bft_channel_rates_for_matrix(
    levels: int, injection_rate: float, matrix: np.ndarray
) -> np.ndarray:
    """Class-*average* per-link rates under an arbitrary destination matrix.

    The Eq. 14 generalization: the ``bft_matrix_up_crossings`` mass at
    level ``l`` spreads over the ``4**n / 2**l`` up links of that level, so
    the mean per-link rate is ``lambda_0 * crossings_l * 2**l / 4**n`` (by
    flow balance the same average holds for the mirroring down links).
    For the uniform matrix this reproduces :func:`bft_channel_rates`
    exactly.  Note this is the *average* over a class — heterogeneous
    patterns (hotspots) have per-channel spreads that only the flow-level
    accounting in :mod:`repro.traffic.flows` resolves.
    """
    if injection_rate < 0:
        raise ConfigurationError(f"injection_rate must be >= 0, got {injection_rate!r}")
    crossings = bft_matrix_up_crossings(levels, matrix)
    ls = np.arange(levels)
    return injection_rate * crossings * (2.0**ls) / (4.0**levels)


def bft_total_up_crossings(levels: int, injection_rate: float) -> np.ndarray:
    """Aggregate messages/cycle crossing each up level (for flow-balance tests).

    Element ``l`` is ``P^_l * 4^n * lambda_0``, the total up-traffic between
    levels ``l`` and ``l+1``; dividing by the ``4^n / 2^l`` links of that
    level reproduces :func:`bft_channel_rates`.
    """
    _check_levels(levels)
    ls = np.arange(levels)
    probs = (4.0**levels - 4.0**ls) / (4.0**levels - 1.0)
    return probs * (4.0**levels) * injection_rate
