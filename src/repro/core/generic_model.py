"""The general wormhole model of Section 2 on arbitrary channel graphs.

The paper's Section 2 is deliberately network-agnostic: given (a) per-channel
arrival rates, (b) routing probabilities ``R_{i|j}``, and (c) the number of
servers per outgoing channel, Eq. 11 resolves every channel's mean service
time by walking the channel dependency structure backwards from the ejection
channels.  This module implements that general recursion over an explicit
*stage graph*:

* a :class:`Stage` is an equivalence class of statistically identical
  queues — e.g. "all up channels from level 2", or "all dimension-3
  channels of the hypercube".  A stage with ``servers = m`` represents
  queues of ``m`` pooled links (the fat-tree's up-link pairs);
* a :class:`Transition` records the probability mass flowing from one stage
  to another, together with the *per-queue* routing probability ``R_{i|j}``
  used by the blocking correction (these differ when a class contains
  several distinct queues, e.g. the four children of a switch).

On an acyclic stage graph (fat-trees, e-cube hypercubes) a single reverse
topological sweep is exact; on cyclic graphs the same recursion is iterated
to a fixed point (:func:`repro.util.fixedpoint.fixed_point`).

:func:`bft_stage_graph` re-derives the paper's butterfly fat-tree equations
from this general machinery; the test suite verifies it matches the
closed-form :class:`~repro.core.bft_model.ButterflyFatTreeModel` to machine
precision.  :func:`hypercube_stage_graph` applies the same machinery to a
binary hypercube — the "other networks" the paper's abstract refers to.

The recursion is implemented batched: because channel rates are linear in
the injection rate, one stage graph describes a whole load sweep, and
``solve_batch`` / ``latency_batch`` evaluate every scale factor in one
NumPy pass (cyclic graphs iterate a column-batched fixed point that
freezes saturated points at ``inf`` while the rest converge).  The scalar
``solve()`` is a cached one-point batch — the graph is immutable, so
``latency()`` and ``injection_service()`` share a single resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..analysis.findings import ERROR, Finding
from ..config import Workload
from ..errors import ConfigurationError, ConvergenceError
from ..obs import METRICS, trace_span
from ..queueing.distributions import scv_for_mode_batch
from ..queueing.mgm import mgm_waiting_time_batch
from ..topology.properties import bft_average_distance, hypercube_average_distance
from ..util.fixedpoint import fixed_point_batch
from ..util.validation import check_power_of
from .batch import as_injection_rates, charged_wait
from .blocking import blocking_probability_batch
from .rates import bft_channel_rates, conditional_up_probability, up_probability
from .variants import ModelVariant

__all__ = [
    "Transition",
    "Stage",
    "StageSolution",
    "StageBatchSolution",
    "EntryPoint",
    "ChannelGraphModel",
    "bft_stage_graph",
    "generalized_fattree_stage_graph",
    "hypercube_stage_graph",
]


@dataclass(frozen=True)
class Transition:
    """Routing edge between stages.

    Attributes
    ----------
    target:
        Name of the downstream stage.
    probability:
        Total probability mass a message on the source stage sends to the
        target *class* (weights the service-time mixture, Eq. 3).
    queue_probability:
        ``R_{i|j}`` toward one specific queue of the target class (enters
        the blocking correction, Eq. 10).  Defaults to ``probability``;
        pass e.g. ``probability / 4`` when the class consists of four
        interchangeable single-server queues.
    """

    target: str
    probability: float
    queue_probability: float | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"transition probability must be in [0,1], got {self.probability!r}"
            )
        qp = self.queue_probability
        if qp is not None and not (0.0 <= qp <= 1.0):
            raise ConfigurationError(
                f"queue_probability must be in [0,1], got {qp!r}"
            )

    @property
    def effective_queue_probability(self) -> float:
        return self.probability if self.queue_probability is None else self.queue_probability


@dataclass(frozen=True)
class Stage:
    """A class of statistically identical channels (see module docstring).

    ``rate_per_server`` is the message rate carried by one physical link;
    the queue seen by an arriving worm has ``servers`` links and total rate
    ``servers * rate_per_server``.  A stage with no transitions is terminal
    (an ejection channel) and has service time exactly one message length.
    """

    name: str
    rate_per_server: float
    servers: int = 1
    transitions: tuple[Transition, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.rate_per_server < 0:
            raise ConfigurationError(
                f"stage {self.name!r}: rate_per_server must be >= 0"
            )
        if not isinstance(self.servers, int) or self.servers < 1:
            raise ConfigurationError(
                f"stage {self.name!r}: servers must be a positive integer"
            )
        total = sum(t.probability for t in self.transitions)
        if self.transitions and not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ConfigurationError(
                f"stage {self.name!r}: transition probabilities sum to {total}, not 1"
            )

    @property
    def total_rate(self) -> float:
        """Total arrival rate of one queue of this class."""
        return self.servers * self.rate_per_server

    @property
    def is_terminal(self) -> bool:
        return not self.transitions


@dataclass(frozen=True)
class StageSolution:
    """Resolved mean service time and queue wait of one stage."""

    service: float
    wait: float

    @property
    def finite(self) -> bool:
        return math.isfinite(self.service) and math.isfinite(self.wait)


@dataclass(frozen=True)
class EntryPoint:
    """One injection stage of a (possibly asymmetric) workload.

    ``weight`` is the share of total traffic injected through the stage
    (normalized by the model); ``distance`` is the mean channel count —
    injection and ejection channels included — of messages entering there,
    so the Eq. 25 latency generalizes to
    ``L = sum_e w_e * (W_e + x_e + D_e) - 1``.
    """

    name: str
    weight: float
    distance: float

    def __post_init__(self) -> None:
        if not (self.weight > 0.0) or not math.isfinite(self.weight):
            raise ConfigurationError(
                f"entry {self.name!r}: weight must be positive, got {self.weight!r}"
            )
        if not (self.distance > 0.0) or not math.isfinite(self.distance):
            raise ConfigurationError(
                f"entry {self.name!r}: distance must be positive, got {self.distance!r}"
            )


@dataclass(frozen=True)
class StageBatchSolution:
    """One stage's (service, wait) arrays over a batch of operating points.

    Both arrays have shape ``(K,)`` — one entry per rate scale passed to
    :meth:`ChannelGraphModel.solve_batch`.
    """

    service: np.ndarray
    wait: np.ndarray

    @property
    def finite_mask(self) -> np.ndarray:
        """True where both moments are finite (steady state per point)."""
        return np.isfinite(self.service) & np.isfinite(self.wait)


class ChannelGraphModel:
    """General wormhole-latency solver over a stage graph (Eqs. 3-11).

    Parameters
    ----------
    stages:
        The channel classes; names must be unique and transition targets
        must exist.
    message_flits:
        Worm length ``s/f``.
    entry:
        Name of the injection stage; its wait/service feed the latency
        formula (Eq. 1).  Symmetric-workload form — exactly one of
        ``entry`` and ``entries`` must be given.
    average_distance:
        Mean path length ``D_bar`` in channels (including injection and
        ejection channels), used by Eq. 2.  Required with ``entry``.
    entries:
        Asymmetric-workload form: several weighted :class:`EntryPoint`
        records (one per injection stage), each with its own mean channel
        distance.  Latency and the Eq. 26 stability test are evaluated per
        entry and traffic-weighted (the pattern-aware builders in
        :mod:`repro.traffic.analytic` use this).
    variant:
        Approximation switches shared with the closed-form model.
    reference_rate:
        The per-PE injection rate the graph's stage rates were built at;
        ``latency_batch`` / ``stability_batch`` convert absolute load grids
        to scale factors against it.  Defaults to the entry stage's
        ``rate_per_server``.
    """

    def __init__(
        self,
        stages: list[Stage],
        *,
        message_flits: int,
        entry: str | None = None,
        average_distance: float | None = None,
        entries: tuple[EntryPoint, ...] | None = None,
        variant: ModelVariant | None = None,
        reference_rate: float | None = None,
    ) -> None:
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError("stage names must be unique")
        self.stages = {s.name: s for s in stages}
        for s in stages:
            for t in s.transitions:
                if t.target not in self.stages:
                    raise ConfigurationError(
                        f"stage {s.name!r} references unknown target {t.target!r}"
                    )
        if (entry is None) == (entries is None):
            raise ConfigurationError(
                "exactly one of entry and entries must be provided"
            )
        if entries is None:
            if average_distance is None:
                raise ConfigurationError("average_distance is required with entry")
            entries = (EntryPoint(entry, 1.0, average_distance),)
        elif not entries:
            raise ConfigurationError("entries must be non-empty")
        total_weight = sum(e.weight for e in entries)
        entries = tuple(
            EntryPoint(e.name, e.weight / total_weight, e.distance) for e in entries
        )
        for e in entries:
            if e.name not in self.stages:
                raise ConfigurationError(f"entry stage {e.name!r} not defined")
        if not isinstance(message_flits, int) or message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        if average_distance is None:
            average_distance = sum(e.weight * e.distance for e in entries)
        if average_distance <= 0:
            raise ConfigurationError("average_distance must be positive")
        if reference_rate is not None and reference_rate <= 0.0:
            raise ConfigurationError("reference_rate must be positive")
        self.message_flits = message_flits
        self.entries = entries
        self.entry = entry if entry is not None else max(entries, key=lambda e: e.weight).name
        self.average_distance = average_distance
        self.variant = variant or ModelVariant.paper()
        self.reference_rate = reference_rate
        self._order = self._topological_order()
        # The graph is immutable, so the unit-scale solution is computed at
        # most once per instance (latency() and injection_service() share it).
        self._solution: dict[str, StageSolution] | None = None

    # --- structure ------------------------------------------------------------

    def _topological_order(self) -> list[str] | None:
        """Reverse-dependency order (terminals first), or None if cyclic."""
        indeg = {name: len(s.transitions) for name, s in self.stages.items()}
        rev: dict[str, list[str]] = {name: [] for name in self.stages}
        for name, s in self.stages.items():
            for t in s.transitions:
                rev[t.target].append(name)
        ready = [n for n, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for upstream in rev[n]:
                indeg[upstream] -= 1
                if indeg[upstream] == 0:
                    ready.append(upstream)
        return order if len(order) == len(self.stages) else None

    @property
    def is_acyclic(self) -> bool:
        """True when one reverse sweep solves the graph exactly."""
        return self._order is not None

    def _cycle_members(self) -> list[str]:
        """Stage names on or feeding into a cycle (empty when acyclic)."""
        if self._order is not None:
            return []
        indeg = {name: len(s.transitions) for name, s in self.stages.items()}
        rev: dict[str, list[str]] = {name: [] for name in self.stages}
        for name, s in self.stages.items():
            for t in s.transitions:
                rev[t.target].append(name)
        ready = [n for n, d in indeg.items() if d == 0]
        done: set[str] = set()
        while ready:
            n = ready.pop()
            done.add(n)
            for upstream in rev[n]:
                indeg[upstream] -= 1
                if indeg[upstream] == 0:
                    ready.append(upstream)
        return sorted(set(self.stages) - done)

    def check(
        self, *, expect_acyclic: bool | None = None, load_scale: float = 1.0
    ) -> list[Finding]:
        """Static pre-solve checks; returns findings instead of solving.

        Verifies — without running any fixed point — that (a) the entry
        weights still sum to 1 (REP103), (b) the graph structure matches
        the solver the caller intends to use (REP102: ``expect_acyclic=True``
        demands a feed-forward graph; ``False``/``None`` accepts cycles,
        which the batched fixed point handles), and (c) a *necessary*
        stability condition holds at ``load_scale`` times the built rates
        (REP104): service of a worm takes at least ``message_flits`` cycles,
        so a stage with ``total_rate * scale * message_flits >= servers``
        is certainly saturated (Eq. 26 can only be tighter).
        """
        findings: list[Finding] = []
        total_weight = sum(e.weight for e in self.entries)
        if not math.isclose(total_weight, 1.0, rel_tol=0.0, abs_tol=1e-9) or not all(
            math.isfinite(e.weight) and e.weight >= 0.0 for e in self.entries
        ):
            findings.append(
                Finding(
                    rule="REP103",
                    severity=ERROR,
                    message=(
                        f"entry-point weights sum to {total_weight!r}, expected 1"
                    ),
                    channel="entries",
                    hint="entry weights must form a probability distribution",
                )
            )
        if expect_acyclic is True and not self.is_acyclic:
            members = self._cycle_members()
            shown = ", ".join(members[:6]) + ("..." if len(members) > 6 else "")
            findings.append(
                Finding(
                    rule="REP102",
                    severity=ERROR,
                    message=(
                        "stage graph is cyclic but the feed-forward solver was "
                        f"requested; cycle-reachable stages: {shown}"
                    ),
                    channel=members[0] if members else "graph",
                    hint="use the cyclic batch solver or fix the transition graph",
                )
            )
        if math.isfinite(load_scale) and load_scale > 0.0:
            for name in sorted(self.stages):
                stage = self.stages[name]
                demand = stage.total_rate * load_scale * self.message_flits
                if demand >= stage.servers:
                    findings.append(
                        Finding(
                            rule="REP104",
                            severity=ERROR,
                            message=(
                                f"stage {name!r} is saturated at the requested "
                                f"load: rho >= {demand / stage.servers:.3f} even "
                                "at the minimal service time "
                                f"({self.message_flits} flit cycles)"
                            ),
                            channel=name,
                            hint="lower the injection rate below saturation",
                        )
                    )
        return findings

    # --- solving ----------------------------------------------------------------

    def _wait_batch(self, stage: Stage, service: np.ndarray, rate: np.ndarray) -> np.ndarray:
        """Per-point M/G/m wait of one stage (``inf`` where diverged)."""
        scv = scv_for_mode_batch(self.variant.scv_mode, service, self.message_flits)
        return mgm_waiting_time_batch(stage.servers * rate, service, stage.servers, scv)

    def _service_of_batch(
        self,
        stage: Stage,
        solved: dict[str, StageBatchSolution],
        rates: dict[str, np.ndarray],
        n_points: int,
    ) -> np.ndarray:
        """Eq. 11 service-time mixture of one stage, over the load axis."""
        if stage.is_terminal:
            return np.full(n_points, float(self.message_flits))
        total = np.zeros(n_points)
        for t in stage.transitions:
            if t.probability == 0.0:
                continue
            down = solved[t.target]
            target = self.stages[t.target]
            p_block = blocking_probability_batch(
                target.servers,
                rates[stage.name],
                target.servers * rates[t.target],
                t.effective_queue_probability,
                enabled=self.variant.blocking_correction,
            )
            total = total + t.probability * (
                down.service + charged_wait(p_block, down.wait)
            )
        return total

    def solve_batch(self, rate_scales) -> dict[str, StageBatchSolution]:
        """Resolve every stage over a vector of traffic scale factors.

        Channel rates are linear in the injection rate, so one stage graph
        built at a reference workload describes a whole load sweep: entry
        ``k`` of the result scales every stage's rate by ``rate_scales[k]``.
        Acyclic graphs are solved in one reverse sweep with all per-stage
        arrays broadcast over the load axis; cyclic graphs iterate Eq. 11
        with :func:`~repro.util.fixedpoint.fixed_point_batch`, freezing
        saturated points at ``inf`` while the rest converge.
        """
        scales = as_injection_rates(rate_scales)
        if METRICS.enabled:
            METRICS.add("solve.batch")
            METRICS.add("solve.points", float(scales.size))
        rates = {
            name: stage.rate_per_server * scales
            for name, stage in self.stages.items()
        }
        with trace_span(
            "solve/stage_graph", stages=len(self.stages), points=int(scales.size)
        ):
            if self._order is not None:
                solved: dict[str, StageBatchSolution] = {}
                for name in self._order:
                    stage = self.stages[name]
                    service = self._service_of_batch(stage, solved, rates, scales.size)
                    solved[name] = StageBatchSolution(
                        service, self._wait_batch(stage, service, rates[name])
                    )
                return solved
            return self._solve_cyclic_batch(rates, scales.size)

    def _solve_cyclic_batch(
        self, rates: dict[str, np.ndarray], n_points: int
    ) -> dict[str, StageBatchSolution]:
        names = sorted(self.stages)
        idx = {n: i for i, n in enumerate(names)}

        def step(x: np.ndarray) -> np.ndarray:
            solved = {
                n: StageBatchSolution(
                    x[idx[n]], self._wait_batch(self.stages[n], x[idx[n]], rates[n])
                )
                for n in names
            }
            out = np.empty_like(x)
            for n in names:
                out[idx[n]] = self._service_of_batch(
                    self.stages[n], solved, rates, n_points
                )
            return out

        x0 = np.full((len(names), n_points), float(self.message_flits))
        # Near saturation the iteration's contraction rate approaches 1
        # (critical slowing down), so a strict 1e-12 tolerance can exhaust
        # any budget while the answer is already correct to far better than
        # a millicycle — e.g. asymmetric degraded-fabric traffic on a torus.
        # An exhausted budget is therefore accepted when the residual is
        # below this floor, and diagnosed as a ConvergenceError otherwise.
        residual_floor = 1e-6
        try:
            with trace_span("solve/fixed_point", points=n_points):
                result = fixed_point_batch(
                    step, x0, tol=1e-12, max_iter=20_000, damping=0.5
                )
        except ConvergenceError as exc:
            if exc.residual <= residual_floor:
                METRICS.add("fixed_point.exhausted_accepted")
                with trace_span("solve/fixed_point", points=n_points, retry=True):
                    result = fixed_point_batch(
                        step,
                        x0,
                        tol=1e-12,
                        max_iter=20_000,
                        damping=0.5,
                        allow_divergence=True,
                    )
            else:
                channel = (
                    names[exc.worst_component]
                    if exc.worst_component is not None
                    else None
                )
                raise ConvergenceError(
                    f"cyclic channel-graph solve did not converge"
                    f"{f' (worst channel {channel!r})' if channel else ''}: {exc}",
                    iterations=exc.iterations,
                    residual=exc.residual,
                    worst_component=exc.worst_component,
                    worst_channel=channel,
                ) from exc
        solved = {}
        for n in names:
            stage = self.stages[n]
            service = result.value[idx[n]]
            solved[n] = StageBatchSolution(
                service, self._wait_batch(stage, service, rates[n])
            )
        return solved

    def solve(self) -> dict[str, StageSolution]:
        """Resolve every stage's (service, wait) pair at the built workload.

        Thin wrapper over a one-point :meth:`solve_batch` at scale 1.  The
        stage graph is immutable, so the result is computed once and cached;
        treat the returned mapping as read-only.
        """
        if self._solution is None:
            batch = self.solve_batch(np.ones(1))
            self._solution = {
                name: StageSolution(float(s.service[0]), float(s.wait[0]))
                for name, s in batch.items()
            }
        return self._solution

    # --- outputs ------------------------------------------------------------------

    def _check_flits(self, message_flits: int | None) -> None:
        if message_flits is not None and message_flits != self.message_flits:
            raise ConfigurationError(
                f"stage graph was built for message_flits={self.message_flits}, "
                f"got {message_flits}"
            )

    def _reference_rate(self) -> float:
        reference = (
            self.reference_rate
            if self.reference_rate is not None
            else self.stages[self.entry].rate_per_server
        )
        if reference <= 0.0:
            raise ConfigurationError(
                "load-grid evaluation needs a graph built at a positive "
                "reference rate (rates scale linearly from that reference)"
            )
        return reference

    def _finite_mask(self, solved: dict[str, StageBatchSolution]) -> np.ndarray:
        """Per-point steady state over *all* stages (matching the closed-form
        models, whose solutions count as saturated when any channel class
        diverged)."""
        masks = [s.finite_mask for s in solved.values()]
        out = masks[0].copy()
        for m in masks[1:]:
            out &= m
        return out

    def _latency_from(self, solved: dict[str, StageBatchSolution]) -> np.ndarray:
        """Traffic-weighted Eq. 25 over the entry points (``inf`` past saturation)."""
        finite = self._finite_mask(solved)
        total = np.zeros_like(finite, dtype=float)
        with np.errstate(invalid="ignore"):
            for e in self.entries:
                stage = solved[e.name]
                total = total + e.weight * (stage.wait + stage.service + e.distance)
        return np.where(finite, total - 1.0, np.inf)

    def latency(self) -> float:
        """Average latency via Eqs. 1-2 (``inf`` past saturation).

        With several entry points this is the traffic-weighted mean of the
        per-source latencies ``W_e + x_e + D_e - 1``.
        """
        solved = self.solve()
        if any(not s.finite for s in solved.values()):
            return math.inf
        return (
            sum(
                e.weight * (solved[e.name].wait + solved[e.name].service + e.distance)
                for e in self.entries
            )
            - 1.0
        )

    def injection_service(self) -> float:
        """Traffic-weighted entry service time (drives the Eq. 26 test)."""
        solved = self.solve()
        return sum(e.weight * solved[e.name].service for e in self.entries)

    def latency_batch(self, loads, message_flits: int | None = None) -> np.ndarray:
        """Average latency over a vector of injection rates in one pass.

        ``loads`` are absolute injection rates ``lambda_0`` per PE; they are
        converted to scale factors against :attr:`reference_rate` (by
        default the entry stage's built rate, which therefore must be
        positive).  ``message_flits``, when given, must match the graph's
        fixed worm length — the parameter exists for signature parity with
        the closed-form models' ``latency_batch``.
        """
        self._check_flits(message_flits)
        rates = as_injection_rates(loads)
        return self._latency_from(self.solve_batch(rates / self._reference_rate()))

    def stability_batch(self, loads, message_flits: int | None = None) -> np.ndarray:
        """Vectorized Eq. 26 stability test (one bool per injection rate).

        A point is stable when every stage admits a steady state *and*
        every entry keeps up with its own offered rate
        (``lambda_e * x_e < 1``).  This is the API the vectorized
        saturation search (:func:`repro.core.throughput.saturation_injection_rate`)
        consumes, so stage-graph models — including the pattern-aware ones —
        saturation-search through the batch engine.
        """
        self._check_flits(message_flits)
        rates = as_injection_rates(loads)
        reference = self._reference_rate()
        solved = self.solve_batch(rates / reference)
        ok = self._finite_mask(solved)
        for e in self.entries:
            stage = solved[e.name]
            entry_rate = self.stages[e.name].rate_per_server * rates / reference
            with np.errstate(invalid="ignore"):
                keeps_up = entry_rate * stage.service < 1.0
            ok &= np.where(np.isfinite(stage.service), keeps_up, False)
        return ok

    def is_stable(self, workload: Workload) -> bool:
        """Eq. 26 stability of one operating point (enables saturation search)."""
        if not isinstance(workload, Workload):
            raise ConfigurationError(f"workload must be a Workload, got {workload!r}")
        self._check_flits(workload.message_flits)
        return bool(
            self.stability_batch(np.array([workload.injection_rate]))[0]
        )


# --- ready-made stage graphs -------------------------------------------------------


def bft_stage_graph(
    num_processors: int,
    workload: Workload,
    variant: ModelVariant | None = None,
) -> ChannelGraphModel:
    """Express the butterfly fat-tree in the general stage-graph form.

    Stage names: ``up0 .. up{n-1}`` (``up0`` is the injection channel) and
    ``down0 .. down{n-1}`` (``down0`` is the ejection channel), indexed by
    the lower level exactly like :class:`BftSolution`'s arrays.  Solving
    this graph must reproduce the closed-form model bit-for-bit — that
    identity is part of the test suite.
    """
    variant = variant or ModelVariant.paper()
    n = check_power_of("num_processors", num_processors, 4)
    rate = bft_channel_rates(n, workload.injection_rate)

    def climb(level: int) -> float:
        if variant.conditional_up_probability:
            return conditional_up_probability(n, level)
        return up_probability(n, level)

    stages: list[Stage] = []
    # Down channels: down0 terminal; down{l} feeds down{l-1} through one of
    # four interchangeable children.
    stages.append(Stage("down0", rate_per_server=float(rate[0])))
    for l in range(1, n):
        stages.append(
            Stage(
                f"down{l}",
                rate_per_server=float(rate[l]),
                transitions=(
                    Transition(f"down{l-1}", 1.0, 0.25),
                ),
            )
        )
    # Up channels: two-server pairs above the injection level.
    for u in range(n - 1, -1, -1):
        p_up = climb(u + 1)
        p_down = 1.0 - p_up
        transitions: list[Transition] = []
        if p_up > 0.0:
            queue_prob = p_up if variant.multiserver_up else p_up / 2.0
            transitions.append(Transition(f"up{u+1}", p_up, queue_prob))
        transitions.append(Transition(f"down{u}", p_down, p_down / 3.0))
        servers = 2 if (u >= 1 and variant.multiserver_up) else 1
        stages.append(
            Stage(
                f"up{u}",
                rate_per_server=float(rate[u]),
                servers=servers,
                transitions=tuple(transitions),
            )
        )
    return ChannelGraphModel(
        stages,
        message_flits=workload.message_flits,
        entry="up0",
        average_distance=bft_average_distance(n),
        variant=variant,
    )


def generalized_fattree_stage_graph(
    children: int,
    parents: int,
    levels: int,
    workload: Workload,
    variant: ModelVariant | None = None,
) -> ChannelGraphModel:
    """Express a generalized (c, p) fat-tree in the stage-graph form.

    Generalizes :func:`bft_stage_graph`: up channels pool ``p`` links into
    one M/G/p queue, the turn-down branch targets one of ``c - 1`` sibling
    channels, and the down fan-out splits over ``c`` children.  Solving
    this graph reproduces
    :class:`~repro.core.generalized_model.GeneralizedFatTreeModel` to
    machine precision (asserted in the test suite), which certifies that
    the closed-form generalized sweep is an instance of the paper's
    Section-2 recursion.
    """
    from ..core.generalized_model import (
        generalized_average_distance,
        generalized_channel_rates,
        generalized_up_probability,
    )

    variant = variant or ModelVariant.paper()
    if not isinstance(children, int) or children < 2:
        raise ConfigurationError(f"children must be an integer >= 2, got {children!r}")
    if not isinstance(parents, int) or parents < 1:
        raise ConfigurationError(f"parents must be an integer >= 1, got {parents!r}")
    if not isinstance(levels, int) or levels < 1:
        raise ConfigurationError(f"levels must be an integer >= 1, got {levels!r}")
    c, p, n = children, parents, levels
    rate = generalized_channel_rates(c, p, n, workload.injection_rate)

    def climb(level: int) -> float:
        if variant.conditional_up_probability:
            return (c**n - c**level) / (c**n - c ** (level - 1))
        return generalized_up_probability(c, n, level)

    stages: list[Stage] = [Stage("down0", rate_per_server=float(rate[0]))]
    for l in range(1, n):
        stages.append(
            Stage(
                f"down{l}",
                rate_per_server=float(rate[l]),
                transitions=(Transition(f"down{l-1}", 1.0, 1.0 / c),),
            )
        )
    for u in range(n - 1, -1, -1):
        p_up = climb(u + 1)
        p_down = 1.0 - p_up
        transitions: list[Transition] = []
        if p_up > 0.0:
            queue_prob = p_up if variant.multiserver_up else p_up / p
            transitions.append(Transition(f"up{u+1}", p_up, queue_prob))
        transitions.append(Transition(f"down{u}", p_down, p_down / (c - 1)))
        servers = p if (u >= 1 and variant.multiserver_up) else 1
        stages.append(
            Stage(
                f"up{u}",
                rate_per_server=float(rate[u]),
                servers=servers,
                transitions=tuple(transitions),
            )
        )
    return ChannelGraphModel(
        stages,
        message_flits=workload.message_flits,
        entry="up0",
        average_distance=generalized_average_distance(c, n),
        variant=variant,
    )


def hypercube_stage_graph(
    dimension: int,
    workload: Workload,
    variant: ModelVariant | None = None,
) -> ChannelGraphModel:
    """The general model instantiated on a binary hypercube with e-cube routing.

    E-cube resolves address bits from the highest dimension down, so the
    stage graph ``inject -> dim{d-1} -> ... -> dim0 -> eject`` is acyclic.
    Under uniform traffic every dimension-``k`` channel carries
    ``lambda_0 * 2^(d-1) / (2^d - 1)``; after crossing dimension ``k`` the
    next differing dimension is ``j < k`` with probability ``2^(j-k)`` and
    the message ejects with probability ``2^-k``.
    """
    variant = variant or ModelVariant.paper()
    if not isinstance(dimension, int) or dimension < 1:
        raise ConfigurationError(f"dimension must be a positive integer, got {dimension!r}")
    d = dimension
    n_nodes = 1 << d
    lam0 = workload.injection_rate
    lam_dim = lam0 * (n_nodes // 2) / (n_nodes - 1)

    stages: list[Stage] = [Stage("eject", rate_per_server=lam0)]
    for k in range(d):
        transitions = [
            Transition(f"dim{j}", 2.0 ** (j - k)) for j in range(k - 1, -1, -1)
        ]
        transitions.append(Transition("eject", 2.0**-k))
        stages.append(
            Stage(
                f"dim{k}",
                rate_per_server=lam_dim,
                transitions=tuple(transitions),
            )
        )
    inject_transitions = tuple(
        Transition(f"dim{k}", (1 << k) / (n_nodes - 1)) for k in range(d)
    )
    stages.append(
        Stage("inject", rate_per_server=lam0, transitions=inject_transitions)
    )
    return ChannelGraphModel(
        stages,
        message_flits=workload.message_flits,
        entry="inject",
        average_distance=hypercube_average_distance(d),
        variant=variant,
    )
