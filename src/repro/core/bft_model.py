"""The paper's analytical model of the butterfly fat-tree (Section 3).

The model resolves per-channel-class mean service times and waiting times in
two closed-form sweeps (no fixed-point iteration is needed because the
channel dependency graph of the fat-tree is acyclic):

1. **Down sweep** (Eqs. 16-19), from the ejection channels upward: the
   service time of a down channel is the downstream service time plus the
   blocking-corrected downstream wait; waits come from the M/G/1 model
   because down links have no redundancy.
2. **Up sweep** (Eqs. 20-24), from the root level downward: an up channel's
   service time mixes the continue-up branch (weight ``P^``) and the
   turn-down branch (weight ``P#``); waits on up channels use the
   *two-server* M/G/2 model fed the total pair rate ``2 * lambda`` (this is
   the published correction to Eqs. 21/23), except the injection channel
   ``<0,1>`` which has no redundant partner and stays M/G/1 (Eq. 24).

Average latency then follows from Eq. 25:
``L = W_{0,1} + x_{0,1} + (D_bar - 1)``.

Saturated operating points (any channel utilization at or above capacity)
yield ``inf`` waits that propagate to an ``inf`` latency; callers can test
:attr:`BftSolution.saturated`.

The recursion is implemented once, *batched*: :meth:`solve_batch` and
:meth:`latency_batch` broadcast both sweeps over a whole vector of
injection rates in one NumPy pass (service times, M/G/m waits and blocking
corrections all carry a trailing load axis, with ``inf`` propagating per
point past saturation).  The scalar :meth:`solve` / :meth:`latency` are
thin wrappers over a one-point batch, so batch and scalar sweeps agree
bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError
from ..queueing.distributions import scv_for_mode_batch
from ..queueing.mg1 import mg1_waiting_time_batch
from ..queueing.mgm import mgm_waiting_time_batch
from ..topology.properties import bft_average_distance
from ..util.validation import check_power_of
from .batch import (
    BatchSolution,
    as_injection_rates,
    assemble_level_batch,
    charged_wait,
    level_detail_columns,
)
from .blocking import blocking_probability_batch
from .rates import (
    bft_channel_rates_batch,
    conditional_up_probability,
    up_probability,
)
from .variants import ModelVariant

__all__ = ["BftSolution", "ButterflyFatTreeModel"]


@dataclass(frozen=True)
class BftSolution:
    """Per-channel-class solution of the model at one operating point.

    All arrays have length ``levels`` and are indexed by the *lower* level
    of the channel: index ``l`` refers to up channel ``<l, l+1>`` and down
    channel ``<l+1, l>``.  Rates are per physical link (messages/cycle).
    """

    workload: Workload
    levels: int
    rate: np.ndarray
    down_service: np.ndarray
    down_wait: np.ndarray
    up_service: np.ndarray
    up_wait: np.ndarray
    average_distance: float

    @property
    def saturated(self) -> bool:
        """True when any wait or service time diverged (no steady state)."""
        return not (
            np.all(np.isfinite(self.down_service))
            and np.all(np.isfinite(self.down_wait))
            and np.all(np.isfinite(self.up_service))
            and np.all(np.isfinite(self.up_wait))
        )

    @property
    def injection_wait(self) -> float:
        """``W_{0,1}`` — the M/G/1 wait at the source (Eq. 24)."""
        return float(self.up_wait[0])

    @property
    def injection_service(self) -> float:
        """``x_{0,1}`` — the source service time, including all downstream blocking."""
        return float(self.up_service[0])

    @property
    def latency(self) -> float:
        """Average message latency in cycles (Eq. 25)."""
        if self.saturated:
            return math.inf
        return self.injection_wait + self.injection_service + self.average_distance - 1.0

    def up_utilization(self) -> np.ndarray:
        """Per-server utilization ``rho`` of each up channel class."""
        return self.rate * self.up_service

    def down_utilization(self) -> np.ndarray:
        """Per-server utilization ``rho`` of each down channel class."""
        return self.rate * self.down_service

    def breakdown(self) -> dict[str, float]:
        """Named latency components (for reports and examples)."""
        return {
            "injection_wait": self.injection_wait,
            "injection_service": self.injection_service,
            "pipeline": self.average_distance - 1.0,
            "latency": self.latency,
        }


class ButterflyFatTreeModel:
    """Analytical latency/throughput model of a butterfly fat-tree.

    Parameters
    ----------
    num_processors:
        ``N = 4**n`` processors (power of four, >= 4).
    variant:
        Approximation switches; defaults to the model exactly as published.

    Examples
    --------
    >>> from repro import ButterflyFatTreeModel, Workload
    >>> model = ButterflyFatTreeModel(1024)
    >>> wl = Workload.from_flit_load(0.02, message_flits=32)
    >>> round(model.latency(wl), 1) > 0
    True
    """

    def __init__(
        self, num_processors: int, variant: ModelVariant | None = None
    ) -> None:
        self.levels = check_power_of("num_processors", num_processors, 4)
        self.num_processors = num_processors
        self.variant = variant or ModelVariant.paper()
        self.average_distance = bft_average_distance(self.levels)

    # --- waiting-time helpers -------------------------------------------------

    def _scv_batch(self, service: np.ndarray, message_flits: int) -> np.ndarray:
        """Per-point SCV of a channel class (0 past saturation)."""
        return scv_for_mode_batch(self.variant.scv_mode, service, message_flits)

    def _down_wait_batch(
        self, rate: np.ndarray, service: np.ndarray, message_flits: int
    ) -> np.ndarray:
        return mg1_waiting_time_batch(
            rate, service, self._scv_batch(service, message_flits)
        )

    def _up_wait_batch(
        self, rate: np.ndarray, service: np.ndarray, message_flits: int
    ) -> np.ndarray:
        """Wait on an up channel: M/G/2 over the pair, or per-link M/G/1 ablation.

        The two-server form receives the pair's total arrival rate
        ``2 * rate`` (published correction); the no-multiserver ablation
        models each up link as an independent M/G/1 queue carrying ``rate``.
        """
        scv = self._scv_batch(service, message_flits)
        if self.variant.multiserver_up:
            return mgm_waiting_time_batch(2.0 * rate, service, 2, scv)
        return mg1_waiting_time_batch(rate, service, scv)

    def _climb_probability(self, level: int) -> float:
        """Branching probability that a message at ``level`` keeps climbing."""
        if self.variant.conditional_up_probability:
            return conditional_up_probability(self.levels, level)
        return up_probability(self.levels, level)

    # --- the solver -----------------------------------------------------------

    def solve_batch(
        self, injection_rates, message_flits: int
    ) -> BatchSolution:
        """Resolve every channel class over a whole vector of injection rates.

        Both Eq. 16-24 sweeps are broadcast over the load axis: all stage
        service times, M/G/m waits and blocking corrections are arrays with
        one entry per injection rate, with ``inf`` propagating per point
        past saturation.  Column ``k`` of every per-level array is
        bit-identical to the scalar solve at ``injection_rates[k]``.
        """
        if not isinstance(message_flits, int) or message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        inj = as_injection_rates(injection_rates)
        n = self.levels
        flits = message_flits
        blocking = self.variant.blocking_correction
        rate = bft_channel_rates_batch(n, inj)  # (levels, K)

        down_service = np.empty_like(rate)
        down_wait = np.empty_like(rate)
        up_service = np.empty_like(rate)
        up_wait = np.empty_like(rate)

        # ---- down sweep: ejection channel first (Eqs. 16-19) ----
        down_service[0] = float(flits)
        down_wait[0] = self._down_wait_batch(rate[0], down_service[0], flits)
        for l in range(1, n):
            p_block = blocking_probability_batch(
                1, rate[l], rate[l - 1], 0.25, enabled=blocking
            )
            down_service[l] = down_service[l - 1] + charged_wait(
                p_block, down_wait[l - 1]
            )
            down_wait[l] = self._down_wait_batch(rate[l], down_service[l], flits)

        # ---- up sweep: root level first (Eqs. 20-24) ----
        for u in range(n - 1, -1, -1):
            switch_level = u + 1  # level of the switch this channel enters
            p_up = self._climb_probability(switch_level)
            p_down = 1.0 - p_up

            service = np.zeros(inj.shape)
            if p_up > 0.0:
                if self.variant.multiserver_up:
                    # One two-server channel per switch, total rate 2*lambda,
                    # targeted with the full climb probability.
                    servers, group_rate, queue_prob = 2, 2.0 * rate[u + 1], p_up
                else:
                    # Ablation: two independent M/G/1 queues, each targeted
                    # with half the climb probability.
                    servers, group_rate, queue_prob = 1, rate[u + 1], p_up / 2.0
                p_block_up = blocking_probability_batch(
                    servers, rate[u], group_rate, queue_prob, enabled=blocking
                )
                service = service + p_up * (
                    up_service[u + 1] + charged_wait(p_block_up, up_wait[u + 1])
                )

            # Turn-down branch: three sibling subtrees, one single-server
            # down channel each (the top level has exactly this form, with
            # p_down == 1, reproducing Eq. 20's factor 2/3).
            p_block_down = blocking_probability_batch(
                1, rate[u], rate[u], p_down / 3.0, enabled=blocking
            )
            service = service + p_down * (
                down_service[u] + charged_wait(p_block_down, down_wait[u])
            )

            up_service[u] = service
            if u == 0:
                # Injection channel <0,1>: no redundant partner (Eq. 24).
                up_wait[0] = mg1_waiting_time_batch(
                    rate[0], up_service[0], self._scv_batch(up_service[0], flits)
                )
            else:
                up_wait[u] = self._up_wait_batch(rate[u], up_service[u], flits)

        return assemble_level_batch(
            message_flits=flits,
            injection_rates=inj,
            average_distance=self.average_distance,
            rate=rate,
            down_service=down_service,
            down_wait=down_wait,
            up_service=up_service,
            up_wait=up_wait,
        )

    def solve(self, workload: Workload) -> BftSolution:
        """Resolve all channel service and waiting times at ``workload``.

        Thin wrapper over a one-point :meth:`solve_batch` (the recursion is
        implemented once, batched), preserving the scalar result layout.
        """
        if not isinstance(workload, Workload):
            raise ConfigurationError(f"workload must be a Workload, got {workload!r}")
        batch = self.solve_batch(
            np.array([workload.injection_rate]), workload.message_flits
        )
        return BftSolution(
            workload=workload,
            levels=self.levels,
            average_distance=self.average_distance,
            **level_detail_columns(batch),
        )

    # --- convenience API --------------------------------------------------------

    def latency(self, workload: Workload) -> float:
        """Average message latency in cycles (``inf`` past saturation)."""
        return self.solve(workload).latency

    def latency_batch(self, loads, message_flits: int) -> np.ndarray:
        """Average latency for a whole vector of injection rates in one pass.

        ``loads`` are injection rates ``lambda_0`` in messages/cycle/PE
        (``flit_load / message_flits``, i.e. ``Workload.injection_rate``).
        Entry ``k`` equals ``latency(Workload(message_flits, loads[k]))``
        exactly — the scalar path is a one-point batch of this routine.
        """
        return self.solve_batch(loads, message_flits).latencies

    def stability_batch(self, loads, message_flits: int) -> np.ndarray:
        """Vectorized Eq. 26 stability test (one bool per injection rate)."""
        return self.solve_batch(loads, message_flits).stable_mask

    def traffic_model(
        self, spec, message_flits: int, *, reference_rate: float | None = None
    ):
        """Pattern-aware per-channel solver for this network and worm length.

        ``spec`` is a :class:`~repro.traffic.spec.TrafficSpec`; the result
        is a :class:`~repro.core.generic_model.ChannelGraphModel` whose
        stages are the *physical* channels carrying the pattern's flow
        (so hotspots and permutations see their hot channels, not class
        averages).  It exposes ``latency_batch`` / ``stability_batch`` and
        therefore sweeps and saturation-searches through the batch engine
        exactly like this model; ``latency_sweep(..., spec=...)`` and
        ``saturation_injection_rate(..., spec=...)`` build it implicitly.

        The graph shares this model's variant switches except
        ``conditional_up_probability``: flow conservation forces the exact
        conditional branching, so the paper's unconditional approximation
        has no per-channel analogue.

        ``reference_rate`` is the (arbitrary, positive) injection rate the
        graph is built at; rates scale linearly, so it only anchors the
        load-grid conversion.
        """
        from ..traffic.analytic import bft_traffic_stage_graph

        if not isinstance(message_flits, int) or message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        rate = (
            reference_rate
            if reference_rate is not None
            else 1.0 / (100.0 * message_flits)
        )
        return bft_traffic_stage_graph(
            self.num_processors,
            Workload(message_flits, rate),
            spec,
            variant=self.variant,
        )

    def latency_at_flit_load(self, flit_load: float, message_flits: int) -> float:
        """Latency with load given in Figure-3 units (flits/cycle/PE)."""
        return self.latency(Workload.from_flit_load(flit_load, message_flits))

    def zero_load_latency(self, message_flits: int) -> float:
        """The contention-free limit ``s/f + D_bar - 1``."""
        return float(message_flits) + self.average_distance - 1.0

    def is_stable(self, workload: Workload) -> bool:
        """True when the model admits a steady state at ``workload``."""
        solution = self.solve(workload)
        if solution.saturated:
            return False
        # Eq. 26: the source must keep up with its own offered rate.
        return (
            workload.injection_rate * solution.injection_service < 1.0
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"ButterflyFatTreeModel(N={self.num_processors}, levels={self.levels}, "
            f"variant={self.variant.label!r}, D_bar={self.average_distance:.4f})"
        )
