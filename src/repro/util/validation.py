"""Argument validation helpers.

These raise :class:`repro.errors.ConfigurationError` with uniform messages so
that invalid parameters are reported consistently across the library.
"""

from __future__ import annotations

import math
from typing import Any

from ..errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_power_of",
    "exact_exponent",
    "is_zero",
]


def is_zero(value: Any, *, tol: float = 0.0) -> Any:
    """Intention-revealing zero test for computed rates and loads.

    With the default ``tol=0.0`` this is the *exact* sentinel guard the
    queueing hot paths use (``rho == 0.0`` short-circuits the wait formulas
    without perturbing any nonzero result — the solvers' outputs must stay
    bit-identical).  A positive ``tol`` turns it into a tolerance test.
    Works elementwise on NumPy arrays (returns a boolean array).
    """
    if tol:
        return abs(value) <= tol
    return value == 0.0


def check_positive(name: str, value: float) -> float:
    """Ensure ``value`` is a finite number strictly greater than zero."""
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Ensure ``value`` is a finite number greater than or equal to zero."""
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value >= 0):
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    if not (isinstance(value, (int, float)) and 0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_power_of(name: str, value: int, base: int) -> int:
    """Ensure ``value`` is a positive integer power of ``base`` (>= base**1).

    Returns the exponent ``e`` such that ``base ** e == value``.
    """
    if not isinstance(value, int) or value < base:
        raise ConfigurationError(f"{name} must be an integer power of {base} (>= {base}), got {value!r}")
    e = 0
    v = value
    while v > 1:
        if v % base != 0:
            raise ConfigurationError(f"{name} must be an integer power of {base}, got {value!r}")
        v //= base
        e += 1
    return e


def exact_exponent(base: int, value: int) -> int | None:
    """``e >= 1`` with ``base ** e == value``, or None when no such exponent.

    The non-raising companion of :func:`check_power_of`, shared by the CLI's
    size-axis mapping and the Scenario family-parameter derivation.
    """
    if not isinstance(base, int) or not isinstance(value, int):
        return None
    if base < 2 or value < base:
        return None
    e, v = 0, value
    while v % base == 0:
        v //= base
        e += 1
    return e if v == 1 else None
