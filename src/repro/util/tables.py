"""Plain-text rendering of result tables and curves.

Experiment harnesses and benchmarks emit their tables through
:func:`format_table`; examples use :func:`ascii_curve` to sketch
latency-versus-load curves in a terminal without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["format_table", "ascii_curve"]


def _render_cell(value: object, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned monospace table.

    Floats are formatted with ``floatfmt``; ``None`` renders as ``-``;
    infinities render as ``inf``.  Returns the table as a single string
    (no trailing newline).
    """
    str_rows = [[_render_cell(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_curve(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Draw one or more (x, y) series as an ASCII scatter plot.

    Non-finite y values are skipped (a saturated model point simply does not
    appear).  Each series is drawn with its own marker character.
    """
    markers = "*o+x#@%&"
    pts: list[tuple[float, float, str]] = []
    for idx, (name, ys) in enumerate(series.items()):
        m = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            if math.isfinite(x) and math.isfinite(y):
                pts.append((x, y, m))
    if not pts:
        return "(no finite points)"
    x_min = min(p[0] for p in pts)
    x_max = max(p[0] for p in pts)
    y_min = min(p[1] for p in pts)
    y_max = max(p[1] for p in pts)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, m in pts:
        col = min(width - 1, int((x - x_min) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = m
    lines = [f"{y_label}  [{y_min:.4g} .. {y_max:.4g}]"]
    lines += ["  |" + "".join(r) for r in grid]
    lines.append("  +" + "-" * width)
    lines.append(f"   {x_label}  [{x_min:.4g} .. {x_max:.4g}]")
    legend = "   legend: " + "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
