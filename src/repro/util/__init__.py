"""Shared numerical and infrastructure helpers.

Submodules
----------
``fixedpoint``
    Damped fixed-point iteration used by the generic channel-graph solver.
``rng``
    Reproducible random-stream spawning built on :class:`numpy.random.SeedSequence`.
``stats``
    Online moment accumulators and confidence intervals for simulation output.
``tables``
    Plain-text table and sparkline rendering for experiment reports.
``validation``
    Small argument-checking helpers with consistent error messages.
"""

from .fixedpoint import FixedPointResult, fixed_point
from .rng import spawn_rngs, spawn_seeds
from .stats import OnlineStats, mean_confidence_interval
from .tables import format_table, ascii_curve
from .validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_power_of,
    exact_exponent,
    is_zero,
)

__all__ = [
    "FixedPointResult",
    "fixed_point",
    "spawn_rngs",
    "spawn_seeds",
    "OnlineStats",
    "mean_confidence_interval",
    "format_table",
    "ascii_curve",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_power_of",
    "exact_exponent",
    "is_zero",
]
