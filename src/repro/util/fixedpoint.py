"""Damped fixed-point iteration.

The generic wormhole model (Eq. 11 of the paper) resolves channel service
times iteratively: on acyclic channel graphs a single reverse sweep suffices,
but on cyclic graphs (k-ary n-cubes with wraparound, or any network whose
channel-dependency graph has loops) the recursion must be iterated to a fixed
point.  This module provides the shared solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConvergenceError
from ..obs.metrics import METRICS

__all__ = ["FixedPointResult", "fixed_point", "fixed_point_batch"]


def _record_solve(iterations: int, residual: float) -> None:
    """Convergence telemetry of one completed solve (no-op when disabled)."""
    if not METRICS.enabled:
        return
    METRICS.add("fixed_point.solves")
    METRICS.observe("fixed_point.iterations", float(iterations))
    if math.isfinite(residual):
        METRICS.observe("fixed_point.residual", residual)


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point iteration.

    Attributes
    ----------
    value:
        The converged vector.
    iterations:
        Number of iterations performed.
    residual:
        Final infinity-norm change between successive iterates.
    converged:
        True when the residual dropped below the tolerance.  (The solver
        raises on non-convergence unless ``allow_divergence`` is set, in
        which case this flag is False and ``value`` holds the last iterate.)
    """

    value: np.ndarray
    iterations: int
    residual: float
    converged: bool


def fixed_point(
    func: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    damping: float = 1.0,
    allow_divergence: bool = False,
) -> FixedPointResult:
    """Iterate ``x <- (1-d)*x + d*func(x)`` until the change is below ``tol``.

    Parameters
    ----------
    func:
        The map whose fixed point is sought.  May return ``inf`` entries;
        when an iterate becomes non-finite the iteration stops immediately
        and the (non-finite) iterate is returned with ``converged=True`` —
        this is how channel-graph solvers signal saturation, and ``inf`` is a
        legitimate fixed point of a monotone queueing recursion.
    x0:
        Starting vector.
    tol:
        Convergence threshold on the infinity norm of the update.
    max_iter:
        Iteration budget; exceeded budget raises :class:`ConvergenceError`
        unless ``allow_divergence``.
    damping:
        Relaxation factor in (0, 1]; values below 1 stabilise oscillating
        recursions.
    """
    if not (0.0 < damping <= 1.0):
        raise ValueError(f"damping must be in (0, 1], got {damping!r}")
    x = np.asarray(x0, dtype=float).copy()
    residual = np.inf
    worst = None
    for it in range(1, max_iter + 1):
        fx = np.asarray(func(x), dtype=float)
        if not np.all(np.isfinite(fx)):
            # Saturation: propagate the non-finite iterate as a terminal state.
            _record_solve(it, np.inf)
            return FixedPointResult(value=fx, iterations=it, residual=np.inf, converged=True)
        new = (1.0 - damping) * x + damping * fx
        update = np.abs(new - x)
        residual = float(np.max(update)) if new.size else 0.0
        worst = int(np.argmax(update)) if new.size else None
        x = new
        if residual <= tol:
            _record_solve(it, residual)
            return FixedPointResult(value=x, iterations=it, residual=residual, converged=True)
    if allow_divergence:
        _record_solve(max_iter, residual)
        return FixedPointResult(value=x, iterations=max_iter, residual=residual, converged=False)
    METRICS.add("fixed_point.exhausted")
    raise ConvergenceError(
        f"fixed point not reached after {max_iter} iterations "
        f"(residual {residual:.3e}, worst component {worst})",
        iterations=max_iter,
        residual=residual,
        worst_component=worst,
    )


def fixed_point_batch(
    func: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    damping: float = 1.0,
    allow_divergence: bool = False,
) -> FixedPointResult:
    """Column-batched fixed point: one independent iteration per column.

    ``x0`` has shape ``(S, K)`` — ``S`` state components solved jointly for
    each of ``K`` independent operating points — and ``func`` maps the full
    matrix to a matrix of the same shape.  Unlike :func:`fixed_point`, a
    non-finite entry does not end the whole iteration: the offending
    *column* is frozen at ``inf`` (per-point saturation) and excluded from
    the residual, while the remaining columns keep iterating until every
    active column's update drops below ``tol``.

    ``func`` must tolerate ``inf`` columns in its input (the queueing maps
    used here do: a diverged service time yields diverged waits).
    """
    if not (0.0 < damping <= 1.0):
        raise ValueError(f"damping must be in (0, 1], got {damping!r}")
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 2:
        raise ValueError(f"x0 must be 2-D (states, points), got shape {x.shape}")
    n_points = x.shape[1]
    active = np.ones(n_points, dtype=bool)
    residual = np.inf
    worst = None
    for it in range(1, max_iter + 1):
        fx = np.asarray(func(x), dtype=float)
        diverged = active & ~np.all(np.isfinite(fx), axis=0)
        if np.any(diverged):
            x[:, diverged] = np.inf
            active &= ~diverged
        if not np.any(active):
            _record_solve(it, 0.0)
            return FixedPointResult(value=x, iterations=it, residual=0.0, converged=True)
        new = (1.0 - damping) * x[:, active] + damping * fx[:, active]
        update = np.abs(new - x[:, active])
        residual = float(np.max(update)) if new.size else 0.0
        # Worst state component (row) over the still-active points.
        worst = int(np.argmax(np.max(update, axis=1))) if new.size else None
        x[:, active] = new
        if residual <= tol:
            _record_solve(it, residual)
            return FixedPointResult(value=x, iterations=it, residual=residual, converged=True)
    if allow_divergence:
        _record_solve(max_iter, residual)
        return FixedPointResult(value=x, iterations=max_iter, residual=residual, converged=False)
    METRICS.add("fixed_point.exhausted")
    raise ConvergenceError(
        f"batched fixed point not reached after {max_iter} iterations "
        f"(residual {residual:.3e}, worst component {worst}, "
        f"active points {int(np.sum(active))}/{n_points})",
        iterations=max_iter,
        residual=residual,
        worst_component=worst,
    )
