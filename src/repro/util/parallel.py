"""Process-level parallelism for embarrassingly parallel sweeps.

Latency-vs-load sweeps simulate independent operating points, so they
parallelize trivially across processes.  :func:`parallel_map` wraps
``multiprocessing`` with the conventions this library needs:

* the ``fork`` start method (COW-shared topology objects, no pickling of
  the heavyweight network structures on POSIX);
* deterministic output order (results align with the input order
  regardless of completion order);
* graceful serial fallback for ``processes <= 1``, tiny inputs, or
  platforms without ``fork`` — results are bit-identical either way
  because every task carries its own seeded RNG stream.

The division of labour with the batch solver engine: *model* sweeps batch
the whole load grid inside one process (one NumPy pass, see
:mod:`repro.core.batch`), while *simulator* sweeps — whose cost is
per-point — fan the grid out across worker processes with
:func:`parallel_map` (``chunksize`` trades dispatch overhead against
dynamic load balance).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    processes: int = 1,
    chunksize: int = 1,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across worker processes.

    Parameters
    ----------
    func:
        A picklable callable (module-level function or functools.partial
        of one); executed once per item.
    items:
        Work list; results are returned in the same order.
    processes:
        Worker-process count.  ``<= 1`` (or fewer items than 2) runs
        serially in-process.
    chunksize:
        Forwarded to ``Pool.map`` for batching.
    """
    items = list(items)
    if processes <= 1 or len(items) < 2:
        return [func(item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [func(item) for item in items]
    with ctx.Pool(processes=min(processes, len(items))) as pool:
        return pool.map(func, items, chunksize=chunksize)
