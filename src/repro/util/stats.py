"""Streaming statistics and confidence intervals for simulation output.

:class:`OnlineStats` implements Welford's numerically stable one-pass
algorithm so simulators can accumulate millions of latency samples without
storing them.  :func:`mean_confidence_interval` provides Student-t intervals
for replicated runs, and :func:`batch_means` implements the classic
batch-means method for a single long run with autocorrelated samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["OnlineStats", "mean_confidence_interval", "batch_means"]


@dataclass
class OnlineStats:
    """Welford one-pass accumulator for mean / variance / extremes."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    min: float = field(default=math.inf)
    max: float = field(default=-math.inf)

    def add(self, x: float) -> None:
        """Accumulate a single observation."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def add_many(self, xs: Sequence[float]) -> None:
        """Accumulate a batch of observations."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for fewer than two samples)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 2:
            return math.nan
        return self.std / math.sqrt(self.count)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to both inputs combined."""
        if other.count == 0:
            out = OnlineStats(self.count, self._mean, self._m2, self.min, self.max)
            return out
        if self.count == 0:
            return OnlineStats(other.count, other._mean, other._m2, other.min, other.max)
        n = self.count + other.count
        delta = other._mean - self._mean
        mean = self._mean + delta * other.count / n
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        return OnlineStats(n, mean, m2, min(self.min, other.min), max(self.max, other.max))


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence half-interval for the mean of ``samples``.

    Returns ``(mean, half_width)``.  With fewer than two samples the half
    width is ``inf`` (no variance information).
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        return math.nan, math.inf
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, math.inf
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    tcrit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return mean, tcrit * sem


def batch_means(
    samples: Sequence[float], n_batches: int = 20, confidence: float = 0.95
) -> tuple[float, float]:
    """Batch-means confidence interval for autocorrelated sample streams.

    Splits the (time-ordered) sample stream into ``n_batches`` contiguous
    batches, treats batch averages as approximately independent, and returns
    ``(mean, half_width)``.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size < n_batches * 2:
        return mean_confidence_interval(arr, confidence)
    usable = (arr.size // n_batches) * n_batches
    batches = arr[:usable].reshape(n_batches, -1).mean(axis=1)
    return mean_confidence_interval(batches, confidence)
