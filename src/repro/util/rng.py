"""Reproducible random-number streams.

Simulations spawn many logically independent streams (one per traffic source,
one for arbitration tie-breaking, one per replication).  Deriving them all
from a single :class:`numpy.random.SeedSequence` guarantees independence and
exact reproducibility across runs and platforms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["spawn_rngs", "spawn_seeds"]


def spawn_seeds(seed: int, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seed sequences from ``seed``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return np.random.SeedSequence(seed).spawn(n)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent :class:`numpy.random.Generator` streams."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def replication_seeds(base_seed: int, replications: int) -> Sequence[int]:
    """Derive well-separated integer seeds for replication runs.

    Uses the entropy pool of spawned seed sequences so that replication
    ``i`` of base seed ``s`` never collides with replication ``j`` of base
    seed ``s'`` for small ``s``, ``s'`` (unlike ``base_seed + i``).
    """
    children = spawn_seeds(base_seed, replications)
    return [int(c.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1)) for c in children]
