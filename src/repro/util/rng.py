"""Reproducible random-number streams.

Simulations spawn many logically independent streams (one per traffic source,
one for arbitration tie-breaking, one per replication).  Deriving them all
from a single :class:`numpy.random.SeedSequence` guarantees independence and
exact reproducibility across runs and platforms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["replication_seeds", "spawn_rngs", "spawn_seeds"]


def spawn_seeds(seed: int, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seed sequences from ``seed``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return np.random.SeedSequence(seed).spawn(n)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent :class:`numpy.random.Generator` streams."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def replication_seeds(base_seed: int, replications: int) -> Sequence[int]:
    """Derive well-separated integer seeds for replication runs.

    Uses the entropy pool of spawned seed sequences so that replication
    ``i`` of base seed ``s`` never collides with replication ``j`` of base
    seed ``s'`` for small ``s``, ``s'`` (unlike ``base_seed + i``).  The
    raw 64-bit word is used directly — an earlier ``% (2**63 - 1)`` fold
    was biased and could in principle map two children of one set to the
    same seed.  A within-set collision is still possible in theory
    (birthday bound over 2^64), so the set is checked: colliding entries
    deterministically take later words of their child's entropy stream,
    and the impossible case of a set that cannot be disambiguated raises
    instead of silently correlating two replications.
    """
    children = spawn_seeds(base_seed, replications)
    seeds = [int(c.generate_state(1, dtype=np.uint64)[0]) for c in children]
    for depth in range(2, 10):
        if len(set(seeds)) == len(seeds):
            return seeds
        seen: set[int] = set()
        for i, seed in enumerate(seeds):  # pragma: no cover - 2^-64 event
            if seed in seen:
                seeds[i] = int(children[i].generate_state(depth, dtype=np.uint64)[-1])
            seen.add(seeds[i])
    if len(set(seeds)) != len(seeds):  # pragma: no cover - 2^-64 event
        raise SimulationError(
            f"could not derive {replications} distinct replication seeds "
            f"from base seed {base_seed}"
        )
    return seeds  # pragma: no cover - reached only after a rescue round
