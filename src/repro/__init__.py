"""repro — wormhole-routed network performance models and simulators.

A faithful, tested reproduction of:

    Ronald I. Greenberg and Lee Guan, "An Improved Analytical Model for
    Wormhole Routed Networks with Application to Butterfly Fat-Trees",
    Proc. 1997 International Conference on Parallel Processing (ICPP),
    pages 44-48, IEEE Computer Society Press, August 1997.

Quickstart — the Scenario→Run facade
------------------------------------
State the question once as a declarative :class:`Scenario`; the
``backend`` field selects how it is answered (``model`` — the paper's
scalar engine, ``batch`` — the vectorized engine, ``simulate`` — a
replication set of discrete-event runs, ``baseline`` — the prior-art
model variant):

>>> from repro import Scenario, run
>>> sc = Scenario(num_processors=256, message_flits=32, flit_load=0.02)
>>> r = run(sc)                                # backend="batch" default
>>> r.metrics["point"]["latency"] > 0
True
>>> sim = run(sc.with_backend("simulate"))     # same question, measured

Every answer is a schema-versioned :class:`RunResult` with a lossless
JSON round-trip; a :class:`RunRegistry` persists them as append-only
JSON lines for cross-session queries and diffs (CLI: ``repro run``,
``repro runs list``, ``repro runs diff``).

The lower-level engines remain available for advanced use (model
classes, stage graphs, simulators, the design-space explorer).  The old
top-level convenience functions (``latency_sweep``,
``saturation_injection_rate``, ``load_grid_to_saturation``,
``run_replications``, ``simulated_latency_curve``, ``explore``) still
work but are deprecated in favour of the facade — importing them from
their home modules (``repro.core``, ``repro.simulation``,
``repro.design``) keeps them warning-free.

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
reproduction of every table and figure in the paper's evaluation.
"""

import functools as _functools
import warnings as _warnings

from .config import SimConfig, Workload
from .core import (
    BatchSolution,
    BftSolution,
    ButterflyFatTreeModel,
    ChannelGraphModel,
    EntryPoint,
    GeneralizedFatTreeModel,
    LatencyCurve,
    ModelVariant,
    SaturationResult,
    Stage,
    Transition,
    bft_stage_graph,
    generalized_fattree_stage_graph,
    hypercube_stage_graph,
)
from .core import latency_sweep as _latency_sweep
from .core import load_grid_to_saturation as _load_grid_to_saturation
from .core import saturation_flit_load as _saturation_flit_load
from .core import saturation_injection_rate as _saturation_injection_rate
from .design import (
    DesignSpace,
    ExplorationResult,
    FamilySpace,
    LinearCostModel,
    Requirements,
    bft_space,
    generalized_fattree_space,
    hypercube_space,
    kary_ncube_space,
)
from .design import explore as _explore
from .errors import (
    ConfigurationError,
    ConvergenceError,
    RegistryError,
    ReproError,
    RoutingError,
    SaturatedError,
    SchemaVersionError,
    SimulationError,
    TopologyError,
)
from .runs import (
    SCHEMA_VERSION,
    RunRegistry,
    RunResult,
    Runner,
    Scenario,
    run,
)
from .simulation import (
    BufferedWormholeSimulator,
    EventDrivenWormholeSimulator,
    FlitLevelWormholeSimulator,
    Pattern,
    PoissonTraffic,
    SimulationResult,
    TraceTraffic,
    empirical_saturation,
    simulate,
    simulate_buffered,
    simulate_flit_level,
)
from .simulation import run_replications as _run_replications
from .simulation import simulated_latency_curve as _simulated_latency_curve
from .topology import (
    ButterflyFatTree,
    GeneralizedFatTree,
    Hypercube,
    KaryNCube,
    bft_average_distance,
    bft_nca_level,
)
from .traffic import (
    BitComplementSpec,
    BitReversalSpec,
    BurstyArrivals,
    HotspotSpec,
    PermutationSpec,
    QuadLocalSpec,
    TornadoSpec,
    TrafficSpec,
    TransposeSpec,
    UniformSpec,
    available_patterns,
    bft_traffic_stage_graph,
    hypercube_traffic_stage_graph,
    make_spec,
    pattern_descriptions,
)

__version__ = "2.0.0"


def _deprecated_entry_point(fn, *, replacement: str):
    """Wrap an old top-level entry point with a once-per-call-site warning.

    The warning uses ``stacklevel=2`` so it is attributed to (and
    deduplicated per) the *caller's* file and line — the standard
    warning registry then emits it exactly once per call site under the
    default filter.  The undecorated function remains importable from
    its home module for warning-free use.
    """

    @_functools.wraps(fn)
    def shim(*args, **kwargs):
        _warnings.warn(
            f"repro.{fn.__name__} is deprecated; {replacement} "
            "(see the migration table in README.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return fn(*args, **kwargs)

    shim.__wrapped_entry_point__ = fn
    return shim


latency_sweep = _deprecated_entry_point(
    _latency_sweep,
    replacement="use repro.run(Scenario(backend='batch')) for Figure-3 curves, "
    "or import it from repro.core",
)
load_grid_to_saturation = _deprecated_entry_point(
    _load_grid_to_saturation,
    replacement="Scenario derives its own grid (sweep_points/sweep_fraction), "
    "or import it from repro.core",
)
saturation_injection_rate = _deprecated_entry_point(
    _saturation_injection_rate,
    replacement="use repro.run(...).metrics['saturation'], "
    "or import it from repro.core",
)
saturation_flit_load = _deprecated_entry_point(
    _saturation_flit_load,
    replacement="use repro.run(...).metrics['saturation']['flit_load'], "
    "or import it from repro.core",
)
run_replications = _deprecated_entry_point(
    _run_replications,
    replacement="use repro.run(Scenario(backend='simulate')), "
    "or import it from repro.simulation",
)
simulated_latency_curve = _deprecated_entry_point(
    _simulated_latency_curve,
    replacement="use repro.run(Scenario(backend='simulate')) per operating "
    "point, or import it from repro.simulation",
)
explore = _deprecated_entry_point(
    _explore,
    replacement="call it via repro.design.explore (unchanged engine); runs "
    "persist through the registry",
)

__all__ = [
    "SimConfig",
    "Workload",
    # Scenario→Run facade and registry
    "Scenario",
    "Runner",
    "run",
    "RunResult",
    "RunRegistry",
    "SCHEMA_VERSION",
    # analytical models and engines
    "BatchSolution",
    "BftSolution",
    "ButterflyFatTreeModel",
    "ChannelGraphModel",
    "EntryPoint",
    "LatencyCurve",
    "ModelVariant",
    "SaturationResult",
    "Stage",
    "Transition",
    "bft_stage_graph",
    "generalized_fattree_stage_graph",
    "hypercube_stage_graph",
    "latency_sweep",
    "load_grid_to_saturation",
    "saturation_flit_load",
    "saturation_injection_rate",
    # design-space exploration
    "DesignSpace",
    "ExplorationResult",
    "FamilySpace",
    "LinearCostModel",
    "Requirements",
    "bft_space",
    "explore",
    "generalized_fattree_space",
    "hypercube_space",
    "kary_ncube_space",
    # errors
    "ConfigurationError",
    "ConvergenceError",
    "RegistryError",
    "ReproError",
    "RoutingError",
    "SaturatedError",
    "SchemaVersionError",
    "SimulationError",
    "TopologyError",
    # topologies
    "ButterflyFatTree",
    "GeneralizedFatTree",
    "GeneralizedFatTreeModel",
    "Hypercube",
    "KaryNCube",
    "bft_average_distance",
    "bft_nca_level",
    # traffic scenarios
    "BitComplementSpec",
    "BitReversalSpec",
    "BurstyArrivals",
    "HotspotSpec",
    "PermutationSpec",
    "QuadLocalSpec",
    "TornadoSpec",
    "TrafficSpec",
    "TransposeSpec",
    "UniformSpec",
    "available_patterns",
    "bft_traffic_stage_graph",
    "hypercube_traffic_stage_graph",
    "make_spec",
    "pattern_descriptions",
    # simulators
    "BufferedWormholeSimulator",
    "EventDrivenWormholeSimulator",
    "FlitLevelWormholeSimulator",
    "Pattern",
    "simulate_buffered",
    "PoissonTraffic",
    "SimulationResult",
    "TraceTraffic",
    "empirical_saturation",
    "run_replications",
    "simulate",
    "simulate_flit_level",
    "simulated_latency_curve",
    "__version__",
]
