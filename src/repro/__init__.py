"""repro — wormhole-routed network performance models and simulators.

A faithful, tested reproduction of:

    Ronald I. Greenberg and Lee Guan, "An Improved Analytical Model for
    Wormhole Routed Networks with Application to Butterfly Fat-Trees",
    Proc. 1997 International Conference on Parallel Processing (ICPP),
    pages 44-48, IEEE Computer Society Press, August 1997.

Quickstart
----------
>>> from repro import ButterflyFatTreeModel, Workload
>>> model = ButterflyFatTreeModel(256)
>>> wl = Workload.from_flit_load(0.02, message_flits=32)
>>> latency = model.latency(wl)          # cycles, inf past saturation

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
reproduction of every table and figure in the paper's evaluation.
"""

from .config import SimConfig, Workload
from .core import (
    BatchSolution,
    BftSolution,
    ButterflyFatTreeModel,
    ChannelGraphModel,
    EntryPoint,
    GeneralizedFatTreeModel,
    LatencyCurve,
    ModelVariant,
    SaturationResult,
    Stage,
    Transition,
    bft_stage_graph,
    generalized_fattree_stage_graph,
    hypercube_stage_graph,
    latency_sweep,
    load_grid_to_saturation,
    saturation_flit_load,
    saturation_injection_rate,
)
from .design import (
    DesignSpace,
    ExplorationResult,
    FamilySpace,
    LinearCostModel,
    Requirements,
    bft_space,
    explore,
    generalized_fattree_space,
    hypercube_space,
    kary_ncube_space,
)
from .errors import (
    ConfigurationError,
    ConvergenceError,
    ReproError,
    RoutingError,
    SaturatedError,
    SimulationError,
    TopologyError,
)
from .simulation import (
    BufferedWormholeSimulator,
    EventDrivenWormholeSimulator,
    FlitLevelWormholeSimulator,
    Pattern,
    PoissonTraffic,
    SimulationResult,
    TraceTraffic,
    empirical_saturation,
    run_replications,
    simulate,
    simulate_buffered,
    simulate_flit_level,
    simulated_latency_curve,
)
from .topology import (
    ButterflyFatTree,
    GeneralizedFatTree,
    Hypercube,
    KaryNCube,
    bft_average_distance,
    bft_nca_level,
)
from .traffic import (
    BitComplementSpec,
    BitReversalSpec,
    BurstyArrivals,
    HotspotSpec,
    PermutationSpec,
    QuadLocalSpec,
    TornadoSpec,
    TrafficSpec,
    TransposeSpec,
    UniformSpec,
    available_patterns,
    bft_traffic_stage_graph,
    hypercube_traffic_stage_graph,
    make_spec,
    pattern_descriptions,
)

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "Workload",
    "BatchSolution",
    "BftSolution",
    "ButterflyFatTreeModel",
    "ChannelGraphModel",
    "EntryPoint",
    "LatencyCurve",
    "ModelVariant",
    "SaturationResult",
    "Stage",
    "Transition",
    "bft_stage_graph",
    "generalized_fattree_stage_graph",
    "hypercube_stage_graph",
    "latency_sweep",
    "load_grid_to_saturation",
    "saturation_flit_load",
    "saturation_injection_rate",
    "DesignSpace",
    "ExplorationResult",
    "FamilySpace",
    "LinearCostModel",
    "Requirements",
    "bft_space",
    "explore",
    "generalized_fattree_space",
    "hypercube_space",
    "kary_ncube_space",
    "ConfigurationError",
    "ConvergenceError",
    "ReproError",
    "RoutingError",
    "SaturatedError",
    "SimulationError",
    "TopologyError",
    "ButterflyFatTree",
    "GeneralizedFatTree",
    "GeneralizedFatTreeModel",
    "Hypercube",
    "KaryNCube",
    "bft_average_distance",
    "bft_nca_level",
    "BitComplementSpec",
    "BitReversalSpec",
    "BurstyArrivals",
    "HotspotSpec",
    "PermutationSpec",
    "QuadLocalSpec",
    "TornadoSpec",
    "TrafficSpec",
    "TransposeSpec",
    "UniformSpec",
    "available_patterns",
    "bft_traffic_stage_graph",
    "hypercube_traffic_stage_graph",
    "make_spec",
    "pattern_descriptions",
    "BufferedWormholeSimulator",
    "EventDrivenWormholeSimulator",
    "FlitLevelWormholeSimulator",
    "Pattern",
    "simulate_buffered",
    "PoissonTraffic",
    "SimulationResult",
    "TraceTraffic",
    "empirical_saturation",
    "run_replications",
    "simulate",
    "simulate_flit_level",
    "simulated_latency_curve",
    "__version__",
]
