"""The facade: ``run(scenario)`` / :class:`Runner`.

One call dispatches a :class:`~repro.runs.scenario.Scenario` to its
backend, stamps provenance and timings, and (optionally) persists the
record through a :class:`~repro.runs.registry.RunRegistry` — the same
pipeline whether the question is a latency sweep, a saturation search, a
simulator replication set or a baseline curve.

>>> from repro.runs import Runner, Scenario
>>> runner = Runner()                      # in-memory only
>>> r = runner.run(Scenario(num_processors=16, message_flits=16))
>>> r.metrics["point"]["latency"] > 0
True
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Mapping

from ..obs import METRICS, trace_span
from .backends import execute
from .registry import RunRegistry
from .result import RunResult
from .scenario import Scenario, scenario_key

__all__ = ["Runner", "run", "provenance_stamp"]


def provenance_stamp(*, backend: str) -> dict:
    """Environment fingerprint recorded with every run."""
    from .. import __version__

    return {
        "repro_version": __version__,
        "backend": backend,
        "python": platform.python_version(),
        "platform": sys.platform,
    }


@dataclass
class Runner:
    """Scenario executor with an optional attached registry.

    With a registry attached, every run is persisted automatically unless
    the call says otherwise; without one, runs stay in memory (pass
    ``save=True`` to a registry-less runner to get a clear error instead
    of a silent drop).
    """

    registry: RunRegistry | None = None

    def run(
        self,
        scenario: Scenario,
        *,
        save: bool | None = None,
        extra_provenance: Mapping[str, Any] | None = None,
    ) -> RunResult:
        """Evaluate ``scenario`` and return (and maybe persist) its record.

        ``extra_provenance`` entries (e.g. the ``repro run --check``
        pre-solve report) are merged into the provenance stamp; they must
        be JSON-able since the record may be persisted.
        """
        started = time.perf_counter()
        # Every run collects its own telemetry scope: counters, histograms
        # and span aggregates land in metrics["observability"], so the
        # record carries its convergence/cache/replication story through
        # the JSON codec and `repro runs diff`/`stats` like any metric.
        with METRICS.collect() as telemetry:
            with trace_span(
                f"run/{scenario.backend}",
                topology=scenario.topology,
                num_processors=scenario.num_processors,
            ):
                metrics, timings = execute(scenario)
        metrics = {**metrics, "observability": telemetry.data}
        timings = {**timings, "total_s": time.perf_counter() - started}
        provenance = provenance_stamp(backend=scenario.backend)
        # The content address of the question: exact (and fault-spec-aware)
        # cache lookups key on this, so it is stamped on every record.
        provenance["scenario_key"] = scenario_key(scenario)
        if extra_provenance:
            provenance.update(extra_provenance)
        result = RunResult(
            metrics=metrics,
            scenario=scenario,
            kind="scenario",
            provenance=provenance,
            timings=timings,
            label=scenario.label,
        )
        persist = save if save is not None else self.registry is not None
        if persist:
            if self.registry is None:
                from ..errors import ConfigurationError

                raise ConfigurationError(
                    "save=True requires a Runner with a registry attached"
                )
            self.registry.save(result)
        return result


def run(
    scenario: Scenario,
    *,
    registry: RunRegistry | None = None,
    save: bool | None = None,
) -> RunResult:
    """Evaluate one scenario (module-level convenience over :class:`Runner`)."""
    return Runner(registry=registry).run(scenario, save=save)
