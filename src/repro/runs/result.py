"""Typed, schema-versioned run records with lossless JSON round-trip.

A :class:`RunResult` is the single result shape every backend returns:
the scenario that was asked, the metrics that answer it, provenance
(library version, interpreter, platform) and wall-clock timings.  Records
carry :data:`SCHEMA_VERSION` so the registry can detect incompatible
records written by a different library generation instead of silently
misreading them.

JSON cannot represent ``inf``/``nan``, which saturated operating points
produce routinely, so the codec maps non-finite floats to sentinel
strings (``"__inf__"``, ``"__-inf__"``, ``"__nan__"``) on encode and
restores them on decode — ``RunResult.from_json(r.to_json()) == r`` holds
exactly, including past-saturation curves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import time
from dataclasses import InitVar, dataclass, field
from typing import Any, Callable, Mapping

from ..errors import ConfigurationError, RegistryError, SchemaVersionError
from .scenario import Scenario

__all__ = [
    "SCHEMA_VERSION",
    "RunResult",
    "json_safe",
    "json_restore",
]

#: Bump whenever the record layout changes incompatibly.  Readers refuse
#: records whose version differs (see :meth:`RunResult.from_json`).
SCHEMA_VERSION = 1

_INF = "__inf__"
_NEG_INF = "__-inf__"
_NAN = "__nan__"


def json_safe(obj: Any) -> Any:
    """Recursively encode ``obj`` into strict-JSON-safe values.

    Non-finite floats become sentinel strings; tuples become lists; numpy
    scalars and arrays are demoted to Python floats/lists via their
    ``item``/``tolist`` protocols.  Mapping keys are coerced to ``str``.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            return _NAN
        if math.isinf(obj):
            return _INF if obj > 0 else _NEG_INF
        return obj
    if isinstance(obj, Mapping):
        return {str(k): json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in obj]
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):  # numpy arrays and scalars
        return json_safe(tolist())
    item = getattr(obj, "item", None)
    if callable(item):
        return json_safe(item())
    raise ConfigurationError(
        f"value of type {type(obj).__name__} is not JSON-serializable: {obj!r}"
    )


def json_restore(obj: Any) -> Any:
    """Invert :func:`json_safe` (sentinel strings back to floats)."""
    if isinstance(obj, str):
        if obj == _INF:
            return math.inf
        if obj == _NEG_INF:
            return -math.inf
        if obj == _NAN:
            return math.nan
        return obj
    if isinstance(obj, dict):
        return {k: json_restore(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [json_restore(v) for v in obj]
    return obj


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True, eq=False)
class RunResult:
    """One persisted evaluation: inputs, metrics, provenance, timings.

    ``kind`` distinguishes scenario-driven records (``"scenario"``, the
    output of :func:`repro.runs.run`) from free-form ones such as the
    benchmark baseline (``"bench"``) and recorded design-space searches
    (``"exploration"``, whose ``metrics["exploration"]`` block holds the
    feasible/Pareto frontier), which carry metrics but no scenario.

    Equality is defined over the canonical JSON form, so ``nan`` metric
    values compare equal to themselves after a round trip (plain float
    comparison would make any record containing ``nan`` unequal to its
    own deserialization).

    ``clock`` is an init-only seam for the creation timestamp: when
    ``created_at`` is unset, it is stamped from ``clock()`` (defaulting to
    ``time.time``).  Tests pass a deterministic clock instead of sleeping
    or monkeypatching the time module.
    """

    metrics: dict
    scenario: Scenario | None = None
    kind: str = "scenario"
    provenance: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    label: str = ""
    created_at: float = 0.0
    run_id: str = ""
    schema_version: int = SCHEMA_VERSION
    clock: InitVar[Callable[[], float] | None] = None

    def __post_init__(self, clock: Callable[[], float] | None) -> None:
        if self.kind not in ("scenario", "bench", "exploration"):
            raise ConfigurationError(f"unknown RunResult kind {self.kind!r}")
        if self.kind == "scenario" and self.scenario is None:
            raise ConfigurationError("scenario records require a Scenario")
        if not self.created_at:
            object.__setattr__(self, "created_at", (clock or time.time)())
        if not self.run_id:
            digest = hashlib.sha256(
                _canonical(
                    [
                        self.kind,
                        self.scenario.to_json() if self.scenario else None,
                        json_safe(self.metrics),
                        self.created_at,
                    ]
                ).encode()
            ).hexdigest()
            object.__setattr__(self, "run_id", f"run-{digest[:12]}")

    # --- equality over the canonical form ---------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunResult):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __hash__(self) -> int:
        return hash(_canonical(self.to_json()))

    # --- serialization -----------------------------------------------------------

    def to_json(self) -> dict:
        """Strict-JSON dict (no non-finite floats; see module docstring)."""
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "created_at": self.created_at,
            "scenario": self.scenario.to_json() if self.scenario else None,
            "metrics": json_safe(self.metrics),
            "provenance": json_safe(self.provenance),
            "timings": json_safe(self.timings),
        }

    def to_json_str(self) -> str:
        """One-line canonical JSON (the registry's on-disk record form)."""
        return _canonical(self.to_json())

    @classmethod
    def from_json(cls, data: Mapping[str, Any] | str) -> "RunResult":
        """Rebuild a record; refuses records from another schema generation."""
        if isinstance(data, str):
            data = json.loads(data)
        if not isinstance(data, Mapping):
            raise ConfigurationError("RunResult.from_json expects a dict or str")
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"record has schema_version={version!r} but this library reads "
                f"version {SCHEMA_VERSION}; regenerate the run or upgrade"
            )
        scenario = data.get("scenario")
        try:
            created_at = float(data["created_at"])
            run_id = str(data["run_id"])
        except KeyError as exc:
            # Hand-merged/truncated registry lines can be valid JSON yet
            # structurally incomplete; keep the error typed and one-line.
            raise RegistryError(
                f"run record is missing required field {exc.args[0]!r}"
            ) from exc
        return cls(
            metrics=json_restore(dict(data.get("metrics", {}))),
            scenario=Scenario.from_json(scenario) if scenario else None,
            kind=data.get("kind", "scenario"),
            provenance=json_restore(dict(data.get("provenance", {}))),
            timings=json_restore(dict(data.get("timings", {}))),
            label=data.get("label", ""),
            created_at=created_at,
            run_id=run_id,
        )

    # --- convenience -------------------------------------------------------------

    @classmethod
    def for_metrics(
        cls, metrics: Mapping[str, Any], *, kind: str = "bench", label: str = ""
    ) -> "RunResult":
        """Wrap a free-form metrics mapping (e.g. a benchmark report)."""
        from .runner import provenance_stamp

        return cls(
            metrics=dict(metrics),
            scenario=None,
            kind=kind,
            label=label,
            provenance=provenance_stamp(backend=kind),
        )

    def summary(self) -> str:
        """One-line digest for listings."""
        if self.scenario is not None:
            sc = self.scenario
            head = (
                f"{sc.backend:>8} {sc.topology} N={sc.num_processors} "
                f"f={sc.message_flits} {sc.pattern}"
            )
            point = self.metrics.get("point") or {}
            lat = point.get("latency")
            if isinstance(lat, (int, float)):
                head += f" latency={lat:.4g}"
            sat = self.metrics.get("saturation") or {}
            if isinstance(sat.get("flit_load"), (int, float)):
                head += f" sat={sat['flit_load']:.4g}"
        else:
            head = f"{self.kind:>8} {self.label or '(unlabelled)'}"
        return f"{self.run_id}  {head}"
