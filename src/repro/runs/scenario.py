"""Declarative scenarios: the one record that states a network question.

A :class:`Scenario` pins down *what* is being asked — topology, operating
point, message length, traffic pattern, and measurement protocol — while
the ``backend`` field selects *how* it is answered:

* ``model``    — the paper's analytical model, solved point by point
  (the reference scalar engine);
* ``batch``    — the same model through the vectorized batch engine
  (bit-identical numbers, one NumPy pass per curve);
* ``simulate`` — a replication set of discrete-event simulations;
* ``baseline`` — the prior-art model variant (independent M/G/1 links,
  no blocking correction), for paper-style comparisons.

Because every field is a plain JSON-able value (no live model or
simulator objects), a scenario round-trips losslessly through
:meth:`Scenario.to_json` / :meth:`Scenario.from_json` and can be replayed
by any later session — the foundation the run registry builds on.

>>> from repro.runs import Scenario, run
>>> sc = Scenario(num_processors=64, message_flits=16, backend="batch")
>>> result = run(sc)
>>> result.metrics["saturation"]["flit_load"] > 0
True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, cast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultSpec

from ..config import SimConfig, Workload
from ..errors import ConfigurationError
from ..traffic.spec import TrafficSpec, available_patterns, make_spec
from ..util.validation import exact_exponent

__all__ = ["BACKENDS", "SIMULATORS", "TOPOLOGIES", "Scenario", "scenario_key"]

#: Evaluation backends a scenario can dispatch to.
BACKENDS = ("model", "batch", "simulate", "baseline")

#: Simulator engines the ``simulate`` backend accepts.
SIMULATORS = ("event", "flit", "buffered")

#: Topology families the facade evaluates end to end — every family goes
#: through all four backends (the names double as design-family keys, see
#: :mod:`repro.design.families`).
TOPOLOGIES = ("bft", "generalized-fattree", "hypercube", "kary-ncube")

#: The scenario fields that carry per-family structural parameters, and
#: which of them each family accepts.  Fields a family does not accept
#: must stay ``None``; accepted ones are normalized eagerly (defaults
#: filled in, missing values derived from ``num_processors``) so the
#: JSON form is canonical and round-trips exactly.
FAMILY_PARAM_FIELDS = ("children", "parents", "levels", "dimension", "radix")
_FAMILY_FIELDS: dict[str, tuple[str, ...]] = {
    "bft": (),
    "generalized-fattree": ("children", "parents", "levels"),
    "hypercube": ("dimension",),
    "kary-ncube": ("radix",),
}


def _normalized_family_fields(scenario: "Scenario") -> dict[str, int | None]:
    """Resolve the per-family parameter fields of one scenario.

    Returns the canonical value of every field in
    :data:`FAMILY_PARAM_FIELDS`: ``None`` for fields the family does not
    accept (raising if the caller set one), defaults filled in and missing
    values derived from ``num_processors`` for the fields it does.
    """
    topology, n = scenario.topology, scenario.num_processors
    allowed = _FAMILY_FIELDS[topology]
    for name in FAMILY_PARAM_FIELDS:
        value = getattr(scenario, name)
        if value is None:
            continue
        if name not in allowed:
            raise ConfigurationError(
                f"parameter {name!r} does not apply to topology {topology!r} "
                f"(its parameters: {allowed or '()'})"
            )
        if not isinstance(value, int) or isinstance(value, bool):
            raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    out: dict[str, int | None] = {name: None for name in FAMILY_PARAM_FIELDS}
    if topology == "generalized-fattree":
        children = scenario.children if scenario.children is not None else 4
        parents = scenario.parents if scenario.parents is not None else 2
        levels = scenario.levels
        if levels is None:
            levels = exact_exponent(children, n)
            if levels is None:
                raise ConfigurationError(
                    f"num_processors={n} is not a power of children={children}; "
                    "give levels explicitly or pick a matching size"
                )
        elif children**levels != n:
            raise ConfigurationError(
                f"num_processors={n} != children**levels = {children}**{levels}"
            )
        out.update(children=children, parents=parents, levels=levels)
    elif topology == "hypercube":
        derived = exact_exponent(2, n)
        if derived is None:
            raise ConfigurationError(
                f"num_processors={n} is not a power of two (hypercube sizes are)"
            )
        if scenario.dimension is not None and scenario.dimension != derived:
            raise ConfigurationError(
                f"num_processors={n} != 2**dimension = 2**{scenario.dimension}"
            )
        out.update(dimension=derived)
    elif topology == "kary-ncube":
        radix = scenario.radix if scenario.radix is not None else 4
        if exact_exponent(radix, n) is None:
            raise ConfigurationError(
                f"num_processors={n} is not a power of radix={radix}; "
                "the torus needs num_processors = radix ** dimensions"
            )
        out.update(radix=radix)
    return out


#: Version prefix of :func:`scenario_key`.  Bump it whenever the key
#: derivation changes (fields added to the digest, canonicalization
#: altered), so stale cache entries miss instead of aliasing: a key is a
#: *content address* and two library generations must never produce the
#: same key for semantically different questions.
SCENARIO_KEY_VERSION = "sk1"


def scenario_key(scenario: "Scenario") -> str:
    """Content address of one scenario: what is asked, never who asked.

    The key is the sha256 of the canonical (sorted-key, separator-free)
    JSON form of the scenario with the free-form ``label`` removed — the
    label tags registry records, it does not change the question — so two
    scenarios asking the same thing hash identically no matter how they
    were constructed (defaults filled in, family fields derived, fault
    blocks canonicalized: all of that happens eagerly in
    ``Scenario.__post_init__`` before the JSON form exists).  ``backend``
    and the ``faults`` block *are* part of the key: a cache must never
    serve a simulator answer for a model question, nor a nominal answer
    for a degraded fabric.

    **Stability contract.**  The digest input is the versioned canonical
    JSON, so the key is stable across processes, platforms and library
    releases for as long as :data:`SCENARIO_KEY_VERSION` and the
    scenario's JSON schema stay put; any change to either must bump the
    version prefix.  The registry stores the key in every record's
    provenance (``provenance["scenario_key"]``), which is what makes
    served-from-cache lookups exact.
    """
    data = scenario.to_json()
    data.pop("label", None)
    canonical = json.dumps(
        {"version": SCENARIO_KEY_VERSION, "scenario": data},
        sort_keys=True,
        separators=(",", ":"),
    )
    return f"{SCENARIO_KEY_VERSION}-{hashlib.sha256(canonical.encode()).hexdigest()}"


@dataclass(frozen=True)
class Scenario:
    """One declarative network question (see the module docstring).

    Attributes
    ----------
    topology:
        Topology family, one of :data:`TOPOLOGIES`.
    num_processors:
        Machine size ``N``; each family's structural constraints are
        validated eagerly (powers of four for the butterfly fat-tree,
        ``children ** levels`` for generalized fat-trees, powers of two
        for the hypercube, ``radix ** m`` for the torus).
    children, parents, levels:
        ``generalized-fattree`` structure (block radix, up-links per
        switch, tree height).  ``children``/``parents`` default to the
        4-2 shape; a missing ``levels`` is derived from
        ``num_processors = children ** levels``.
    dimension:
        ``hypercube`` dimension ``d``; derived from
        ``num_processors = 2 ** d`` when omitted.
    radix:
        ``kary-ncube`` ring length ``k`` (default 4); the dimension count
        follows from ``num_processors = radix ** m``.
    message_flits:
        Worm length in flits.
    flit_load:
        The operating point in flits/cycle/PE (Figure-3 units); point
        metrics and simulator replications are taken here.
    pattern:
        Traffic-scenario name from the registry (see ``repro patterns``).
    pattern_params:
        Extra spec parameters (e.g. ``hotspot_fraction``); stored as a
        plain mapping so the scenario stays JSON-able.
    backend:
        One of :data:`BACKENDS`.
    sweep_points:
        Grid size of the latency-vs-load curve the analytical backends
        produce; ``0`` skips the curve.  The simulate backend never
        sweeps implicitly (simulation cost is per point).
    sweep_fraction:
        The curve's top grid point as a fraction of the backend's own
        saturation load.
    flit_loads:
        Optional explicit load grid (overrides the derived one).
    simulator, replications, warmup_cycles, measure_cycles, seed:
        Measurement protocol of the ``simulate`` backend.
    label:
        Free-form tag recorded with the run (useful for registry queries).
    faults:
        Optional fault specification — a
        :class:`~repro.faults.FaultSpec` or its JSON mapping form —
        evaluated by *every* backend: the analytical backends solve the
        degraded stage graph of the fault-masked topology, and the
        simulate backend routes the same mask.  Stored in canonical JSON
        form (``None`` when the spec kills nothing), so scenarios with
        and without trivial fault blocks compare equal.
    """

    topology: str = "bft"
    num_processors: int = 256
    children: int | None = None
    parents: int | None = None
    levels: int | None = None
    dimension: int | None = None
    radix: int | None = None
    message_flits: int = 32
    flit_load: float = 0.02
    pattern: str = "uniform"
    pattern_params: Mapping[str, Any] = field(default_factory=dict)
    backend: str = "batch"
    sweep_points: int = 8
    sweep_fraction: float = 0.98
    flit_loads: tuple[float, ...] | None = None
    simulator: str = "event"
    replications: int = 3
    warmup_cycles: float = 3_000.0
    measure_cycles: float = 9_000.0
    seed: int = 1
    label: str = ""
    faults: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; supported: {TOPOLOGIES}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; supported: {BACKENDS}"
            )
        if self.simulator not in SIMULATORS:
            raise ConfigurationError(
                f"unknown simulator {self.simulator!r}; supported: {SIMULATORS}"
            )
        if self.pattern not in available_patterns():
            raise ConfigurationError(
                f"unknown pattern {self.pattern!r}; see repro.available_patterns()"
            )
        if not isinstance(self.num_processors, int) or self.num_processors < 2:
            raise ConfigurationError("num_processors must be an integer >= 2")
        if not isinstance(self.message_flits, int) or self.message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        if not (self.flit_load >= 0.0):
            raise ConfigurationError("flit_load must be non-negative")
        if self.sweep_points < 0 or self.sweep_points == 1:
            raise ConfigurationError("sweep_points must be 0 (no curve) or >= 2")
        if not (0.0 < self.sweep_fraction < 1.0):
            raise ConfigurationError("sweep_fraction must be in (0, 1)")
        if self.replications < 1:
            raise ConfigurationError("replications must be >= 1")
        # Canonicalize the fault block eagerly: accept a FaultSpec object
        # or its JSON form, validate it, and store the canonical mapping
        # (dropping trivial specs so faultless scenarios compare equal).
        if self.faults is not None:
            from ..faults import FaultSpec

            fault_spec = FaultSpec.from_json(self.faults)
            object.__setattr__(
                self,
                "faults",
                None if fault_spec.is_trivial() else fault_spec.to_json(),
            )
        # Normalize the per-family structural parameters (fill defaults,
        # derive missing values from num_processors, reject fields that do
        # not belong to the family), then let the design-family registry
        # apply the family's own constraints — all eagerly, so an
        # unrealizable topology fails at construction, not mid-run.
        for name, value in _normalized_family_fields(self).items():
            object.__setattr__(self, name, value)
        from ..design.families import design_family

        design_family(self.topology).validate(self.family_params())
        # Freeze the mutable-looking fields so the dataclass stays hashable
        # in spirit and the JSON form is canonical.
        object.__setattr__(self, "pattern_params", dict(self.pattern_params))
        if self.flit_loads is not None:
            loads = tuple(float(x) for x in self.flit_loads)
            if len(loads) == 0:
                raise ConfigurationError("flit_loads must be non-empty when given")
            if any(x < 0 for x in loads):
                raise ConfigurationError("flit_loads must be non-negative")
            object.__setattr__(self, "flit_loads", loads)
        # Instantiating the workload, the spec and (for simulate) the
        # protocol validates the remaining fields eagerly, so an
        # infeasible scenario fails at construction, not mid-run.
        self.workload()
        try:
            spec = self.spec()
        except TypeError as exc:
            # make_spec rejects unknown keyword parameters with TypeError;
            # surface it as the library's typed configuration error.
            raise ConfigurationError(
                f"invalid pattern_params for pattern {self.pattern!r}: {exc}"
            ) from exc
        if spec is not None and spec.name != "uniform":
            from ..design.families import design_family

            if not design_family(self.topology).supports_patterns:
                capable = tuple(
                    t for t in TOPOLOGIES if design_family(t).supports_patterns
                )
                raise ConfigurationError(
                    f"topology {self.topology!r} has no pattern-aware model; "
                    f"pattern {spec.name!r} requires one of the "
                    f"pattern-capable families {capable}"
                )
        if self.backend == "simulate":
            self.sim_config()

    # --- derived objects ---------------------------------------------------------

    def family_params(self) -> dict[str, int]:
        """The design-family parameter assignment this scenario describes.

        The keys match :attr:`~repro.design.families.DesignFamily.param_names`
        of the family named by :attr:`topology`, so the backends (and any
        caller) can resolve evaluators, topologies and hardware through the
        shared family registry.
        """
        # __post_init__ has already normalized the per-family fields to
        # concrete ints, hence the casts from their Optional declarations.
        if self.topology == "bft":
            return {"processors": self.num_processors}
        if self.topology == "generalized-fattree":
            return {
                "children": cast(int, self.children),
                "parents": cast(int, self.parents),
                "levels": cast(int, self.levels),
            }
        if self.topology == "hypercube":
            return {"dimension": cast(int, self.dimension)}
        if self.topology == "kary-ncube":
            radix = cast(int, self.radix)
            return {
                "radix": radix,
                "dimensions": cast(int, exact_exponent(radix, self.num_processors)),
            }
        raise ConfigurationError(  # pragma: no cover - __post_init__ validates
            f"unknown topology {self.topology!r}"
        )

    def workload(self) -> Workload:
        """The operating point as a :class:`~repro.config.Workload`."""
        return Workload.from_flit_load(self.flit_load, self.message_flits)

    def spec(self) -> TrafficSpec | None:
        """The :class:`TrafficSpec`, or None for plain uniform traffic.

        Uniform returns None so the backends keep the closed-form fast
        path (and byte-identical output with the pre-facade entry points).
        """
        if self.pattern == "uniform" and not self.pattern_params:
            return None
        return make_spec(self.pattern, **dict(self.pattern_params))

    def fault_spec(self) -> "FaultSpec | None":
        """The :class:`~repro.faults.FaultSpec`, or None for a nominal run."""
        if self.faults is None:
            return None
        from ..faults import FaultSpec

        return FaultSpec.from_json(self.faults)

    def sim_config(self) -> SimConfig:
        """The measurement protocol of the ``simulate`` backend."""
        return SimConfig(
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            seed=self.seed,
        )

    def with_backend(self, backend: str) -> "Scenario":
        """The same question answered by a different backend."""
        return dataclasses.replace(self, backend=backend)

    def key(self) -> str:
        """The content address of this scenario (see :func:`scenario_key`)."""
        return scenario_key(self)

    def describe(self) -> str:
        """One-line human-readable summary."""
        params = {
            k: getattr(self, k)
            for k in _FAMILY_FIELDS[self.topology]
            if getattr(self, k) is not None
        }
        shape = "" if not params else (
            "[" + ",".join(f"{k}={v}" for k, v in params.items()) + "]"
        )
        fault_note = ""
        spec = self.fault_spec()
        if spec is not None:
            fault_note = f", {spec.describe()}"
        return (
            f"Scenario({self.topology}{shape} N={self.num_processors}, "
            f"{self.message_flits}-flit, load={self.flit_load:g} fl/cyc/PE, "
            f"pattern={self.pattern}, backend={self.backend}{fault_note})"
        )

    # --- serialization -----------------------------------------------------------

    def to_json(self) -> dict:
        """Plain-JSON form (lossless; see :meth:`from_json`)."""
        data = dataclasses.asdict(self)
        data["pattern_params"] = dict(self.pattern_params)
        data["flit_loads"] = (
            list(self.flit_loads) if self.flit_loads is not None else None
        )
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown Scenario fields in record: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if kwargs.get("flit_loads") is not None:
            kwargs["flit_loads"] = tuple(float(x) for x in kwargs["flit_loads"])
        return cls(**kwargs)
