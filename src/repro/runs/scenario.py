"""Declarative scenarios: the one record that states a network question.

A :class:`Scenario` pins down *what* is being asked — topology, operating
point, message length, traffic pattern, and measurement protocol — while
the ``backend`` field selects *how* it is answered:

* ``model``    — the paper's analytical model, solved point by point
  (the reference scalar engine);
* ``batch``    — the same model through the vectorized batch engine
  (bit-identical numbers, one NumPy pass per curve);
* ``simulate`` — a replication set of discrete-event simulations;
* ``baseline`` — the prior-art model variant (independent M/G/1 links,
  no blocking correction), for paper-style comparisons.

Because every field is a plain JSON-able value (no live model or
simulator objects), a scenario round-trips losslessly through
:meth:`Scenario.to_json` / :meth:`Scenario.from_json` and can be replayed
by any later session — the foundation the run registry builds on.

>>> from repro.runs import Scenario, run
>>> sc = Scenario(num_processors=64, message_flits=16, backend="batch")
>>> result = run(sc)
>>> result.metrics["saturation"]["flit_load"] > 0
True
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..config import SimConfig, Workload
from ..errors import ConfigurationError
from ..traffic.spec import TrafficSpec, available_patterns, make_spec

__all__ = ["BACKENDS", "SIMULATORS", "Scenario"]

#: Evaluation backends a scenario can dispatch to.
BACKENDS = ("model", "batch", "simulate", "baseline")

#: Simulator engines the ``simulate`` backend accepts.
SIMULATORS = ("event", "flit", "buffered")

#: Topology families the facade currently evaluates end to end.  The
#: butterfly fat-tree is the only family every backend (analytical,
#: batch, simulator, baseline) supports; the registry keys exist so the
#: scenario schema does not change when more families are wired in.
TOPOLOGIES = ("bft",)


@dataclass(frozen=True)
class Scenario:
    """One declarative network question (see the module docstring).

    Attributes
    ----------
    topology:
        Topology family (currently ``"bft"``).
    num_processors:
        Machine size ``N`` (the family's own constraints apply at run
        time, e.g. powers of four for the fat tree).
    message_flits:
        Worm length in flits.
    flit_load:
        The operating point in flits/cycle/PE (Figure-3 units); point
        metrics and simulator replications are taken here.
    pattern:
        Traffic-scenario name from the registry (see ``repro patterns``).
    pattern_params:
        Extra spec parameters (e.g. ``hotspot_fraction``); stored as a
        plain mapping so the scenario stays JSON-able.
    backend:
        One of :data:`BACKENDS`.
    sweep_points:
        Grid size of the latency-vs-load curve the analytical backends
        produce; ``0`` skips the curve.  The simulate backend never
        sweeps implicitly (simulation cost is per point).
    sweep_fraction:
        The curve's top grid point as a fraction of the backend's own
        saturation load.
    flit_loads:
        Optional explicit load grid (overrides the derived one).
    simulator, replications, warmup_cycles, measure_cycles, seed:
        Measurement protocol of the ``simulate`` backend.
    label:
        Free-form tag recorded with the run (useful for registry queries).
    """

    topology: str = "bft"
    num_processors: int = 256
    message_flits: int = 32
    flit_load: float = 0.02
    pattern: str = "uniform"
    pattern_params: Mapping[str, Any] = field(default_factory=dict)
    backend: str = "batch"
    sweep_points: int = 8
    sweep_fraction: float = 0.98
    flit_loads: tuple[float, ...] | None = None
    simulator: str = "event"
    replications: int = 3
    warmup_cycles: float = 3_000.0
    measure_cycles: float = 9_000.0
    seed: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; supported: {TOPOLOGIES}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; supported: {BACKENDS}"
            )
        if self.simulator not in SIMULATORS:
            raise ConfigurationError(
                f"unknown simulator {self.simulator!r}; supported: {SIMULATORS}"
            )
        if self.pattern not in available_patterns():
            raise ConfigurationError(
                f"unknown pattern {self.pattern!r}; see repro.available_patterns()"
            )
        if not isinstance(self.num_processors, int) or self.num_processors < 2:
            raise ConfigurationError("num_processors must be an integer >= 2")
        if not isinstance(self.message_flits, int) or self.message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        if not (self.flit_load >= 0.0):
            raise ConfigurationError("flit_load must be non-negative")
        if self.sweep_points < 0 or self.sweep_points == 1:
            raise ConfigurationError("sweep_points must be 0 (no curve) or >= 2")
        if not (0.0 < self.sweep_fraction < 1.0):
            raise ConfigurationError("sweep_fraction must be in (0, 1)")
        if self.replications < 1:
            raise ConfigurationError("replications must be >= 1")
        # Freeze the mutable-looking fields so the dataclass stays hashable
        # in spirit and the JSON form is canonical.
        object.__setattr__(self, "pattern_params", dict(self.pattern_params))
        if self.flit_loads is not None:
            loads = tuple(float(x) for x in self.flit_loads)
            if len(loads) == 0:
                raise ConfigurationError("flit_loads must be non-empty when given")
            if any(x < 0 for x in loads):
                raise ConfigurationError("flit_loads must be non-negative")
            object.__setattr__(self, "flit_loads", loads)
        # Instantiating the workload, the spec and (for simulate) the
        # protocol validates the remaining fields eagerly, so an
        # infeasible scenario fails at construction, not mid-run.
        self.workload()
        try:
            self.spec()
        except TypeError as exc:
            # make_spec rejects unknown keyword parameters with TypeError;
            # surface it as the library's typed configuration error.
            raise ConfigurationError(
                f"invalid pattern_params for pattern {self.pattern!r}: {exc}"
            ) from exc
        if self.backend == "simulate":
            self.sim_config()

    # --- derived objects ---------------------------------------------------------

    def workload(self) -> Workload:
        """The operating point as a :class:`~repro.config.Workload`."""
        return Workload.from_flit_load(self.flit_load, self.message_flits)

    def spec(self) -> TrafficSpec | None:
        """The :class:`TrafficSpec`, or None for plain uniform traffic.

        Uniform returns None so the backends keep the closed-form fast
        path (and byte-identical output with the pre-facade entry points).
        """
        if self.pattern == "uniform" and not self.pattern_params:
            return None
        return make_spec(self.pattern, **dict(self.pattern_params))

    def sim_config(self) -> SimConfig:
        """The measurement protocol of the ``simulate`` backend."""
        return SimConfig(
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            seed=self.seed,
        )

    def with_backend(self, backend: str) -> "Scenario":
        """The same question answered by a different backend."""
        return dataclasses.replace(self, backend=backend)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Scenario({self.topology} N={self.num_processors}, "
            f"{self.message_flits}-flit, load={self.flit_load:g} fl/cyc/PE, "
            f"pattern={self.pattern}, backend={self.backend})"
        )

    # --- serialization -----------------------------------------------------------

    def to_json(self) -> dict:
        """Plain-JSON form (lossless; see :meth:`from_json`)."""
        data = dataclasses.asdict(self)
        data["pattern_params"] = dict(self.pattern_params)
        data["flit_loads"] = (
            list(self.flit_loads) if self.flit_loads is not None else None
        )
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown Scenario fields in record: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if kwargs.get("flit_loads") is not None:
            kwargs["flit_loads"] = tuple(float(x) for x in kwargs["flit_loads"])
        return cls(**kwargs)
