"""SQLite index over the JSONL run registry: a disposable query cache.

The append-only ``runs.jsonl`` stays the single source of truth (see
:mod:`repro.runs.registry`); a :class:`RunIndex` sits *next to* it as
``runs.index.sqlite``, mapping queryable scenario fields and the
content-addressed ``scenario_key`` to the byte range of each record, so
``query``/``latest``/``load`` over millions of records hit B-tree lookups
plus one ``seek``+``read`` instead of a full-file parse.

The index is a cache, never a second store:

* :meth:`RunIndex.refresh` tail-scans only the bytes appended since the
  last refresh, so keeping the index current is O(new records).
* Any mismatch — index schema bump, record schema bump, a shrunk or
  rewritten records file (``doctor --quarantine``), or a corrupt/absent
  SQLite file — triggers a silent full rebuild from the JSONL.  Deleting
  ``runs.index.sqlite`` is always safe; ``repro runs reindex`` does a
  rebuild explicitly and reports what it indexed.
* Writes go through :meth:`~repro.runs.registry.RunRegistry.save` only;
  the index never appends records itself (lint rule REP007 enforces that
  no other module opens the registry files directly).

Corrupt lines and records from a foreign :data:`~repro.runs.result.SCHEMA_VERSION`
are counted but not indexed — exactly the records a full scan would skip,
which is what keeps indexed and scanned query results identical.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from types import TracebackType
from typing import Any, Iterator

from ..errors import RegistryError
from ..obs.metrics import METRICS
from .registry import RunRegistry
from .result import SCHEMA_VERSION, RunResult

__all__ = ["RunIndex", "INDEX_SCHEMA_VERSION"]

#: Bump whenever the index layout changes; a mismatch forces a rebuild.
INDEX_SCHEMA_VERSION = 1

_INDEX_FILE = "runs.index.sqlite"

_CREATE = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL,
    kind TEXT NOT NULL,
    label TEXT NOT NULL,
    backend TEXT,
    topology TEXT,
    pattern TEXT,
    num_processors INTEGER,
    message_flits INTEGER,
    scenario_key TEXT,
    created_at REAL NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_run_id ON runs (run_id);
CREATE INDEX IF NOT EXISTS idx_runs_scenario_key ON runs (scenario_key);
CREATE INDEX IF NOT EXISTS idx_runs_topology ON runs (topology);
CREATE INDEX IF NOT EXISTS idx_runs_kind ON runs (kind);
CREATE INDEX IF NOT EXISTS idx_runs_label ON runs (label);
"""

# Queryable columns exposed through query(); everything else needs the
# registry's predicate-based scan.
_FILTER_COLUMNS = (
    "kind",
    "label",
    "backend",
    "topology",
    "pattern",
    "num_processors",
    "message_flits",
    "scenario_key",
)


class RunIndex:
    """Indexed reads over one :class:`~repro.runs.registry.RunRegistry`.

    >>> from repro.runs import RunRegistry
    >>> from repro.runs.index import RunIndex
    >>> index = RunIndex(RunRegistry("bench-smoke/registry"))  # doctest: +SKIP
    >>> index.query(topology="bft")                            # doctest: +SKIP
    """

    def __init__(self, registry: RunRegistry) -> None:
        self.registry = registry
        #: Records skipped by the last refresh because their schema version
        #: or structure made them unindexable (mirrors the scan counters).
        self.skipped = 0
        self._conn: sqlite3.Connection | None = None

    @property
    def path(self) -> Path:
        return self.registry.path / _INDEX_FILE

    # --- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunIndex":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.registry.path.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path)
            conn.row_factory = sqlite3.Row
            conn.executescript(_CREATE)
            self._conn = conn
        return self._conn

    def _meta(self, conn: sqlite3.Connection, key: str) -> str | None:
        row = conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else str(row["value"])

    def _set_meta(self, conn: sqlite3.Connection, key: str, value: str) -> None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    # --- building ----------------------------------------------------------------

    def _reset(self) -> sqlite3.Connection:
        """Drop the SQLite file and start an empty index."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        return self._connect()

    def refresh(self) -> int:
        """Bring the index up to date; returns newly indexed record count.

        Incremental (tail-scan of appended bytes) in the common case; any
        inconsistency — corrupt SQLite file, foreign index or record
        schema, shrunk records file — silently falls back to a full
        rebuild, because the JSONL is canonical and the index never is.
        """
        try:
            return self._refresh()
        except sqlite3.Error:
            METRICS.add("index.rebuilds.corrupt")
            self._reset()
            return self._refresh()

    def rebuild(self) -> int:
        """Rebuild from byte 0 unconditionally; returns indexed record count."""
        self._reset()
        return self._refresh()

    def _refresh(self) -> int:
        conn = self._connect()
        index_schema = self._meta(conn, "index_schema")
        record_schema = self._meta(conn, "record_schema")
        if (
            index_schema is not None
            and (
                index_schema != str(INDEX_SCHEMA_VERSION)
                or record_schema != str(SCHEMA_VERSION)
            )
        ):
            METRICS.add("index.rebuilds.schema")
            conn = self._reset()
            index_schema = None
        indexed_bytes = int(self._meta(conn, "indexed_bytes") or 0)
        records_path = self.registry.records_path
        size = records_path.stat().st_size if records_path.exists() else 0
        if size < indexed_bytes:
            # doctor --quarantine (or a hand edit) rewrote the file: the
            # indexed byte ranges no longer address the right records.
            METRICS.add("index.rebuilds.shrunk")
            conn = self._reset()
            indexed_bytes = 0
        added = 0
        self.skipped = 0
        with conn:
            for offset, length, record in self._tail(records_path, indexed_bytes):
                indexed_bytes = offset + length
                row = self._row_for(record, offset, length)
                if row is None:
                    self.skipped += 1
                    continue
                conn.execute(
                    "INSERT INTO runs (run_id, kind, label, backend, topology,"
                    " pattern, num_processors, message_flits, scenario_key,"
                    " created_at, offset, length)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    row,
                )
                added += 1
            self._set_meta(conn, "index_schema", str(INDEX_SCHEMA_VERSION))
            self._set_meta(conn, "record_schema", str(SCHEMA_VERSION))
            self._set_meta(conn, "indexed_bytes", str(indexed_bytes))
        METRICS.add("index.refreshes")
        METRICS.add("index.records_indexed", added)
        return added

    def _tail(
        self, records_path: Path, start: int
    ) -> Iterator[tuple[int, int, dict[str, Any] | None]]:
        """Yield ``(offset, length, record_or_None)`` for complete new lines.

        A trailing line without ``\\n`` is an append still in flight —
        left for the next refresh, like the registry's memoized scan.
        """
        if not records_path.exists():
            return
        with records_path.open("rb") as fh:
            fh.seek(start)
            offset = start
            for raw_line in fh:
                if not raw_line.endswith(b"\n"):
                    return
                length = len(raw_line)
                stripped = raw_line.strip()
                record: dict[str, Any] | None = None
                if stripped:
                    try:
                        parsed = json.loads(stripped.decode("utf-8"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        parsed = None
                    if isinstance(parsed, dict):
                        record = parsed
                if stripped:
                    yield offset, length, record
                offset += length

    def _row_for(
        self, record: dict[str, Any] | None, offset: int, length: int
    ) -> tuple[Any, ...] | None:
        """Map one raw record to its index row (None = unindexable, skip)."""
        if record is None or record.get("schema_version") != SCHEMA_VERSION:
            return None
        run_id = record.get("run_id")
        created_at = record.get("created_at")
        if not isinstance(run_id, str) or not isinstance(created_at, (int, float)):
            return None
        scenario = record.get("scenario")
        if not isinstance(scenario, dict):
            scenario = {}
        provenance = record.get("provenance")
        if not isinstance(provenance, dict):
            provenance = {}
        backend = scenario.get("backend") or provenance.get("backend")
        return (
            run_id,
            str(record.get("kind", "scenario")),
            str(record.get("label", "")),
            backend,
            scenario.get("topology"),
            scenario.get("pattern"),
            scenario.get("num_processors"),
            scenario.get("message_flits"),
            provenance.get("scenario_key"),
            float(created_at),
            offset,
            length,
        )

    # --- reading -----------------------------------------------------------------

    def _record_at(self, offset: int, length: int) -> RunResult:
        """Load one record straight from its byte range in the JSONL file."""
        with self.registry.records_path.open("rb") as fh:
            fh.seek(offset)
            raw = fh.read(length)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RegistryError(
                f"index points at bytes {offset}..{offset + length} of "
                f"{self.registry.records_path} but they are not a record; "
                "run `repro runs reindex`"
            ) from exc
        return RunResult.from_json(data)

    def count(self) -> int:
        """Indexed record count (refreshes first)."""
        self.refresh()
        conn = self._connect()
        row = conn.execute("SELECT COUNT(*) AS n FROM runs").fetchone()
        return int(row["n"])

    def latest(self) -> RunResult | None:
        """The most recently appended indexed record (refreshes first)."""
        self.refresh()
        conn = self._connect()
        row = conn.execute(
            "SELECT offset, length FROM runs ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return self._record_at(int(row["offset"]), int(row["length"]))

    def load(self, run_id: str) -> RunResult:
        """Load one record by id (or ``"latest"``) via the index."""
        if run_id == "latest":
            record = self.latest()
            if record is None:
                raise RegistryError(f"registry {self.registry.path} holds no runs")
            return record
        self.refresh()
        conn = self._connect()
        row = conn.execute(
            "SELECT offset, length FROM runs WHERE run_id = ? "
            "ORDER BY seq DESC LIMIT 1",
            (run_id,),
        ).fetchone()
        if row is None:
            raise RegistryError(f"run {run_id!r} not found in {self.registry.path}")
        return self._record_at(int(row["offset"]), int(row["length"]))

    def query(self, **filters: Any) -> list[RunResult]:
        """Filter indexed records (insertion order), like ``registry.query``.

        Accepted filters: ``kind``, ``label``, ``backend``, ``topology``,
        ``pattern``, ``num_processors``, ``message_flits`` and
        ``scenario_key``; ``None`` values mean "any".
        """
        unknown = set(filters) - set(_FILTER_COLUMNS)
        if unknown:
            raise RegistryError(
                f"unknown index filter(s): {', '.join(sorted(unknown))}; "
                f"indexed fields are {', '.join(_FILTER_COLUMNS)}"
            )
        self.refresh()
        conn = self._connect()
        clauses = []
        params: list[Any] = []
        for column in _FILTER_COLUMNS:
            value = filters.get(column)
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT offset, length FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seq"
        METRICS.add("index.queries")
        rows = conn.execute(sql, params).fetchall()
        return [self._record_at(int(r["offset"]), int(r["length"])) for r in rows]

    def find_by_scenario_key(self, scenario_key: str) -> RunResult | None:
        """The most recent record whose provenance carries ``scenario_key``.

        This is the service's cache-lookup primitive: the key is content
        addressed (:func:`repro.runs.scenario.scenario_key`), so a hit is
        an exact answer to the same question, faults and backend included.
        """
        self.refresh()
        conn = self._connect()
        row = conn.execute(
            "SELECT offset, length FROM runs WHERE scenario_key = ? "
            "ORDER BY seq DESC LIMIT 1",
            (scenario_key,),
        ).fetchone()
        if row is None:
            return None
        return self._record_at(int(row["offset"]), int(row["length"]))
