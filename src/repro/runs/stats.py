"""Aggregate observability telemetry across run records.

Every :class:`~repro.runs.RunResult` produced by the facade carries an
``observability`` metrics block (counters, histograms, span aggregates —
see :mod:`repro.obs`).  :func:`collect_stats` folds those blocks across a
set of records into one :class:`StatsReport`: total solves and fixed-point
iterations, cache hit rates, cumulative span time — the "where does the
work go" view ``repro runs stats`` renders over a registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..util.tables import format_table
from .result import RunResult

__all__ = ["StatsReport", "collect_stats"]


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class StatsReport:
    """Telemetry folded over a set of run records.

    ``counters`` maps name to ``{total, runs}`` (sum across records and
    how many records carried the counter); ``histograms`` merges the
    running moments (``count``/``total``/``min``/``max`` with a derived
    ``mean``); ``spans`` sums counts and durations, keeping the worst
    single span in ``max_s``.
    """

    source: str
    runs: int
    instrumented: int
    counters: dict[str, dict[str, float]]
    histograms: dict[str, dict[str, float]]
    spans: dict[str, dict[str, float]]

    def render(self) -> str:
        lines = [
            f"runs stats: {self.source}",
            f"  {self.runs} run(s), {self.instrumented} with telemetry",
        ]
        if self.counters:
            lines.append(
                format_table(
                    ["counter", "total", "runs"],
                    [
                        (name, entry["total"], int(entry["runs"]))
                        for name, entry in sorted(self.counters.items())
                    ],
                )
            )
        if self.histograms:
            lines.append(
                format_table(
                    ["histogram", "count", "mean", "min", "max"],
                    [
                        (
                            name,
                            int(entry["count"]),
                            entry["mean"],
                            entry["min"],
                            entry["max"],
                        )
                        for name, entry in sorted(self.histograms.items())
                    ],
                )
            )
        if self.spans:
            lines.append(
                format_table(
                    ["span", "count", "total s", "mean s", "max s"],
                    [
                        (
                            name,
                            int(entry["count"]),
                            entry["total_s"],
                            entry["mean_s"],
                            entry["max_s"],
                        )
                        for name, entry in sorted(self.spans.items())
                    ],
                )
            )
        if self.instrumented == 0:
            lines.append(
                "  (no observability blocks found; records predate the "
                "telemetry schema)"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "source": self.source,
            "runs": self.runs,
            "instrumented": self.instrumented,
            "counters": self.counters,
            "histograms": self.histograms,
            "spans": self.spans,
        }


def collect_stats(
    records: Iterable[RunResult], *, source: str = "records"
) -> StatsReport:
    """Fold the ``observability`` blocks of ``records`` into one report.

    Records without a block (older schemas, hand-built results) count
    toward ``runs`` but contribute nothing; non-numeric leaves are skipped
    rather than raising, so a foreign or damaged block cannot take the
    whole summary down.
    """
    runs = instrumented = 0
    counters: dict[str, dict[str, float]] = {}
    histograms: dict[str, dict[str, float]] = {}
    spans: dict[str, dict[str, float]] = {}
    for record in records:
        runs += 1
        obs = record.metrics.get("observability")
        if not isinstance(obs, Mapping):
            continue
        instrumented += 1
        raw_counters = obs.get("counters")
        if isinstance(raw_counters, Mapping):
            for name, value in raw_counters.items():
                if not _is_number(value):
                    continue
                entry = counters.setdefault(
                    str(name), {"total": 0.0, "runs": 0.0}
                )
                entry["total"] += float(value)
                entry["runs"] += 1.0
        raw_hist = obs.get("histograms")
        if isinstance(raw_hist, Mapping):
            for name, h in raw_hist.items():
                if not isinstance(h, Mapping) or not all(
                    _is_number(h.get(k)) for k in ("count", "total", "min", "max")
                ):
                    continue
                merged = histograms.get(str(name))
                if merged is None:
                    histograms[str(name)] = {
                        "count": float(h["count"]),
                        "total": float(h["total"]),
                        "min": float(h["min"]),
                        "max": float(h["max"]),
                    }
                else:
                    merged["count"] += float(h["count"])
                    merged["total"] += float(h["total"])
                    merged["min"] = min(merged["min"], float(h["min"]))
                    merged["max"] = max(merged["max"], float(h["max"]))
        raw_spans = obs.get("spans")
        if isinstance(raw_spans, Mapping):
            for name, s in raw_spans.items():
                if not isinstance(s, Mapping) or not all(
                    _is_number(s.get(k)) for k in ("count", "total_s", "max_s")
                ):
                    continue
                entry = spans.setdefault(
                    str(name), {"count": 0.0, "total_s": 0.0, "max_s": 0.0}
                )
                entry["count"] += float(s["count"])
                entry["total_s"] += float(s["total_s"])
                entry["max_s"] = max(entry["max_s"], float(s["max_s"]))
    for entry in histograms.values():
        entry["mean"] = entry["total"] / entry["count"] if entry["count"] else 0.0
    for entry in spans.values():
        entry["mean_s"] = entry["total_s"] / entry["count"] if entry["count"] else 0.0
    return StatsReport(
        source=source,
        runs=runs,
        instrumented=instrumented,
        counters=counters,
        histograms=histograms,
        spans=spans,
    )
