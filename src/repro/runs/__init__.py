"""Unified Scenario→Run API with a persistent run registry.

This package is the library's front door: declare *what* you want to know
as a :class:`Scenario` (topology × workload × traffic pattern ×
``backend``), call :func:`run`, and receive a typed, schema-versioned
:class:`RunResult` — the same record shape whether the answer came from
the analytical model, the vectorized batch engine, a simulator
replication set, or the prior-art baseline.  A :class:`RunRegistry`
persists the records as append-only JSON lines so sweeps, saturation
searches, replication sets, and benchmark baselines accumulate into one
diffable trajectory across sessions and PRs.

>>> from repro.runs import RunRegistry, Scenario, run
>>> sc = Scenario(num_processors=64, message_flits=16, backend="batch")
>>> r = run(sc)                       # latency point + curve + saturation
>>> r == type(r).from_json(r.to_json())
True
>>> sim = run(sc.with_backend("simulate"))   # same question, measured

CLI equivalents: ``repro run``, ``repro runs list``, ``repro runs diff``.
"""

from .backends import backend_names, execute
from .index import RunIndex
from .registry import (
    MetricDelta,
    RunDiff,
    RunRegistry,
    default_registry_dir,
    diff_metrics,
    flatten_leaves,
    flatten_metrics,
)
from .result import SCHEMA_VERSION, RunResult, json_restore, json_safe
from .runner import Runner, provenance_stamp, run
from .scenario import BACKENDS, SIMULATORS, TOPOLOGIES, Scenario, scenario_key
from .stats import StatsReport, collect_stats

__all__ = [
    "BACKENDS",
    "SCHEMA_VERSION",
    "SIMULATORS",
    "TOPOLOGIES",
    "MetricDelta",
    "RunDiff",
    "RunIndex",
    "RunRegistry",
    "RunResult",
    "Runner",
    "Scenario",
    "StatsReport",
    "backend_names",
    "collect_stats",
    "default_registry_dir",
    "diff_metrics",
    "execute",
    "flatten_leaves",
    "flatten_metrics",
    "json_restore",
    "json_safe",
    "provenance_stamp",
    "run",
    "scenario_key",
]
