"""The persistent run registry: append-only JSON-lines under a directory.

A :class:`RunRegistry` owns one directory (by default
``benchmarks/results/runs/``, honouring ``REPRO_RESULTS_DIR``) holding a
single append-only ``runs.jsonl`` — one canonical-JSON record per line.
Append-only JSON lines keep the format trivially diffable, mergeable and
greppable across PRs; no database dependency is involved.

Operations: :meth:`~RunRegistry.save`, :meth:`~RunRegistry.load` (by run
id or the alias ``"latest"``), :meth:`~RunRegistry.query` (field filters
plus an arbitrary predicate) and :meth:`~RunRegistry.diff` — a flattened
numeric comparison of two records (or of a record against a raw JSON
baseline file such as the committed ``benchmarks/BENCH_perf.json``).

Records written under a different :data:`~repro.runs.result.SCHEMA_VERSION`
raise :class:`~repro.errors.SchemaVersionError` on direct load;
iteration-style reads (``query``, ``ids``) skip them and report the count
through :attr:`RunRegistry.skipped_versions` so a registry that outlives
a schema bump stays usable.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..errors import ConfigurationError, RegistryError, SchemaVersionError
from ..util.tables import format_table
from .result import RunResult, json_restore

__all__ = [
    "RunRegistry",
    "RunDiff",
    "MetricDelta",
    "default_registry_dir",
    "diff_metrics",
    "flatten_metrics",
]

_RECORDS_FILE = "runs.jsonl"


def default_registry_dir() -> Path:
    """``benchmarks/results/runs`` next to the repository root.

    Honours the ``REPRO_RESULTS_DIR`` environment variable (the registry
    lives in a ``runs/`` subdirectory of it), matching
    :func:`repro.experiments.report.default_results_dir`.
    """
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return Path(env) / "runs"
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "runs"


# --- metric flattening and diffing --------------------------------------------------


def flatten_metrics(obj: Any, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts/lists into dotted numeric leaves.

    Non-numeric leaves (labels, booleans, None) are dropped; list
    elements are addressed as ``key[i]``.
    """
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        if prefix:
            out[prefix] = float(obj)
        return out
    if isinstance(obj, Mapping):
        for k, v in obj.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten_metrics(v, key))
        return out
    if isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            out.update(flatten_metrics(v, f"{prefix}[{i}]"))
        return out
    return out


@dataclass(frozen=True)
class MetricDelta:
    """One flattened metric compared across two runs."""

    key: str
    a: float
    b: float

    @property
    def same(self) -> bool:
        """NaN-aware equality: ``nan`` vs ``nan`` (and ``inf`` vs ``inf``)
        is "no change" — post-saturation records routinely hold both, and
        a record must diff empty against itself."""
        return self.a == self.b or (math.isnan(self.a) and math.isnan(self.b))

    @property
    def delta(self) -> float:
        # b - a is nan for equal non-finite values (inf - inf, nan - nan);
        # report equal leaves as an exact zero change instead.
        if self.same:
            return 0.0
        return self.b - self.a

    @property
    def rel(self) -> float:
        """Relative change ``(b - a) / |a|`` (nan when undefined)."""
        if math.isnan(self.a) or math.isnan(self.b):
            # Equality (including nan == nan in spirit) is "no change";
            # any other comparison against nan is undefined, not ±inf.
            return 0.0 if (math.isnan(self.a) and math.isnan(self.b)) else math.nan
        if not math.isfinite(self.a) or self.a == 0.0:
            return 0.0 if self.a == self.b else math.nan
        if math.isinf(self.b):
            return math.inf if self.b > 0 else -math.inf
        return (self.b - self.a) / abs(self.a)


@dataclass(frozen=True)
class RunDiff:
    """Field-by-field numeric comparison of two runs (or baselines)."""

    a_label: str
    b_label: str
    deltas: tuple[MetricDelta, ...]
    only_a: tuple[str, ...]
    only_b: tuple[str, ...]

    @property
    def changed(self) -> tuple[MetricDelta, ...]:
        """The shared metrics that actually differ (NaN-aware).

        ``diff(run, run)`` has ``changed == ()`` even when the record
        carries ``nan``/``inf`` leaves.
        """
        return tuple(d for d in self.deltas if not d.same)

    @property
    def max_abs_rel(self) -> float:
        """Largest finite |relative change| across shared metrics (0 if none)."""
        rels = [abs(d.rel) for d in self.deltas if math.isfinite(d.rel)]
        return max(rels) if rels else 0.0

    def render(self, *, top: int | None = 25) -> str:
        """Aligned table of the largest relative changes first."""
        def rank(d: MetricDelta):
            # Largest |rel| first, infinities before everything, undefined
            # (nan) comparisons last.
            if math.isnan(d.rel):
                return (1, 0.0, d.key)
            return (0, -(abs(d.rel) if math.isfinite(d.rel) else math.inf), d.key)

        ranked = sorted(self.deltas, key=rank)
        shown = ranked if top is None else ranked[:top]
        lines = [
            format_table(
                ["metric", self.a_label, self.b_label, "delta", "rel"],
                [(d.key, d.a, d.b, d.delta, d.rel) for d in shown],
                title=(
                    f"runs diff: {self.a_label} -> {self.b_label} "
                    f"({len(self.deltas)} shared metrics"
                    + (f", top {len(shown)} by |rel|" if len(shown) < len(self.deltas) else "")
                    + ")"
                ),
            )
        ]
        if self.only_a:
            lines.append(f"only in {self.a_label}: {', '.join(self.only_a)}")
        if self.only_b:
            lines.append(f"only in {self.b_label}: {', '.join(self.only_b)}")
        lines.append(f"max |rel| over shared metrics: {self.max_abs_rel:.4g}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "a": self.a_label,
            "b": self.b_label,
            "deltas": [
                {"key": d.key, "a": d.a, "b": d.b, "delta": d.delta, "rel": d.rel}
                for d in self.deltas
            ],
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "max_abs_rel": self.max_abs_rel,
        }


def diff_metrics(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    a_label: str = "a",
    b_label: str = "b",
) -> RunDiff:
    """Compare two (possibly nested) metric mappings key by key."""
    flat_a = flatten_metrics(a)
    flat_b = flatten_metrics(b)
    shared = sorted(set(flat_a) & set(flat_b))
    return RunDiff(
        a_label=a_label,
        b_label=b_label,
        deltas=tuple(MetricDelta(k, flat_a[k], flat_b[k]) for k in shared),
        only_a=tuple(sorted(set(flat_a) - set(flat_b))),
        only_b=tuple(sorted(set(flat_b) - set(flat_a))),
    )


# --- the registry -------------------------------------------------------------------


class RunRegistry:
    """Append-only run store (see the module docstring).

    Parameters
    ----------
    path:
        Registry directory (created on demand); defaults to
        :func:`default_registry_dir`.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_registry_dir()
        #: Records skipped by the last iteration-style read because their
        #: schema version did not match (0 after ``save``/``load``).
        self.skipped_versions = 0

    @property
    def records_path(self) -> Path:
        return self.path / _RECORDS_FILE

    # --- write -------------------------------------------------------------------

    def save(self, result: RunResult) -> str:
        """Append one record; returns its run id."""
        if not isinstance(result, RunResult):
            raise ConfigurationError(
                f"registry.save expects a RunResult, got {type(result).__name__}"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        with self.records_path.open("a", encoding="utf-8") as fh:
            fh.write(result.to_json_str() + "\n")
        return result.run_id

    # --- read --------------------------------------------------------------------

    def _iter_raw(self) -> Iterator[dict]:
        if not self.records_path.exists():
            return
        with self.records_path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise RegistryError(
                        f"{self.records_path}:{lineno}: unreadable record ({exc})"
                    ) from exc

    def __iter__(self) -> Iterator[RunResult]:
        """Yield readable records in insertion order (skips foreign schemas)."""
        self.skipped_versions = 0
        for raw in self._iter_raw():
            try:
                yield RunResult.from_json(raw)
            except SchemaVersionError:
                self.skipped_versions += 1

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def ids(self) -> list[str]:
        return [r.run_id for r in self]

    def latest(self) -> RunResult | None:
        """The most recently appended readable record."""
        last = None
        for record in self:
            last = record
        return last

    def load(self, run_id: str) -> RunResult:
        """Load one record by id (or the alias ``"latest"``).

        Unlike iteration, a direct load of a schema-mismatched record
        raises :class:`SchemaVersionError` — the caller asked for exactly
        that record and must not receive a silently reinterpreted one.
        """
        if run_id == "latest":
            record = self.latest()
            if record is None:
                raise RegistryError(f"registry {self.path} holds no runs")
            return record
        for raw in self._iter_raw():
            if raw.get("run_id") == run_id:
                return RunResult.from_json(raw)
        raise RegistryError(f"run {run_id!r} not found in {self.path}")

    def query(
        self,
        *,
        backend: str | None = None,
        kind: str | None = None,
        label: str | None = None,
        topology: str | None = None,
        pattern: str | None = None,
        num_processors: int | None = None,
        message_flits: int | None = None,
        predicate: Callable[[RunResult], bool] | None = None,
    ) -> list[RunResult]:
        """Filter records by scenario fields (insertion order preserved)."""
        out = []
        for record in self:
            sc = record.scenario
            if kind is not None and record.kind != kind:
                continue
            if label is not None and record.label != label:
                continue
            if backend is not None and (sc is None or sc.backend != backend):
                continue
            if topology is not None and (sc is None or sc.topology != topology):
                continue
            if pattern is not None and (sc is None or sc.pattern != pattern):
                continue
            if num_processors is not None and (
                sc is None or sc.num_processors != num_processors
            ):
                continue
            if message_flits is not None and (
                sc is None or sc.message_flits != message_flits
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    # --- diff --------------------------------------------------------------------

    def _resolve_comparand(self, ref: "RunResult | str | Path") -> tuple[dict, str]:
        """Map a diff operand to ``(metrics, label)``.

        Accepts a :class:`RunResult`, a run id (or ``"latest"``), or a
        path to a raw JSON baseline file (e.g. ``BENCH_perf.json``) whose
        numeric leaves are compared wholesale.
        """
        if isinstance(ref, RunResult):
            return ref.metrics, ref.run_id
        if isinstance(ref, Path) or (
            isinstance(ref, str) and (os.sep in ref or ref.endswith(".json"))
        ):
            path = Path(ref)
            if not path.exists():
                raise RegistryError(f"baseline file {path} does not exist")
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise RegistryError(f"{path}: not valid JSON ({exc})") from exc
            if isinstance(data, Mapping) and "metrics" in data and "run_id" in data:
                # A serialized RunResult: compare its metrics block.
                return dict(json_restore(data["metrics"])), str(data["run_id"])
            return dict(json_restore(data)), path.name
        if isinstance(ref, str):
            record = self.load(ref)
            return record.metrics, record.run_id
        raise ConfigurationError(
            f"cannot diff against object of type {type(ref).__name__}"
        )

    def diff(self, a: "RunResult | str | Path", b: "RunResult | str | Path") -> RunDiff:
        """Numeric comparison of two runs (or a run against a JSON baseline)."""
        metrics_a, label_a = self._resolve_comparand(a)
        metrics_b, label_b = self._resolve_comparand(b)
        return diff_metrics(metrics_a, metrics_b, a_label=label_a, b_label=label_b)
