"""The persistent run registry: append-only JSON-lines under a directory.

A :class:`RunRegistry` owns one directory (by default
``benchmarks/results/runs/``, honouring ``REPRO_RESULTS_DIR``) holding a
single append-only ``runs.jsonl`` — one canonical-JSON record per line.
Append-only JSON lines keep the format trivially diffable, mergeable and
greppable across PRs; no database dependency is involved.

Operations: :meth:`~RunRegistry.save`, :meth:`~RunRegistry.load` (by run
id or the alias ``"latest"``), :meth:`~RunRegistry.query` (field filters
plus an arbitrary predicate) and :meth:`~RunRegistry.diff` — a flattened
numeric comparison of two records (or of a record against a raw JSON
baseline file such as the committed ``benchmarks/BENCH_perf.json``).

Records written under a different :data:`~repro.runs.result.SCHEMA_VERSION`
raise :class:`~repro.errors.SchemaVersionError` on direct load;
iteration-style reads (``query``, ``ids``) skip them and report the count
through :attr:`RunRegistry.skipped_versions` so a registry that outlives
a schema bump stays usable.  Corrupted or truncated lines (a crashed
append, a bad merge) are likewise *skipped* — counted in
:attr:`RunRegistry.skipped_corrupt` with a once-per-registry warning, never
an exception — so one bad line cannot brick ``repro runs list``/``diff``;
:meth:`RunRegistry.doctor` reports them line by line and can quarantine
them into ``runs.quarantine.jsonl``.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..errors import ConfigurationError, RegistryError, SchemaVersionError
from ..obs.metrics import METRICS
from ..util.tables import format_table
from .result import RunResult, json_restore

__all__ = [
    "RunRegistry",
    "RunDiff",
    "MetricDelta",
    "DoctorReport",
    "default_registry_dir",
    "diff_metrics",
    "flatten_leaves",
    "flatten_metrics",
]

_RECORDS_FILE = "runs.jsonl"
_QUARANTINE_FILE = "runs.quarantine.jsonl"


def default_registry_dir() -> Path:
    """``benchmarks/results/runs`` next to the repository root.

    Honours the ``REPRO_RESULTS_DIR`` environment variable (the registry
    lives in a ``runs/`` subdirectory of it), matching
    :func:`repro.experiments.report.default_results_dir`.
    """
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return Path(env) / "runs"
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "runs"


# --- metric flattening and diffing --------------------------------------------------


def flatten_metrics(obj: Any, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts/lists into dotted numeric leaves.

    Non-numeric leaves (labels, booleans, None) are dropped; list
    elements are addressed as ``key[i]``.
    """
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        if prefix:
            out[prefix] = float(obj)
        return out
    if isinstance(obj, Mapping):
        for k, v in obj.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten_metrics(v, key))
        return out
    if isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            out.update(flatten_metrics(v, f"{prefix}[{i}]"))
        return out
    return out


def flatten_leaves(obj: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten nested dicts/lists into dotted leaves of *any* type.

    Unlike :func:`flatten_metrics` (numeric leaves only, the deltas'
    domain), this keeps labels, booleans and ``None`` — the full leaf key
    set is what decides whether a metric was *added or removed* between
    two records, which must not depend on the leaf's type.
    """
    out: dict[str, Any] = {}
    if isinstance(obj, Mapping):
        for k, v in obj.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten_leaves(v, key))
        return out
    if isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            out.update(flatten_leaves(v, f"{prefix}[{i}]"))
        return out
    if prefix:
        out[prefix] = obj
    return out


@dataclass(frozen=True)
class MetricDelta:
    """One flattened metric compared across two runs."""

    key: str
    a: float
    b: float

    @property
    def same(self) -> bool:
        """NaN-aware equality: ``nan`` vs ``nan`` (and ``inf`` vs ``inf``)
        is "no change" — post-saturation records routinely hold both, and
        a record must diff empty against itself."""
        return self.a == self.b or (math.isnan(self.a) and math.isnan(self.b))

    @property
    def delta(self) -> float:
        # b - a is nan for equal non-finite values (inf - inf, nan - nan);
        # report equal leaves as an exact zero change instead.
        if self.same:
            return 0.0
        return self.b - self.a

    @property
    def rel(self) -> float:
        """Relative change ``(b - a) / |a|`` (nan when undefined)."""
        if math.isnan(self.a) or math.isnan(self.b):
            # Equality (including nan == nan in spirit) is "no change";
            # any other comparison against nan is undefined, not ±inf.
            return 0.0 if (math.isnan(self.a) and math.isnan(self.b)) else math.nan
        if not math.isfinite(self.a) or self.a == 0.0:
            return 0.0 if self.a == self.b else math.nan
        if math.isinf(self.b):
            return math.inf if self.b > 0 else -math.inf
        return (self.b - self.a) / abs(self.a)


@dataclass(frozen=True)
class RunDiff:
    """Field-by-field numeric comparison of two runs (or baselines)."""

    a_label: str
    b_label: str
    deltas: tuple[MetricDelta, ...]
    only_a: tuple[str, ...]
    only_b: tuple[str, ...]

    @property
    def changed(self) -> tuple[MetricDelta, ...]:
        """The shared metrics that actually differ (NaN-aware).

        ``diff(run, run)`` has ``changed == ()`` even when the record
        carries ``nan``/``inf`` leaves.
        """
        return tuple(d for d in self.deltas if not d.same)

    @property
    def max_abs_rel(self) -> float:
        """Largest finite |relative change| across shared metrics (0 if none)."""
        rels = [abs(d.rel) for d in self.deltas if math.isfinite(d.rel)]
        return max(rels) if rels else 0.0

    def render(self, *, top: int | None = 25) -> str:
        """Aligned table of the largest relative changes first."""
        def rank(d: MetricDelta) -> tuple[int, float, str]:
            # Largest |rel| first, infinities before everything, undefined
            # (nan) comparisons last.
            if math.isnan(d.rel):
                return (1, 0.0, d.key)
            return (0, -(abs(d.rel) if math.isfinite(d.rel) else math.inf), d.key)

        ranked = sorted(self.deltas, key=rank)
        shown = ranked if top is None else ranked[:top]
        lines = [
            format_table(
                ["metric", self.a_label, self.b_label, "delta", "rel"],
                [(d.key, d.a, d.b, d.delta, d.rel) for d in shown],
                title=(
                    f"runs diff: {self.a_label} -> {self.b_label} "
                    f"({len(self.deltas)} shared metrics"
                    + (f", top {len(shown)} by |rel|" if len(shown) < len(self.deltas) else "")
                    + ")"
                ),
            )
        ]
        if self.only_a:
            lines.append(f"only in {self.a_label}: {', '.join(self.only_a)}")
        if self.only_b:
            lines.append(f"only in {self.b_label}: {', '.join(self.only_b)}")
        lines.append(f"max |rel| over shared metrics: {self.max_abs_rel:.4g}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "a": self.a_label,
            "b": self.b_label,
            "deltas": [
                {"key": d.key, "a": d.a, "b": d.b, "delta": d.delta, "rel": d.rel}
                for d in self.deltas
            ],
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "max_abs_rel": self.max_abs_rel,
        }


def diff_metrics(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    a_label: str = "a",
    b_label: str = "b",
) -> RunDiff:
    """Compare two (possibly nested) metric mappings key by key.

    ``deltas`` covers the leaves both sides hold *numerically*;
    ``only_a``/``only_b`` (the removed/added report) cover every leaf
    present on exactly one side regardless of type — a boolean or label
    leaf missing from the other record is a structural change and must be
    reported, not silently dropped just because it cannot be subtracted.
    """
    flat_a = flatten_metrics(a)
    flat_b = flatten_metrics(b)
    keys_a = set(flatten_leaves(a))
    keys_b = set(flatten_leaves(b))
    shared = sorted(set(flat_a) & set(flat_b))
    return RunDiff(
        a_label=a_label,
        b_label=b_label,
        deltas=tuple(MetricDelta(k, flat_a[k], flat_b[k]) for k in shared),
        only_a=tuple(sorted(keys_a - keys_b)),
        only_b=tuple(sorted(keys_b - keys_a)),
    )


# --- the registry -------------------------------------------------------------------


class RunRegistry:
    """Append-only run store (see the module docstring).

    Parameters
    ----------
    path:
        Registry directory (created on demand); defaults to
        :func:`default_registry_dir`.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_registry_dir()
        #: Records skipped by the last iteration-style read because their
        #: schema version did not match (0 after ``save``/``load``).
        self.skipped_versions = 0
        #: Lines skipped by the last read because they were not valid JSON
        #: objects (truncated appends, merge debris).
        self.skipped_corrupt = 0
        self._warned_corrupt = False
        # Scan memo: raw records already parsed from the consumed byte
        # prefix [0, _scan_offset) of the records file.  Repeated reads
        # re-yield the cached dicts and parse only appended bytes; the
        # cache is dropped whenever the file shrinks (doctor --quarantine
        # rewrites, manual edits).  ``registry.records_read`` therefore
        # counts *line parses*, not records returned — the memoization
        # contract the tests pin.
        self._scan_records: list[dict] = []
        self._scan_offset = 0
        self._scan_corrupt = 0
        self._scan_lines = 0
        self._scan_active = False

    @property
    def records_path(self) -> Path:
        return self.path / _RECORDS_FILE

    def invalidate_cache(self) -> None:
        """Forget the memoized scan (the next read re-parses from byte 0)."""
        self._scan_records = []
        self._scan_offset = 0
        self._scan_corrupt = 0
        self._scan_lines = 0

    # --- write -------------------------------------------------------------------

    def save(self, result: RunResult) -> str:
        """Append one record; returns its run id.

        The record is written with a single ``os.write`` on an
        ``O_APPEND`` descriptor: POSIX appends the whole buffer at the
        end-of-file atomically, so concurrent writer *processes* sharing
        one registry can never interleave partial lines (the property the
        multiprocessing stress test pins).  A short write — out of disk,
        interrupted — is reported as a :class:`RegistryError` instead of
        silently leaving a torn record.
        """
        if not isinstance(result, RunResult):
            raise ConfigurationError(
                f"registry.save expects a RunResult, got {type(result).__name__}"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        line = (result.to_json_str() + "\n").encode("utf-8")
        fd = os.open(
            self.records_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666
        )
        try:
            written = os.write(fd, line)
        finally:
            os.close(fd)
        if written != len(line):
            raise RegistryError(
                f"short append to {self.records_path}: wrote {written} of "
                f"{len(line)} bytes (disk full?); run `repro runs doctor`"
            )
        METRICS.add("registry.saves")
        return result.run_id

    # --- read --------------------------------------------------------------------

    def _parse_line(self, raw_line: bytes) -> dict | None:
        """One JSONL line to a record dict, or None when corrupt."""
        stripped = raw_line.strip()
        if not stripped:
            return None
        try:
            record = json.loads(stripped.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def _note_corrupt(self, lineno: int) -> None:
        self.skipped_corrupt += 1
        METRICS.add("registry.skipped_corrupt")
        if not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"{self.records_path}:{lineno}: skipping corrupted "
                "record(s); run `repro runs doctor` for a full "
                "audit (and --quarantine to move them aside)",
                RuntimeWarning,
                stacklevel=4,
            )

    def _iter_raw(self) -> Iterator[dict]:
        """Yield the parseable JSON-object lines of the records file.

        Corrupted or truncated lines are skipped and counted in
        :attr:`skipped_corrupt` (warning once per registry instance) — a
        torn append must not take every *other* record down with it.

        Reads are *incremental*: the already-parsed prefix is served from
        the in-memory memo and only bytes appended since the previous scan
        are parsed (blank and corrupt lines included in the consumed
        prefix).  A final line with no trailing newline — an append still
        in flight — is yielded but never memoized, so the completed line
        is re-read on the next scan.
        """
        METRICS.add("registry.scans")
        if not self.records_path.exists():
            self.invalidate_cache()
            self.skipped_corrupt = 0
            return
        size = self.records_path.stat().st_size
        if size < self._scan_offset:
            # The file shrank under us: doctor --quarantine rewrote it (or
            # someone edited it by hand).  The memoized prefix no longer
            # describes the bytes on disk; rescan from the start.
            self.invalidate_cache()
        self.skipped_corrupt = self._scan_corrupt
        yield from self._scan_records
        if size <= self._scan_offset:
            return
        # Nested scans on one instance (a query predicate calling load,
        # zipped iterations) must not both extend the memo: only the
        # outermost generator advances it, inner ones read pass-through.
        memoize = not self._scan_active
        if memoize:
            self._scan_active = True
        try:
            with self.records_path.open("rb") as fh:
                fh.seek(self._scan_offset)
                for raw_line in fh:
                    complete = raw_line.endswith(b"\n")
                    lineno = self._scan_lines + 1
                    record = self._parse_line(raw_line)
                    if complete and memoize:
                        self._scan_offset += len(raw_line)
                        self._scan_lines = lineno
                    if record is None:
                        if raw_line.strip():
                            if complete and memoize:
                                self._scan_corrupt += 1
                            self._note_corrupt(lineno)
                        continue
                    METRICS.add("registry.records_read")
                    if complete and memoize:
                        self._scan_records.append(record)
                    yield record
        finally:
            if memoize:
                self._scan_active = False

    def __iter__(self) -> Iterator[RunResult]:
        """Yield readable records in insertion order (skips foreign schemas)."""
        self.skipped_versions = 0
        for raw in self._iter_raw():
            try:
                yield RunResult.from_json(raw)
            except SchemaVersionError:
                self.skipped_versions += 1
                METRICS.add("registry.skipped_versions")

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def ids(self) -> list[str]:
        return [r.run_id for r in self]

    def latest(self) -> RunResult | None:
        """The most recently appended readable record."""
        last = None
        for record in self:
            last = record
        return last

    def load(self, run_id: str) -> RunResult:
        """Load one record by id (or the alias ``"latest"``).

        Unlike iteration, a direct load of a schema-mismatched record
        raises :class:`SchemaVersionError` — the caller asked for exactly
        that record and must not receive a silently reinterpreted one.
        """
        if run_id == "latest":
            record = self.latest()
            if record is None:
                raise RegistryError(f"registry {self.path} holds no runs")
            return record
        for raw in self._iter_raw():
            if raw.get("run_id") == run_id:
                return RunResult.from_json(raw)
        raise RegistryError(f"run {run_id!r} not found in {self.path}")

    def query(
        self,
        *,
        backend: str | None = None,
        kind: str | None = None,
        label: str | None = None,
        topology: str | None = None,
        pattern: str | None = None,
        num_processors: int | None = None,
        message_flits: int | None = None,
        predicate: Callable[[RunResult], bool] | None = None,
    ) -> list[RunResult]:
        """Filter records by scenario fields (insertion order preserved)."""
        out = []
        for record in self:
            sc = record.scenario
            if kind is not None and record.kind != kind:
                continue
            if label is not None and record.label != label:
                continue
            if backend is not None and (sc is None or sc.backend != backend):
                continue
            if topology is not None and (sc is None or sc.topology != topology):
                continue
            if pattern is not None and (sc is None or sc.pattern != pattern):
                continue
            if num_processors is not None and (
                sc is None or sc.num_processors != num_processors
            ):
                continue
            if message_flits is not None and (
                sc is None or sc.message_flits != message_flits
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    # --- diff --------------------------------------------------------------------

    def _resolve_comparand(self, ref: "RunResult | str | Path") -> tuple[dict, str]:
        """Map a diff operand to ``(metrics, label)``.

        Accepts a :class:`RunResult`, a run id (or ``"latest"``), or a
        path to a raw JSON baseline file (e.g. ``BENCH_perf.json``) whose
        numeric leaves are compared wholesale.
        """
        if isinstance(ref, RunResult):
            return ref.metrics, ref.run_id
        if isinstance(ref, Path) or (
            isinstance(ref, str) and (os.sep in ref or ref.endswith(".json"))
        ):
            path = Path(ref)
            if not path.exists():
                raise RegistryError(f"baseline file {path} does not exist")
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise RegistryError(f"{path}: not valid JSON ({exc})") from exc
            if isinstance(data, Mapping) and "metrics" in data and "run_id" in data:
                # A serialized RunResult: compare its metrics block.
                return dict(json_restore(data["metrics"])), str(data["run_id"])
            return dict(json_restore(data)), path.name
        if isinstance(ref, str):
            record = self.load(ref)
            return record.metrics, record.run_id
        raise ConfigurationError(
            f"cannot diff against object of type {type(ref).__name__}"
        )

    def diff(self, a: "RunResult | str | Path", b: "RunResult | str | Path") -> RunDiff:
        """Numeric comparison of two runs (or a run against a JSON baseline)."""
        metrics_a, label_a = self._resolve_comparand(a)
        metrics_b, label_b = self._resolve_comparand(b)
        return diff_metrics(metrics_a, metrics_b, a_label=label_a, b_label=label_b)

    # --- health ------------------------------------------------------------------

    @property
    def quarantine_path(self) -> Path:
        """Sibling file that :meth:`doctor` moves corrupt lines into."""
        return self.path / _QUARANTINE_FILE

    def doctor(self, *, quarantine: bool = False) -> "DoctorReport":
        """Audit the records file line by line.

        Classifies every non-blank line as *ok* (loads as a current-schema
        :class:`RunResult`), *foreign-schema* (valid record written under a
        different schema version — kept, still listed by tools that
        understand it), or *corrupt* (not valid JSON, not a JSON object, or
        a structurally broken record).  With ``quarantine=True`` the corrupt
        lines are appended to ``runs.quarantine.jsonl`` and the records file
        is rewritten without them (atomically, via a temp file).
        """
        path = self.records_path
        if not path.exists():
            return DoctorReport(
                path=str(path),
                total_records=0,
                ok=0,
                foreign_schema=0,
                corrupt=(),
            )
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        ok = foreign = total = 0
        corrupt: list[tuple[int, str]] = []
        keep: list[str] = []
        bad: list[str] = []
        for lineno, line in enumerate(raw_lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            total += 1
            reason: str | None = None
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as exc:
                reason = f"not valid JSON ({exc})"
            else:
                if not isinstance(record, dict):
                    reason = f"JSON {type(record).__name__} is not a record object"
                else:
                    try:
                        RunResult.from_json(record)
                    except SchemaVersionError:
                        foreign += 1
                    except Exception as exc:  # noqa: BLE001 - reported, not raised
                        reason = f"{type(exc).__name__}: {exc}"
                    else:
                        ok += 1
            if reason is None:
                keep.append(stripped)
            else:
                corrupt.append((lineno, reason))
                bad.append(stripped)
        quarantined = 0
        qpath: str | None = None
        if quarantine and bad:
            with self.quarantine_path.open("a", encoding="utf-8") as fh:
                for line in bad:
                    fh.write(line + "\n")
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text("".join(line + "\n" for line in keep), encoding="utf-8")
            os.replace(tmp, path)
            # The rewrite invalidates any memoized scan of this instance
            # (other instances notice via the file-shrunk check).
            self.invalidate_cache()
            quarantined = len(bad)
            qpath = str(self.quarantine_path)
        return DoctorReport(
            path=str(path),
            total_records=total,
            ok=ok,
            foreign_schema=foreign,
            corrupt=tuple(corrupt),
            quarantined=quarantined,
            quarantine_path=qpath,
        )


@dataclass(frozen=True)
class DoctorReport:
    """Result of :meth:`RunRegistry.doctor` — one registry health audit."""

    path: str
    total_records: int
    ok: int
    foreign_schema: int
    corrupt: tuple[tuple[int, str], ...]
    quarantined: int = 0
    quarantine_path: str | None = None

    @property
    def healthy(self) -> bool:
        """True when every record line parsed (foreign schemas are fine)."""
        return not self.corrupt

    def render(self) -> str:
        lines = [
            f"registry doctor: {self.path}",
            f"  records: {self.total_records} "
            f"({self.ok} ok, {self.foreign_schema} foreign-schema, "
            f"{len(self.corrupt)} corrupt)",
        ]
        for lineno, reason in self.corrupt:
            lines.append(f"  line {lineno}: {reason}")
        if self.quarantined:
            lines.append(
                f"  quarantined {self.quarantined} record(s) to "
                f"{self.quarantine_path}"
            )
        elif self.corrupt:
            lines.append("  re-run with --quarantine to move them aside")
        else:
            lines.append("  no corruption found")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "total_records": self.total_records,
            "ok": self.ok,
            "foreign_schema": self.foreign_schema,
            "corrupt": [
                {"line": lineno, "reason": reason} for lineno, reason in self.corrupt
            ],
            "quarantined": self.quarantined,
            "quarantine_path": self.quarantine_path,
            "healthy": self.healthy,
        }
