"""Backend dispatch: one scenario in, comparable metrics out.

Each backend answers the same scenario with the engine it names and
returns a ``(metrics, timings)`` pair in a shared layout, so records from
different backends (and different topology families) diff cleanly in the
registry:

``metrics["point"]``
    Latency (and, for simulations, throughput/stability) at the
    scenario's operating point.
``metrics["saturation"]``
    The Eq. 26 saturation point (analytical backends only; the empirical
    search is a deliberate extra step, not an implicit cost).
``metrics["curve"]``
    The latency-vs-load series over the scenario's grid, when
    ``sweep_points >= 2`` (analytical backends only — simulation cost is
    per point, so simulated curves stay an explicit choice).

The ``model`` backend is the reference scalar engine (one solve per
point); ``batch`` answers through the vectorized engine and is
bit-identical to ``model`` by construction (PR 1's equivalence tests);
``baseline`` swaps in the family's prior-art model variant; ``simulate``
runs an independently seeded replication set and records the model
prediction alongside for crosschecks.

Topology families resolve through the design-family registry
(:mod:`repro.design.families`): ``scenario.family_params()`` names one
assignment, and the family supplies the analytical evaluator, the
prior-art baseline evaluator, and the simulator topology.  Closed-form
models (butterfly and generalized fat-trees, the Dally torus) expose a
per-workload ``latency``; stage-graph evaluators (the hypercube and
every pattern-aware graph) evaluate points through one-element batches —
either way the scalar path stays one solve per point.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from ..config import Workload
from ..core.generic_model import ChannelGraphModel
from ..core.sweep import LatencyCurve, latency_sweep
from ..core.throughput import SaturationResult, saturation_injection_rate
from ..design.families import DesignFamily, design_family
from ..errors import ConfigurationError
from ..faults import FaultedTopology, degraded_spec
from ..obs import trace_span
from ..simulation.buffered_sim import BufferedWormholeSimulator
from ..simulation.flit_sim import FlitLevelWormholeSimulator
from ..simulation.runner import run_replications
from ..simulation.traffic import PoissonTraffic
from ..simulation.wormhole_sim import EventDrivenWormholeSimulator
from .scenario import Scenario

__all__ = ["execute", "backend_names"]

_SIMULATOR_CLASSES = {
    "event": EventDrivenWormholeSimulator,
    "flit": FlitLevelWormholeSimulator,
    "buffered": BufferedWormholeSimulator,
}


def backend_names() -> tuple[str, ...]:
    """The registered backend names (mirrors :data:`Scenario` validation)."""
    return tuple(_BACKENDS)


def execute(scenario: Scenario) -> tuple[dict, dict]:
    """Evaluate ``scenario`` with its backend; returns ``(metrics, timings)``."""
    try:
        runner = _BACKENDS[scenario.backend]
    except KeyError:  # pragma: no cover - Scenario validates first
        raise ConfigurationError(f"unknown backend {scenario.backend!r}")
    return runner(scenario)


# --- family resolution ---------------------------------------------------------------


def _family_for(scenario: Scenario) -> tuple[DesignFamily, dict[str, int]]:
    """The design family answering this scenario, with its parameters."""
    return design_family(scenario.topology), scenario.family_params()


def _evaluator_for(scenario: Scenario) -> Any:
    """The object whose (batch) engine answers this scenario.

    Resolved through the family registry: uniform traffic keeps the
    family's closed-form (or uniform stage-graph) model; any other
    pattern builds the pattern-aware per-channel stage graph once and
    reuses it for the point, the saturation search and the sweep.  The
    ``baseline`` backend resolves the family's prior-art variant instead.
    """
    fam, params = _family_for(scenario)
    spec = scenario.spec()
    faults = scenario.fault_spec()
    if faults is not None:
        # Degraded mode: all families and both variants route through the
        # masked stage graph of the fault-wrapped topology.
        return fam.faulted_evaluator(
            params,
            spec,
            scenario.message_flits,
            faults,
            baseline=scenario.backend == "baseline",
        )
    if scenario.backend == "baseline":
        return fam.baseline_evaluator(params, spec, scenario.message_flits)
    return fam.evaluator(params, spec, scenario.message_flits)


def _fault_provenance(scenario: Scenario, topo: Any = None) -> dict | None:
    """The fault block recorded in every backend's metrics (None = nominal).

    Resolves the scenario's :class:`~repro.faults.FaultSpec` against the
    concrete topology so the record names the *physical* links that died —
    random-failure specs become auditable after the fact.
    """
    faults = scenario.fault_spec()
    if faults is None:
        return None
    if topo is None:
        fam, params = _family_for(scenario)
        topo = FaultedTopology(fam.topology(params), faults)
    return {
        "spec": faults.to_json(),
        "dead_links": topo.faults.dead_link_refs(topo.base),
        "dead_switches": list(faults.dead_switches),
        "dead_terminals": sorted(topo.dead_terminals),
    }


def _variant_label(evaluator: Any) -> str:
    """The model-variant label recorded with analytical metrics."""
    variant = getattr(evaluator, "variant", None)
    return getattr(variant, "label", type(evaluator).__name__)


def _point_latency(evaluator: Any, workload: Workload, *, scalar: bool) -> float:
    """Latency at one operating point through either engine.

    The scalar path uses the per-point ``latency``/one-point-batch route
    (the reference engine); the batch path is a one-element vectorized
    solve.  They agree bit-for-bit — keeping both exercised is exactly
    what makes ``repro runs diff`` between the two backends a meaningful
    regression check.  Stage graphs (:class:`ChannelGraphModel`) have no
    per-workload ``latency``; their scalar route is the one-point batch.
    """
    if scalar and not isinstance(evaluator, ChannelGraphModel):
        return float(evaluator.latency(workload))
    return float(
        np.asarray(
            evaluator.latency_batch(
                np.array([workload.injection_rate]), workload.message_flits
            )
        )[0]
    )


def _grid_for(scenario: Scenario, saturation_flit_load: float) -> np.ndarray | None:
    """The load grid of the scenario's curve (None when no sweep is asked).

    *Derived* grids follow the Figure-3 convention of
    :func:`repro.core.sweep.load_grid_to_saturation`: uniform steps up to
    ``sweep_fraction`` of saturation, with the zero point replaced by a 2%
    floor (clamped below the second grid point on dense grids) — zero load
    is a degenerate operating point for rate-based *simulators*, and the
    derived grid keeps one convention across backends.

    *Explicit* grids (``scenario.flit_loads``) are the caller's to choose
    and are evaluated exactly as given on both analytical engines — a
    grid containing ``0.0`` yields the exact zero-load latency, never the
    2% floor, and ``model`` and ``batch`` stay bit-identical on it (a
    regression test pins this policy).
    """
    if scenario.flit_loads is not None:
        return np.asarray(scenario.flit_loads, dtype=float)
    if scenario.sweep_points < 2:
        return None
    grid = np.linspace(
        0.0, scenario.sweep_fraction * saturation_flit_load, scenario.sweep_points
    )
    grid[0] = min(0.02 * saturation_flit_load, grid[1] / 2.0)
    return grid


def _curve_metrics(curve: LatencyCurve) -> dict:
    return {
        "label": curve.label,
        "flit_loads": [float(x) for x in curve.flit_loads],
        "latencies": [float(y) for y in curve.latencies],
        "last_stable_load": float(curve.last_stable_load),
    }


def _saturation_metrics(sat: SaturationResult) -> dict:
    return {
        "injection_rate": sat.injection_rate,
        "flit_load": sat.flit_load,
        "lower_bound": sat.lower_bound,
        "upper_bound": sat.upper_bound,
    }


def _run_analytical(scenario: Scenario) -> tuple[dict, dict]:
    """Shared driver of the ``model``, ``batch`` and ``baseline`` backends."""
    scalar = scenario.backend == "model"
    timings: dict[str, float] = {}
    t0 = time.perf_counter()
    with trace_span("run/build", topology=scenario.topology):
        fam, params = _family_for(scenario)
        evaluator = _evaluator_for(scenario)
    timings["build_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    # The Eq. 26 search anchors the derived curve grid, so it must be
    # backend-invariant: auto-detection picks the batched bracketing for
    # every evaluator exposing stability_batch (all families do), and the
    # ``model`` and ``batch`` backends therefore see the same saturation
    # point and the same grid — the bit-identity the parity tests pin
    # covers the whole curve, not just the operating point.
    with trace_span("run/saturation"):
        sat = saturation_injection_rate(evaluator, scenario.message_flits)
    timings["saturation_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    with trace_span("run/evaluate", points=scenario.sweep_points):
        point = _point_latency(evaluator, scenario.workload(), scalar=scalar)
        grid = _grid_for(scenario, sat.flit_load)
        curve = None
        if grid is not None:
            if scalar:
                # Reference engine: one model solve per grid point.
                flits = scenario.message_flits
                lat = np.array(
                    [
                        _point_latency(
                            evaluator,
                            Workload.from_flit_load(float(x), flits),
                            scalar=True,
                        )
                        for x in grid
                    ]
                )
                curve = LatencyCurve(
                    label=f"{scenario.backend} {flits}-flit",
                    message_flits=flits,
                    flit_loads=grid,
                    latencies=lat,
                )
            else:
                curve = latency_sweep(
                    evaluator,
                    scenario.message_flits,
                    grid,
                    label=f"{scenario.backend} {scenario.message_flits}-flit",
                )
    timings["evaluate_s"] = time.perf_counter() - t0

    metrics = {
        "engine": "scalar" if scalar else "batch",
        "variant": _variant_label(evaluator),
        "family": {"name": fam.name, "params": dict(params)},
        "faults": _fault_provenance(scenario),
        "point": {"flit_load": scenario.flit_load, "latency": point},
        "saturation": _saturation_metrics(sat),
        "curve": _curve_metrics(curve) if curve is not None else None,
    }
    return metrics, timings


# --- the simulate backend -----------------------------------------------------------


def _run_simulate(scenario: Scenario) -> tuple[dict, dict]:
    """Independently seeded replication set at the scenario's operating point.

    Under a fault spec the simulators route the same
    :class:`~repro.faults.FaultedTopology` mask the analytical backends
    price, sampling the degraded workload (dead terminals removed), and the
    crosscheck prediction swaps to the degraded stage graph — so
    model-vs-simulation comparisons extend to degraded fabrics unchanged.
    """
    timings: dict[str, float] = {}
    t0 = time.perf_counter()
    with trace_span("run/build", topology=scenario.topology):
        fam, params = _family_for(scenario)
        spec = scenario.spec()
        topo = fam.topology(params)
        faults = scenario.fault_spec()
        fault_info = None
        if faults is not None:
            topo = FaultedTopology(topo, faults)
            fault_info = _fault_provenance(scenario, topo)
            sim_spec = degraded_spec(topo, spec)
            # The degraded model rides along as the crosscheck prediction.
            evaluator = fam.faulted_evaluator(
                params, spec, scenario.message_flits, faults
            )
        else:
            sim_spec = spec
            # The family's reference model rides along as the crosscheck prediction.
            evaluator = fam.evaluator(params, spec, scenario.message_flits)
    timings["build_s"] = time.perf_counter() - t0

    workload = scenario.workload()
    config = scenario.sim_config()
    sim_cls = _SIMULATOR_CLASSES[scenario.simulator]
    traffic_factory = None
    if sim_spec is not None:
        def traffic_factory(seed: int) -> PoissonTraffic:
            return PoissonTraffic(
                scenario.num_processors, workload, seed=seed, spec=sim_spec
            )

    t0 = time.perf_counter()
    with trace_span("run/simulate", replications=scenario.replications):
        rep = run_replications(
            topo,
            workload,
            config,
            replications=scenario.replications,
            simulator_cls=sim_cls,
            keep_samples=False,
            traffic_factory=traffic_factory,
        )
    timings["simulate_s"] = time.perf_counter() - t0

    prediction = _point_latency(evaluator, workload, scalar=False)
    metrics = {
        "engine": scenario.simulator,
        "family": {"name": fam.name, "params": dict(params)},
        "faults": fault_info,
        "point": {
            "flit_load": scenario.flit_load,
            "latency": rep.latency_mean,
            "latency_ci95": rep.latency_ci,
            "throughput": rep.delivered_flit_rate,
            "stable": rep.stable,
            "model_prediction": prediction,
        },
        "saturation": None,
        "curve": None,
        "replication_health": {
            "requested": scenario.replications,
            "completed": len(rep.results),
            "rescued": rep.rescued,
            "failures": [
                {"seed": f.seed, "attempts": f.attempts, "error": f.error}
                for f in rep.failures
            ],
        },
        "replications": [
            {
                "seed": r.config.seed,
                "latency_mean": r.latency_mean,
                "latency_std": r.latency_std,
                "throughput": r.delivered_flit_rate,
                "stable": r.stable,
                "tagged_delivered": r.tagged_delivered,
                "censored_tagged": r.censored_tagged,
            }
            for r in rep.results
        ],
    }
    return metrics, timings


_BACKENDS: dict[str, Callable[[Scenario], tuple[dict, dict]]] = {
    "model": _run_analytical,
    "batch": _run_analytical,
    "baseline": _run_analytical,
    "simulate": _run_simulate,
}
