"""Workload and run-configuration records shared across the library.

The paper (Greenberg & Guan 1997) expresses offered load in two equivalent
ways:

* an *injection rate* ``lambda_0`` in messages per cycle per processor
  (the Poisson arrival rate of Section 2), and
* a *load rate* in flits per cycle per processor (the x-axis of Figure 3),
  which is ``lambda_0 * message_flits``.

:class:`Workload` stores the canonical (rate, length) pair and converts
between the two conventions so that experiments can be written in the
paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigurationError

__all__ = ["Workload", "SimConfig"]


@dataclass(frozen=True)
class Workload:
    """An offered-traffic specification for one operating point.

    Parameters
    ----------
    message_flits:
        Worm length ``s/f`` in flits (fixed-length messages, assumption 2 of
        the paper).  Must be a positive integer.
    injection_rate:
        Poisson message-generation rate ``lambda_0`` per processor per clock
        cycle (assumption 1).  Must be non-negative.
    """

    message_flits: int
    injection_rate: float

    def __post_init__(self) -> None:
        if not isinstance(self.message_flits, int) or self.message_flits <= 0:
            raise ConfigurationError(
                f"message_flits must be a positive integer, got {self.message_flits!r}"
            )
        if not (self.injection_rate >= 0.0):
            raise ConfigurationError(
                f"injection_rate must be non-negative, got {self.injection_rate!r}"
            )

    @classmethod
    def from_flit_load(cls, flit_load: float, message_flits: int) -> "Workload":
        """Build a workload from a load rate in flits/cycle/processor.

        This is the unit of Figure 3's x-axis: ``lambda_0 = flit_load / F``.
        """
        if not (flit_load >= 0.0):
            raise ConfigurationError(f"flit_load must be non-negative, got {flit_load!r}")
        if not isinstance(message_flits, int) or message_flits <= 0:
            raise ConfigurationError(
                f"message_flits must be a positive integer, got {message_flits!r}"
            )
        return cls(message_flits=message_flits, injection_rate=flit_load / message_flits)

    @property
    def flit_load(self) -> float:
        """Offered load in flits per cycle per processor (Figure 3 units)."""
        return self.injection_rate * self.message_flits

    def with_injection_rate(self, injection_rate: float) -> "Workload":
        """Return a copy of this workload at a different injection rate."""
        return replace(self, injection_rate=injection_rate)

    def with_flit_load(self, flit_load: float) -> "Workload":
        """Return a copy of this workload at a different flit load."""
        return Workload.from_flit_load(flit_load, self.message_flits)


@dataclass(frozen=True)
class SimConfig:
    """Measurement methodology for a simulation run.

    The simulators use the standard warmup/measure/drain protocol:

    1. run ``warmup_cycles`` to reach steady state (messages generated in
       this window are simulated but not measured);
    2. *tag* every message generated during the next ``measure_cycles``;
    3. keep simulating until every tagged message is delivered, or until
       ``max_cycles`` elapse (in which case the run is flagged as censored,
       which above saturation is the expected outcome).

    Average latency is computed over tagged messages only; throughput is the
    delivered-flit rate during the measurement window.
    """

    warmup_cycles: float = 5_000.0
    measure_cycles: float = 20_000.0
    max_cycles: float | None = None
    seed: int = 0
    # Extra head-room for the drain phase when ``max_cycles`` is not given:
    # the run is cut off at (warmup + measure) * drain_factor.
    drain_factor: float = 4.0
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ConfigurationError("warmup_cycles must be >= 0")
        if self.measure_cycles <= 0:
            raise ConfigurationError("measure_cycles must be > 0")
        if self.drain_factor < 1.0:
            raise ConfigurationError("drain_factor must be >= 1")
        if self.max_cycles is not None and self.max_cycles <= self.warmup_cycles + self.measure_cycles:
            raise ConfigurationError("max_cycles must exceed warmup_cycles + measure_cycles")

    @property
    def cutoff_cycles(self) -> float:
        """The absolute simulation-time horizon for this run."""
        if self.max_cycles is not None:
            return self.max_cycles
        return (self.warmup_cycles + self.measure_cycles) * self.drain_factor

    @property
    def measure_start(self) -> float:
        return self.warmup_cycles

    @property
    def measure_end(self) -> float:
        return self.warmup_cycles + self.measure_cycles
