"""Generalized (c-child, p-parent) butterfly fat-trees.

The paper's butterfly fat-tree is the ``(c, p) = (4, 2)`` member of a
family: every switch has ``c`` child ports and ``p`` parent ports, levels
hold ``c^(n-l) * p^(l-1)`` switches, and a worm heading up chooses among
``p`` redundant parent links.  The paper's conclusion anticipates exactly
this generalization ("the framework can be extended for networks that
require queuing models with more than two servers"); this module provides
the substrate for it.

Wiring generalizes the paper's formulas (Section 3.1) by replacing the
radix 4 with ``c`` and the redundancy 2 with ``p``:

* processor ``P(0, a)`` connects to ``child_(a mod c)`` of ``S(1, a div c)``;
* ``parent_j`` of ``S(l, a)`` connects to ``child_i`` of
  ``S(l+1, (a div (c * p**(l-1))) * p**l + (a + j * p**(l-1)) mod p**l)``
  for ``j = 0 .. p-1``;
* ``i = (a mod (c * p**(l-1))) div p**(l-1)``.

Switch ``S(l, a)`` covers the leaf block of size ``c**l`` with index
``a div p**(l-1)``; the construction *verifies* structurally (as the 4-2
tree does) that each switch's children partition its block, so shortest
paths are ``2 * nca`` links and any of the ``p`` up-links is equally good.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, RoutingError, TopologyError
from .base import DOWN, UP, LinkClass, RouteOptions

__all__ = ["GeneralizedFatTree", "generalized_nca_level"]


def generalized_nca_level(src: int, dst: int, children: int) -> int:
    """Nearest-common-ancestor level for radix-``children`` leaf blocks."""
    if src < 0 or dst < 0:
        raise ConfigurationError("leaf addresses must be non-negative")
    if children < 2:
        raise ConfigurationError("children must be >= 2")
    level = 0
    a, b = src, dst
    while a != b:
        a //= children
        b //= children
        level += 1
    return level


@dataclass
class _Switch:
    level: int
    address: int
    node_id: int
    block_lo: int
    block_hi: int
    down_links: list[int] = field(default_factory=list)
    down_targets: list[int] = field(default_factory=list)
    subblock_port: list[int] = field(default_factory=list)
    up_links: list[int] = field(default_factory=list)
    up_targets: list[int] = field(default_factory=list)


class GeneralizedFatTree:
    """A ``(children, parents)`` butterfly fat-tree with ``children**levels`` PEs.

    Implements the SimTopology protocol; ``(4, 2)`` reproduces the paper's
    network exactly (verified in the test suite against
    :class:`~repro.topology.butterfly_fattree.ButterflyFatTree`).

    Parameters
    ----------
    children:
        Child ports per switch (block radix ``c``), at least 2.
    parents:
        Parent ports per switch (up-link redundancy ``p``), at least 1.
    levels:
        Number of switch levels ``n``; the machine has ``c**n`` processors.
    """

    def __init__(self, children: int, parents: int, levels: int) -> None:
        if not isinstance(children, int) or children < 2:
            raise ConfigurationError(f"children must be an integer >= 2, got {children!r}")
        if not isinstance(parents, int) or parents < 1:
            raise ConfigurationError(f"parents must be an integer >= 1, got {parents!r}")
        if not isinstance(levels, int) or levels < 1:
            raise ConfigurationError(f"levels must be an integer >= 1, got {levels!r}")
        self.children = children
        self.parents = parents
        self.levels = levels
        self.num_processors = children**levels
        c, p, n = children, parents, levels

        self._switches_at = [0] * (n + 1)
        self._level_base_node = [0] * (n + 1)
        self._switches: dict[int, _Switch] = {}
        node_id = self.num_processors
        for level in range(1, n + 1):
            count = c ** (n - level) * p ** (level - 1)
            self._switches_at[level] = count
            self._level_base_node[level] = node_id
            per_block = p ** (level - 1)
            for a in range(count):
                g = a // per_block
                lo = g * c**level
                self._switches[node_id] = _Switch(
                    level=level,
                    address=a,
                    node_id=node_id,
                    block_lo=lo,
                    block_hi=lo + c**level,
                    down_links=[-1] * c,
                    down_targets=[-1] * c,
                    subblock_port=[-1] * c,
                )
                node_id += 1
        self.num_nodes = node_id

        link_src: list[int] = []
        link_dst: list[int] = []
        link_cls: list[LinkClass] = []

        def add_link(src: int, dst: int, cls: LinkClass) -> int:
            link_src.append(src)
            link_dst.append(dst)
            link_cls.append(cls)
            return len(link_src) - 1

        self._inject_link = [-1] * self.num_processors
        self._inject_target = [-1] * self.num_processors
        for pe in range(self.num_processors):
            sw = self._switch_node(1, pe // c)
            child = pe % c
            up = add_link(pe, sw, LinkClass(UP, 0))
            down = add_link(sw, pe, LinkClass(DOWN, 0))
            self._inject_link[pe] = up
            self._inject_target[pe] = sw
            s = self._switches[sw]
            if s.down_links[child] != -1:
                raise TopologyError(f"child port {child} of switch (1,{pe // c}) wired twice")
            s.down_links[child] = down
            s.down_targets[child] = pe

        for level in range(1, n):
            per_block = p ** (level - 1)
            merge = c * per_block  # level-l switches per level-(l+1) block
            for a in range(self._switches_at[level]):
                child_port = (a % merge) // per_block
                lower = self._switch_node(level, a)
                base = (a // merge) * p**level
                for j in range(p):
                    pa = base + (a + j * per_block) % p**level
                    upper = self._switch_node(level + 1, pa)
                    up = add_link(lower, upper, LinkClass(UP, level))
                    down = add_link(upper, lower, LinkClass(DOWN, level))
                    self._switches[lower].up_links.append(up)
                    self._switches[lower].up_targets.append(upper)
                    ps = self._switches[upper]
                    if ps.down_links[child_port] != -1:
                        raise TopologyError(
                            f"child port {child_port} of switch ({level + 1},{pa}) wired twice"
                        )
                    ps.down_links[child_port] = down
                    ps.down_targets[child_port] = lower

        self.link_src = link_src
        self.link_dst = link_dst
        self.link_class = link_cls
        self.num_links = len(link_src)
        self._verify_and_index()
        self._build_groups()

    # --- construction helpers ---------------------------------------------------

    def _switch_node(self, level: int, address: int) -> int:
        if not (1 <= level <= self.levels):
            raise TopologyError(f"no switch level {level}")
        if not (0 <= address < self._switches_at[level]):
            raise TopologyError(f"switch address {address} out of range at level {level}")
        return self._level_base_node[level] + address

    def _verify_and_index(self) -> None:
        c = self.children
        for s in self._switches.values():
            quarter = (s.block_hi - s.block_lo) // c
            for port in range(c):
                target = s.down_targets[port]
                if target == -1:
                    raise TopologyError(
                        f"switch ({s.level},{s.address}) child port {port} unwired"
                    )
                lo = target if s.level == 1 else self._switches[target].block_lo
                if (lo - s.block_lo) % quarter != 0:
                    raise TopologyError(
                        f"switch ({s.level},{s.address}) child {port} block misaligned"
                    )
                idx = (lo - s.block_lo) // quarter
                if not (0 <= idx < c) or s.subblock_port[idx] != -1:
                    raise TopologyError(
                        f"switch ({s.level},{s.address}) children do not "
                        "partition its leaf block"
                    )
                s.subblock_port[idx] = port
            # All parents must cover the same (containing) block.
            blocks = set()
            for t in s.up_targets:
                parent = self._switches[t]
                blocks.add((parent.block_lo, parent.block_hi))
                if not (parent.block_lo <= s.block_lo and s.block_hi <= parent.block_hi):
                    raise TopologyError(
                        f"parent of ({s.level},{s.address}) does not contain its block"
                    )
            if s.up_targets and len(blocks) != 1:
                raise TopologyError(
                    f"parents of ({s.level},{s.address}) cover different blocks"
                )

    def _build_groups(self) -> None:
        group_of = [-1] * self.num_links
        groups: list[list[int]] = []
        for s in self._switches.values():
            if s.up_links:
                groups.append(list(s.up_links))
                for e in s.up_links:
                    group_of[e] = len(groups) - 1
        for e in range(self.num_links):
            if group_of[e] == -1:
                groups.append([e])
                group_of[e] = len(groups) - 1
        self.groups = groups
        self.link_group = group_of

    # --- SimTopology API ------------------------------------------------------------

    def injection_options(self, src: int) -> RouteOptions:
        """The PE's injection channel (single-server)."""
        if not (0 <= src < self.num_processors):
            raise RoutingError(f"source PE {src} out of range")
        return RouteOptions(
            links=(self._inject_link[src],), next_nodes=(self._inject_target[src],)
        )

    def route_options(self, node: int, dst: int) -> RouteOptions:
        """Adaptive up (any of ``p`` parents) / deterministic down routing."""
        if not (0 <= dst < self.num_processors):
            raise RoutingError(f"destination PE {dst} out of range")
        s = self._switches.get(node)
        if s is None:
            raise RoutingError(f"node {node} is not a switch")
        if s.block_lo <= dst < s.block_hi:
            quarter = (s.block_hi - s.block_lo) // self.children
            port = s.subblock_port[(dst - s.block_lo) // quarter]
            return RouteOptions(
                links=(s.down_links[port],), next_nodes=(s.down_targets[port],)
            )
        if not s.up_links:
            raise RoutingError(
                f"switch ({s.level},{s.address}) has no up links but {dst} is outside its block"
            )
        return RouteOptions(links=tuple(s.up_links), next_nodes=tuple(s.up_targets))

    def path_length(self, src: int, dst: int) -> int:
        """``2 * nca`` links (0 when src == dst)."""
        if src == dst:
            return 0
        return 2 * generalized_nca_level(src, dst, self.children)

    def switches_at_level(self, level: int) -> int:
        """Switch population ``c^(n-l) * p^(l-1)`` at ``level``."""
        if not (1 <= level <= self.levels):
            raise ConfigurationError(f"level must be in [1, {self.levels}]")
        return self._switches_at[level]

    def links_in_class(self, cls: LinkClass) -> list[int]:
        """All link indices belonging to channel class ``cls``."""
        return [e for e, c in enumerate(self.link_class) if c == cls]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"GeneralizedFatTree(c={self.children}, p={self.parents}, "
            f"levels={self.levels}, N={self.num_processors}, links={self.num_links})"
        )
