"""Common interfaces and data types for network topologies.

Both simulators (event-driven and flit-level) are topology-agnostic: they
drive any object satisfying :class:`SimTopology`.  A topology exposes

* processing elements (PEs) numbered ``0 .. num_processors-1``; these double
  as node ids for the PEs, with routing elements (switches) occupying ids
  from ``num_processors`` upward;
* unidirectional *links* numbered ``0 .. num_links-1``;
* *resource groups*: disjoint sets of links that act as one multi-server
  channel.  In the butterfly fat-tree the two up-links out of a switch form
  a two-member group (a worm heading up takes whichever member is free); all
  other links are singleton groups.
* incremental routing: given a worm's current node and destination, the set
  of legal (link, next_node) options for the next hop.

The integer ``kind``/``level`` labels attached to links let measurement code
aggregate per-channel-class statistics that correspond one-to-one with the
channel classes of the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from ..errors import ConfigurationError

__all__ = ["LinkClass", "RouteOptions", "SimTopology", "UP", "DOWN", "links_in_class"]

#: Direction tags for link classes (fat-tree terminology; for cube networks
#: every network link is tagged UP and ejection links DOWN, purely as labels).
UP = 0
DOWN = 1


@dataclass(frozen=True)
class LinkClass:
    """Equivalence class of symmetric links.

    For the butterfly fat-tree the classes are ``(UP, l)`` = channels from
    level ``l`` to ``l+1`` (``l = 0`` is the PE injection link) and
    ``(DOWN, l)`` = channels from level ``l+1`` to ``l`` (``l = 0`` is the
    ejection link to the PE), matching the paper's <i, j> channel labels.
    """

    direction: int
    level: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.direction == UP:
            return f"<{self.level},{self.level + 1}>"
        return f"<{self.level + 1},{self.level}>"


@dataclass(frozen=True)
class RouteOptions:
    """The legal next-hop alternatives for a worm at some node.

    ``links[i]`` carries the worm to ``next_nodes[i]``.  Wormhole adaptivity
    (the fat-tree's random up-link choice) is expressed by multi-element
    options; deterministic routing always yields a single element.
    """

    links: tuple[int, ...]
    next_nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.links) != len(self.next_nodes) or not self.links:
            raise ConfigurationError("RouteOptions requires equal-length, non-empty tuples")


@runtime_checkable
class SimTopology(Protocol):
    """Interface consumed by the simulators (see module docstring)."""

    num_processors: int
    num_links: int
    #: groups[g] lists the member links of resource group g.
    groups: Sequence[Sequence[int]]
    #: link_group[e] is the group index of link e.
    link_group: Sequence[int]
    #: link_class[e] is the LinkClass of link e (for statistics).
    link_class: Sequence[LinkClass]

    def injection_options(self, src: int) -> RouteOptions:
        """First hop (the injection channel) for a worm sourced at PE ``src``."""
        ...

    def route_options(self, node: int, dst: int) -> RouteOptions:
        """Next-hop options for a worm at ``node`` heading to PE ``dst``.

        Never called with ``node == dst``; delivery is detected by the
        engine when a hop's ``next_node`` equals the destination PE.
        """
        ...

    def path_length(self, src: int, dst: int) -> int:
        """Number of links on a shortest path from PE ``src`` to PE ``dst``."""
        ...


def links_in_class(topology, cls: LinkClass) -> list[int]:
    """All link ids of ``topology`` in channel class ``cls``, in id order.

    Link ids follow construction order, which every family documents, so
    the ``index`` of the fault grammar ``direction:level:index``
    (:mod:`repro.faults`) names one stable physical link: ``up:0:1`` is
    PE 1's injection channel on every family, ``up:1:0`` the first
    level-1 network channel.  Topologies may provide their own
    ``links_in_class`` method; this helper falls back to scanning
    ``link_class``.
    """
    method = getattr(topology, "links_in_class", None)
    if method is not None:
        return list(method(cls))
    return [e for e, c in enumerate(topology.link_class) if c == cls]
