"""Unidirectional k-ary n-cube (torus) with e-cube routing.

This is the network family analysed by Dally (IEEE Trans. Computers 1990),
which the paper cites as the canonical prior wormhole model.  We build it to
host the Dally-style baseline model and to let the simulators validate that
baseline the same way they validate the fat-tree model.

Following Dally's setting, each ring is unidirectional: node ``x`` connects
to the node whose coordinate in dimension ``i`` is ``(x_i + 1) mod k``.
E-cube routing corrects dimension 0 first, then 1, and so on, always moving
in the positive direction; a message needs ``(dst_i - src_i) mod k`` hops in
dimension ``i``.
"""

from __future__ import annotations

from ..errors import ConfigurationError, RoutingError
from .base import DOWN, UP, LinkClass, RouteOptions

__all__ = ["KaryNCube"]


class KaryNCube:
    """Unidirectional ``k``-ary ``n``-cube with ``N = k**n`` nodes.

    Node ids: PEs ``0 .. N-1`` (mixed-radix encoding of coordinates,
    dimension 0 least significant); routers ``N + u``.  Link ``u*n + i``
    leaves router ``u`` in dimension ``i``; injection/ejection channels
    follow as in :class:`repro.topology.hypercube.Hypercube`.
    """

    def __init__(self, radix: int, dimensions: int) -> None:
        if not isinstance(radix, int) or radix < 2:
            raise ConfigurationError(f"radix must be an integer >= 2, got {radix!r}")
        if not isinstance(dimensions, int) or dimensions < 1:
            raise ConfigurationError(
                f"dimensions must be a positive integer, got {dimensions!r}"
            )
        self.radix = radix
        self.dimensions = dimensions
        self.num_processors = radix**dimensions
        n = self.num_processors
        self.num_nodes = 2 * n
        self.num_links = n * dimensions + 2 * n

        link_src: list[int] = []
        link_dst: list[int] = []
        link_cls: list[LinkClass] = []
        for u in range(n):
            for i in range(dimensions):
                link_src.append(n + u)
                link_dst.append(n + self._neighbor(u, i))
                link_cls.append(LinkClass(UP, i + 1))
        for u in range(n):
            link_src.append(u)
            link_dst.append(n + u)
            link_cls.append(LinkClass(UP, 0))
        for u in range(n):
            link_src.append(n + u)
            link_dst.append(u)
            link_cls.append(LinkClass(DOWN, 0))
        self.link_src = link_src
        self.link_dst = link_dst
        self.link_class = link_cls
        self.groups = [[e] for e in range(self.num_links)]
        self.link_group = list(range(self.num_links))
        self._inject_base = n * dimensions
        self._eject_base = n * dimensions + n

    def _neighbor(self, u: int, dim: int) -> int:
        """Node one positive hop from ``u`` in ``dim``."""
        k = self.radix
        stride = k**dim
        coord = (u // stride) % k
        return u + stride * (((coord + 1) % k) - coord)

    def coordinates(self, u: int) -> tuple[int, ...]:
        """Mixed-radix coordinates of node ``u`` (dimension 0 first)."""
        coords = []
        for _ in range(self.dimensions):
            coords.append(u % self.radix)
            u //= self.radix
        return tuple(coords)

    # --- SimTopology API ----------------------------------------------------------

    def injection_options(self, src: int) -> RouteOptions:
        if not (0 <= src < self.num_processors):
            raise RoutingError(f"source PE {src} out of range")
        return RouteOptions(
            links=(self._inject_base + src,),
            next_nodes=(self.num_processors + src,),
        )

    def route_options(self, node: int, dst: int) -> RouteOptions:
        """E-cube: fix the lowest unresolved dimension, positive direction."""
        n = self.num_processors
        if not (0 <= dst < n):
            raise RoutingError(f"destination PE {dst} out of range")
        u = node - n
        if not (0 <= u < n):
            raise RoutingError(f"node {node} is not a router")
        if u == dst:
            return RouteOptions(links=(self._eject_base + u,), next_nodes=(dst,))
        uc = self.coordinates(u)
        dc = self.coordinates(dst)
        for i in range(self.dimensions):
            if uc[i] != dc[i]:
                v = self._neighbor(u, i)
                return RouteOptions(
                    links=(u * self.dimensions + i,), next_nodes=(n + v,)
                )
        raise RoutingError("unreachable: coordinates equal but nodes differ")

    def path_length(self, src: int, dst: int) -> int:
        """Ring distances summed over dimensions, plus injection and ejection."""
        if src == dst:
            return 0
        sc = self.coordinates(src)
        dc = self.coordinates(dst)
        hops = sum((d - s) % self.radix for s, d in zip(sc, dc))
        return hops + 2

    def links_in_class(self, cls: LinkClass) -> list[int]:
        """All link indices belonging to channel class ``cls``."""
        return [e for e, c in enumerate(self.link_class) if c == cls]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"KaryNCube(k={self.radix}, n={self.dimensions}, "
            f"N={self.num_processors}, links={self.num_links})"
        )
