"""Butterfly fat-tree topology (Section 3.1 and Figure 2 of the paper).

The network connects ``N = 4**n`` processors through ``n`` levels of 6-port
switches (four child ports, two parent ports).  Node ``(l, a)`` denotes the
switch with address ``a`` at level ``l``; level 0 holds the processors.
There are ``N / 2**(l+1)`` switches at level ``l``.

Wiring (verbatim from the paper):

* processor ``P(0, a)`` connects to ``child_(a mod 4)`` of ``S(1, a div 4)``;
* ``parent0`` of ``S(l, a)`` connects to ``child_i`` of
  ``S(l+1, (a div 2**(l+1)) * 2**l + a mod 2**l)``;
* ``parent1`` of ``S(l, a)`` connects to ``child_i`` of
  ``S(l+1, (a div 2**(l+1)) * 2**l + (a + 2**(l-1)) mod 2**l)``;
* where ``i = (a mod 2**(l+1)) div 2**(l-1)``.

Every switch at level ``l`` reaches exactly the block of ``4**l`` leaves
``[g * 4**l, (g+1) * 4**l)`` with ``g = a div 2**(l-1)`` through its down
ports (verified structurally at construction time); a message goes up as
long as its destination lies outside the current switch's block, choosing
randomly between the two parent links, and then follows the unique down
path.  Shortest paths therefore have length ``2 * nca_level(src, dst)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, RoutingError, TopologyError
from ..util.validation import check_power_of
from .base import DOWN, UP, LinkClass, RouteOptions

__all__ = ["ButterflyFatTree", "bft_nca_level"]


def bft_nca_level(src: int, dst: int) -> int:
    """Level of the nearest common ancestor of leaves ``src`` and ``dst``.

    This is the smallest ``l`` with ``src div 4**l == dst div 4**l``; a
    message from ``src`` to ``dst`` climbs exactly to this level, so the
    shortest path length is ``2 * bft_nca_level(src, dst)`` links.
    """
    if src < 0 or dst < 0:
        raise ConfigurationError("leaf addresses must be non-negative")
    level = 0
    a, b = src, dst
    while a != b:
        a //= 4
        b //= 4
        level += 1
    return level


@dataclass
class _Switch:
    """Internal per-switch routing state."""

    level: int
    address: int
    node_id: int
    block_lo: int  # first leaf reachable downward
    block_hi: int  # one past the last leaf reachable downward
    # down_links[c] = link index leaving child port c (toward level-1 nodes)
    down_links: list[int] = field(default_factory=lambda: [-1, -1, -1, -1])
    down_targets: list[int] = field(default_factory=lambda: [-1, -1, -1, -1])
    # child port covering each quarter of [block_lo, block_hi)
    subblock_port: list[int] = field(default_factory=lambda: [-1, -1, -1, -1])
    up_links: list[int] = field(default_factory=list)
    up_targets: list[int] = field(default_factory=list)


class ButterflyFatTree:
    """The butterfly fat-tree network with ``N = 4**n`` processors.

    Implements :class:`repro.topology.base.SimTopology`.  Construction cost
    is ``O(N)``; routing queries are ``O(1)`` after construction.

    Parameters
    ----------
    num_processors:
        ``N``; must be a power of four, at least 4.
    """

    def __init__(self, num_processors: int) -> None:
        self.num_processors = num_processors
        self.levels = check_power_of("num_processors", num_processors, 4)
        n = self.levels

        # --- switch enumeration -------------------------------------------------
        self._level_offset: list[int] = [0] * (n + 2)
        self._switches_at: list[int] = [0] * (n + 1)
        node_id = num_processors
        self._switches: dict[int, _Switch] = {}
        self._level_base_node: list[int] = [0] * (n + 1)
        for level in range(1, n + 1):
            count = num_processors // (2 ** (level + 1))
            self._switches_at[level] = count
            self._level_base_node[level] = node_id
            for a in range(count):
                g = a // (2 ** (level - 1))
                lo = g * 4**level
                self._switches[node_id] = _Switch(
                    level=level,
                    address=a,
                    node_id=node_id,
                    block_lo=lo,
                    block_hi=lo + 4**level,
                )
                node_id += 1
        self.num_nodes = node_id

        # --- link construction --------------------------------------------------
        link_src: list[int] = []
        link_dst: list[int] = []
        link_cls: list[LinkClass] = []

        def add_link(src: int, dst: int, cls: LinkClass) -> int:
            link_src.append(src)
            link_dst.append(dst)
            link_cls.append(cls)
            return len(link_src) - 1

        # PE <-> level-1 switch links (channels <0,1> and <1,0>).
        self._inject_link: list[int] = [-1] * num_processors
        self._inject_target: list[int] = [-1] * num_processors
        for p in range(num_processors):
            sw = self._switch_node(1, p // 4)
            child = p % 4
            up = add_link(p, sw, LinkClass(UP, 0))
            down = add_link(sw, p, LinkClass(DOWN, 0))
            self._inject_link[p] = up
            self._inject_target[p] = sw
            s = self._switches[sw]
            if s.down_links[child] != -1:
                raise TopologyError(
                    f"child port {child} of switch (1,{p // 4}) wired twice"
                )
            s.down_links[child] = down
            s.down_targets[child] = p

        # Inter-switch links per the paper's parent formulas.
        for level in range(1, n):
            for a in range(self._switches_at[level]):
                child_port = (a % 2 ** (level + 1)) // 2 ** (level - 1)
                lower = self._switch_node(level, a)
                base = (a // 2 ** (level + 1)) * 2**level
                for parent_idx in (0, 1):
                    if parent_idx == 0:
                        pa = base + a % 2**level
                    else:
                        pa = base + (a + 2 ** (level - 1)) % 2**level
                    upper = self._switch_node(level + 1, pa)
                    up = add_link(lower, upper, LinkClass(UP, level))
                    down = add_link(upper, lower, LinkClass(DOWN, level))
                    self._switches[lower].up_links.append(up)
                    self._switches[lower].up_targets.append(upper)
                    ps = self._switches[upper]
                    if ps.down_links[child_port] != -1:
                        raise TopologyError(
                            f"child port {child_port} of switch "
                            f"({level + 1},{pa}) wired twice"
                        )
                    ps.down_links[child_port] = down
                    ps.down_targets[child_port] = lower

        self.link_src = link_src
        self.link_dst = link_dst
        self.link_class = link_cls
        self.num_links = len(link_src)

        self._build_subblock_ports()
        self._build_groups()

    # --- construction helpers ---------------------------------------------------

    def _switch_node(self, level: int, address: int) -> int:
        if not (1 <= level <= self.levels):
            raise TopologyError(f"no switch level {level}")
        if not (0 <= address < self._switches_at[level]):
            raise TopologyError(f"switch address {address} out of range at level {level}")
        return self._level_base_node[level] + address

    def _build_subblock_ports(self) -> None:
        """Map each quarter of a switch's leaf block to the child port serving it.

        Verifies the structural claim that the four children of ``S(l, a)``
        cover exactly the four quarters of its block — the property that
        makes the down path unique.
        """
        for s in self._switches.values():
            quarter = (s.block_hi - s.block_lo) // 4
            for port in range(4):
                target = s.down_targets[port]
                if target == -1:
                    raise TopologyError(
                        f"switch ({s.level},{s.address}) child port {port} unwired"
                    )
                if s.level == 1:
                    lo = target
                else:
                    child = self._switches[target]
                    lo = child.block_lo
                    if child.block_hi - child.block_lo != quarter:
                        raise TopologyError(
                            f"switch ({s.level},{s.address}) child {port} covers "
                            "a block of the wrong size"
                        )
                if (lo - s.block_lo) % quarter != 0:
                    raise TopologyError(
                        f"switch ({s.level},{s.address}) child {port} block misaligned"
                    )
                idx = (lo - s.block_lo) // quarter
                if not (0 <= idx < 4) or s.subblock_port[idx] != -1:
                    raise TopologyError(
                        f"switch ({s.level},{s.address}) children do not "
                        "partition its leaf block"
                    )
                s.subblock_port[idx] = port

    def _build_groups(self) -> None:
        """Form resource groups: up-link pairs share a group, the rest are singletons."""
        group_of = [-1] * self.num_links
        groups: list[list[int]] = []
        for s in self._switches.values():
            if s.up_links:
                if len(s.up_links) != 2:
                    raise TopologyError(
                        f"switch ({s.level},{s.address}) has {len(s.up_links)} up links"
                    )
                groups.append(list(s.up_links))
                for e in s.up_links:
                    group_of[e] = len(groups) - 1
        for e in range(self.num_links):
            if group_of[e] == -1:
                groups.append([e])
                group_of[e] = len(groups) - 1
        self.groups = groups
        self.link_group = group_of

    # --- SimTopology API ----------------------------------------------------------

    def injection_options(self, src: int) -> RouteOptions:
        """The PE's injection channel <0,1> (a single-server resource)."""
        if not (0 <= src < self.num_processors):
            raise RoutingError(f"source PE {src} out of range")
        return RouteOptions(
            links=(self._inject_link[src],),
            next_nodes=(self._inject_target[src],),
        )

    def route_options(self, node: int, dst: int) -> RouteOptions:
        """Adaptive shortest-path routing per Section 3.1.

        Going up, both parent links are offered (the simulator picks a free
        one at random or queues FCFS on the pair); going down, the unique
        child port covering the destination's quarter is offered.
        """
        if not (0 <= dst < self.num_processors):
            raise RoutingError(f"destination PE {dst} out of range")
        s = self._switches.get(node)
        if s is None:
            raise RoutingError(f"node {node} is not a switch")
        if s.block_lo <= dst < s.block_hi:
            quarter = (s.block_hi - s.block_lo) // 4
            port = s.subblock_port[(dst - s.block_lo) // quarter]
            return RouteOptions(
                links=(s.down_links[port],),
                next_nodes=(s.down_targets[port],),
            )
        if not s.up_links:
            raise RoutingError(
                f"switch ({s.level},{s.address}) has no up links but {dst} "
                "is outside its block"
            )
        return RouteOptions(links=tuple(s.up_links), next_nodes=tuple(s.up_targets))

    def path_length(self, src: int, dst: int) -> int:
        """Shortest-path link count: ``2 * nca_level`` (0 when src == dst)."""
        if src == dst:
            return 0
        return 2 * bft_nca_level(src, dst)

    # --- introspection (used by tests, properties, and experiments) ---------------

    def switch(self, level: int, address: int) -> _Switch:
        """Return the internal record of switch ``(level, address)`` (read-only use)."""
        return self._switches[self._switch_node(level, address)]

    def switches_at_level(self, level: int) -> int:
        """Number of switches at ``level`` (``N / 2**(level+1)``)."""
        if not (1 <= level <= self.levels):
            raise ConfigurationError(f"level must be in [1, {self.levels}]")
        return self._switches_at[level]

    def links_in_class(self, cls: LinkClass) -> list[int]:
        """All link indices belonging to channel class ``cls``."""
        return [e for e, c in enumerate(self.link_class) if c == cls]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"ButterflyFatTree(N={self.num_processors}, levels={self.levels}, "
            f"switches={self.num_nodes - self.num_processors}, links={self.num_links})"
        )
