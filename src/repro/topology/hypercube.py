"""Binary hypercube topology with e-cube (dimension-order) routing.

Used to exercise the *general* wormhole model of Section 2 on a second
network (the paper's abstract: "These ideas can also be applied to other
networks") and to host the Draper–Ghosh-style baseline, which was developed
for binary hypercubes.

The hypercube is a *direct* network: every node hosts a PE and a routing
element.  Following the paper's general routing model (Figure 1), each PE is
attached to its RE through an injecting channel and an ejecting channel, and
network links connect REs.  E-cube routing corrects address bits from the
highest differing dimension downwards, which makes the channel-dependency
graph acyclic and deadlock-free.
"""

from __future__ import annotations

from ..errors import ConfigurationError, RoutingError
from .base import DOWN, UP, LinkClass, RouteOptions

__all__ = ["Hypercube"]


class Hypercube:
    """Binary ``d``-cube with ``N = 2**d`` processor/router pairs.

    Node ids: PEs are ``0 .. N-1``; routing element of PE ``u`` is ``N + u``.
    Link layout: link ``u*d + k`` is the dimension-``k`` channel out of
    router ``u`` (toward ``u XOR 2**k``); links ``N*d + u`` are injection
    channels and ``N*d + N + u`` ejection channels.

    Link classes: dimension-``k`` channels are ``LinkClass(UP, k + 1)`` so
    that levels are strictly positive like the fat-tree's network channels;
    injection is ``LinkClass(UP, 0)``, ejection ``LinkClass(DOWN, 0)``.
    """

    def __init__(self, dimension: int) -> None:
        if not isinstance(dimension, int) or dimension < 1:
            raise ConfigurationError(f"dimension must be a positive integer, got {dimension!r}")
        self.dimension = dimension
        self.num_processors = 1 << dimension
        n = self.num_processors
        d = dimension
        self.num_nodes = 2 * n
        self.num_links = n * d + 2 * n

        link_src: list[int] = []
        link_dst: list[int] = []
        link_cls: list[LinkClass] = []
        for u in range(n):
            for k in range(d):
                link_src.append(n + u)
                link_dst.append(n + (u ^ (1 << k)))
                link_cls.append(LinkClass(UP, k + 1))
        for u in range(n):  # injection
            link_src.append(u)
            link_dst.append(n + u)
            link_cls.append(LinkClass(UP, 0))
        for u in range(n):  # ejection
            link_src.append(n + u)
            link_dst.append(u)
            link_cls.append(LinkClass(DOWN, 0))
        self.link_src = link_src
        self.link_dst = link_dst
        self.link_class = link_cls

        # Every link is its own single-server resource.
        self.groups = [[e] for e in range(self.num_links)]
        self.link_group = list(range(self.num_links))

        self._inject_base = n * d
        self._eject_base = n * d + n

    # --- SimTopology API ----------------------------------------------------------

    def injection_options(self, src: int) -> RouteOptions:
        if not (0 <= src < self.num_processors):
            raise RoutingError(f"source PE {src} out of range")
        return RouteOptions(
            links=(self._inject_base + src,),
            next_nodes=(self.num_processors + src,),
        )

    def route_options(self, node: int, dst: int) -> RouteOptions:
        """E-cube: correct the highest differing bit; eject when none differ."""
        n = self.num_processors
        if not (0 <= dst < n):
            raise RoutingError(f"destination PE {dst} out of range")
        u = node - n
        if not (0 <= u < n):
            raise RoutingError(f"node {node} is not a router")
        diff = u ^ dst
        if diff == 0:
            return RouteOptions(links=(self._eject_base + u,), next_nodes=(dst,))
        k = diff.bit_length() - 1
        v = u ^ (1 << k)
        return RouteOptions(links=(u * self.dimension + k,), next_nodes=(n + v,))

    def path_length(self, src: int, dst: int) -> int:
        """Hamming distance plus the injection and ejection channels."""
        if src == dst:
            return 0
        return (src ^ dst).bit_count() + 2

    def links_in_class(self, cls: LinkClass) -> list[int]:
        """All link indices belonging to channel class ``cls``."""
        return [e for e, c in enumerate(self.link_class) if c == cls]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Hypercube(d={self.dimension}, N={self.num_processors}, "
            f"links={self.num_links})"
        )
