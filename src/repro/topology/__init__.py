"""Network topology substrate (S2/S3 in DESIGN.md).

* :mod:`repro.topology.butterfly_fattree` — the paper's butterfly fat-tree
  (Figure 2) with adaptive up/down routing;
* :mod:`repro.topology.hypercube` — binary hypercube with e-cube routing
  (hosts the Draper–Ghosh baseline);
* :mod:`repro.topology.kary_ncube` — unidirectional k-ary n-cube (hosts the
  Dally baseline);
* :mod:`repro.topology.properties` — closed-form and graph-based distance
  and structure properties;
* :mod:`repro.topology.base` — the :class:`SimTopology` protocol consumed by
  the simulators.
"""

from .base import DOWN, UP, LinkClass, RouteOptions, SimTopology
from .butterfly_fattree import ButterflyFatTree, bft_nca_level
from .generalized_fattree import GeneralizedFatTree, generalized_nca_level
from .hypercube import Hypercube
from .kary_ncube import KaryNCube
from .properties import (
    average_distance_by_enumeration,
    bft_average_distance,
    bft_distance_distribution,
    hypercube_average_distance,
    kary_ncube_average_distance,
    to_networkx,
)

__all__ = [
    "DOWN",
    "UP",
    "LinkClass",
    "RouteOptions",
    "SimTopology",
    "ButterflyFatTree",
    "bft_nca_level",
    "GeneralizedFatTree",
    "generalized_nca_level",
    "Hypercube",
    "KaryNCube",
    "average_distance_by_enumeration",
    "bft_average_distance",
    "bft_distance_distribution",
    "hypercube_average_distance",
    "kary_ncube_average_distance",
    "to_networkx",
]
