"""Analytic and graph-based network properties.

The analytical model needs the average message distance ``D_bar`` (Eq. 2 /
Eq. 25) and the destination-distance distribution under uniform traffic.
These are computed in closed form here, and cross-checked against explicit
path enumeration (via networkx on small instances) in the test suite.
"""

from __future__ import annotations

import math
from fractions import Fraction

import networkx as nx

from ..errors import ConfigurationError
from .base import SimTopology

__all__ = [
    "bft_distance_distribution",
    "bft_average_distance",
    "hypercube_average_distance",
    "kary_ncube_average_distance",
    "to_networkx",
    "average_distance_by_enumeration",
]


def bft_distance_distribution(levels: int) -> list[float]:
    """P(nearest common ancestor at level ``l``) for uniform traffic.

    For a butterfly fat-tree with ``N = 4**levels`` leaves and a uniformly
    random destination different from the source, the NCA sits at level
    ``l`` (so the path length is ``2*l``) with probability
    ``(4**l - 4**(l-1)) / (4**levels - 1)`` for ``l = 1..levels``.
    Returns a list indexed ``0..levels`` (index 0 has probability 0).
    """
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels!r}")
    denom = 4**levels - 1
    dist = [0.0]
    for l in range(1, levels + 1):
        dist.append((4**l - 4 ** (l - 1)) / denom)
    return dist


def bft_average_distance(levels: int) -> float:
    """Average shortest-path link count ``D_bar`` of the butterfly fat-tree.

    ``D_bar = sum_l 2*l * P(NCA at level l)``; evaluated in exact rational
    arithmetic before converting to float.
    """
    denom = 4**levels - 1
    total = Fraction(0)
    for l in range(1, levels + 1):
        total += Fraction(2 * l * (4**l - 4 ** (l - 1)), denom)
    return float(total)


def hypercube_average_distance(dimension: int) -> float:
    """Average path length (network hops + injection + ejection) of a d-cube.

    The Hamming distance to a uniform destination (excluding self) averages
    ``d * 2**(d-1) / (2**d - 1)``; the injection and ejection channels add 2.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension!r}")
    n = 1 << dimension
    return dimension * (n // 2) / (n - 1) + 2


def kary_ncube_average_distance(radix: int, dimensions: int) -> float:
    """Average path length of the unidirectional k-ary n-cube (plus inject/eject).

    Per-dimension hop counts are uniform on ``{0..k-1}`` over all
    destinations including self; excluding the self destination rescales by
    ``k**n / (k**n - 1)``.
    """
    if radix < 2 or dimensions < 1:
        raise ConfigurationError("radix must be >= 2 and dimensions >= 1")
    n_nodes = radix**dimensions
    mean_incl_self = dimensions * (radix - 1) / 2.0
    return mean_incl_self * n_nodes / (n_nodes - 1) + 2


def to_networkx(topology: SimTopology) -> nx.DiGraph:
    """Materialize a topology's link list as a directed multigraph-free graph.

    Parallel links (the fat-tree's redundant up pairs) collapse onto a single
    edge; the graph is intended for reachability/distance cross-checks, not
    for capacity analysis.
    """
    g = nx.DiGraph()
    g.add_nodes_from(range(getattr(topology, "num_nodes", topology.num_processors)))
    for e in range(topology.num_links):
        g.add_edge(topology.link_src[e], topology.link_dst[e], link=e)
    return g


def average_distance_by_enumeration(topology: SimTopology) -> float:
    """Mean shortest-path length over all ordered PE pairs (graph-based).

    Exponential in nothing but quadratic in N — use on small instances only
    (the test suite limits itself to a few hundred PEs).
    """
    g = to_networkx(topology)
    n = topology.num_processors
    total = 0
    count = 0
    for src in range(n):
        lengths = nx.single_source_shortest_path_length(g, src)
        for dst in range(n):
            if dst == src:
                continue
            if dst not in lengths:
                raise ConfigurationError(f"PE {dst} unreachable from {src}")
            total += lengths[dst]
            count += 1
    return total / count


def describe_topology(topology: SimTopology) -> dict:
    """Summary statistics used by examples and experiment logs."""
    n = topology.num_processors
    classes: dict[str, int] = {}
    for cls in topology.link_class:
        key = str(cls)
        classes[key] = classes.get(key, 0) + 1
    group_sizes: dict[int, int] = {}
    for members in topology.groups:
        group_sizes[len(members)] = group_sizes.get(len(members), 0) + 1
    return {
        "processors": n,
        "links": topology.num_links,
        "links_per_class": classes,
        "groups_by_size": group_sizes,
    }
