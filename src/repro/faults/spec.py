"""Declarative fault specifications: which links and switches are dead.

A :class:`FaultSpec` is a small, JSON-able value object naming failures
three ways, combinable in one spec:

* **explicit dead links** by channel class and index — the grammar is
  ``direction:level:index`` (e.g. ``up:1:0``).  Link indices count the
  construction-ordered members of that :class:`~repro.topology.base.LinkClass`,
  which every family documents, so ``up:0:1`` is PE 1's injection channel
  on every topology and ``up:1:0`` the first level-1 network channel;
* **explicit dead switches** by ``level:address`` (fat-trees) or
  ``1:address`` (the single router level of direct networks) — killing a
  switch kills every link incident to it;
* **seeded random link failures**, either an exact count
  (``random_link_failures``) or an independent per-link failure
  probability (``random_link_failure_rate``), drawn among *network* links
  (level >= 1; terminal channels fail only explicitly) with
  ``numpy.random.default_rng(seed)`` so a spec resolves to the same
  physical links on every layer that consumes it.

Resolution against a concrete topology happens in :meth:`FaultSpec.resolve`;
the result feeds :class:`~repro.faults.mask.FaultedTopology`, which is what
the model, the simulators, and the design-space search actually consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import ConfigurationError
from ..topology.base import DOWN, UP, LinkClass, links_in_class

__all__ = [
    "FaultSpec",
    "ResolvedFaults",
    "parse_link_ref",
    "parse_switch_ref",
    "link_ref",
]

_DIRECTIONS = {"up": UP, "down": DOWN}
_DIRECTION_NAMES = {UP: "up", DOWN: "down"}


def parse_link_ref(ref: str) -> tuple[int, int, int]:
    """Parse ``direction:level:index`` into ``(direction, level, index)``."""
    parts = str(ref).split(":")
    if len(parts) != 3:
        raise ConfigurationError(
            f"link reference must look like 'up:1:0' (direction:level:index), got {ref!r}"
        )
    direction = _DIRECTIONS.get(parts[0].strip().lower())
    if direction is None:
        raise ConfigurationError(
            f"link direction must be 'up' or 'down', got {parts[0]!r}"
        )
    try:
        level, index = int(parts[1]), int(parts[2])
    except ValueError:
        raise ConfigurationError(
            f"link level and index must be integers, got {ref!r}"
        ) from None
    if level < 0 or index < 0:
        raise ConfigurationError(f"link level and index must be non-negative: {ref!r}")
    return direction, level, index


def parse_switch_ref(ref: str) -> tuple[int, int]:
    """Parse ``level:address`` (or bare ``address``, level 1) for a switch."""
    parts = str(ref).split(":")
    if len(parts) == 1:
        parts = ["1", parts[0]]
    if len(parts) != 2:
        raise ConfigurationError(
            f"switch reference must look like 'level:address', got {ref!r}"
        )
    try:
        level, address = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"switch level and address must be integers, got {ref!r}"
        ) from None
    if level < 1 or address < 0:
        raise ConfigurationError(
            f"switch level must be >= 1 and address >= 0: {ref!r}"
        )
    return level, address


def link_ref(topology, link_id: int) -> str:
    """Canonical ``direction:level:index`` name of physical link ``link_id``."""
    cls = topology.link_class[link_id]
    index = links_in_class(topology, cls).index(link_id)
    return f"{_DIRECTION_NAMES[cls.direction]}:{cls.level}:{index}"


def _resolve_switch_node(topology, ref: str) -> int:
    """Node id of the switch named by ``ref`` on ``topology``."""
    level, address = parse_switch_ref(ref)
    method = getattr(topology, "_switch_node", None)
    if method is not None:
        try:
            return int(method(level, address))
        except ConfigurationError:
            raise
        except Exception as exc:  # TopologyError from the fat-trees
            raise ConfigurationError(
                f"no switch {ref!r} on this topology: {exc}"
            ) from exc
    # Direct networks: one router per PE, addressed as level 1.
    if level != 1:
        raise ConfigurationError(
            f"direct networks have a single router level; use '1:{address}', got {ref!r}"
        )
    if not (0 <= address < topology.num_processors):
        raise ConfigurationError(
            f"router address {address} out of range (0..{topology.num_processors - 1})"
        )
    return topology.num_processors + address


@dataclass(frozen=True)
class ResolvedFaults:
    """A :class:`FaultSpec` bound to one concrete topology.

    ``dead_links`` is the complete physical link-id set (explicit links,
    links incident to dead switches, and the seeded random draws).
    """

    spec: "FaultSpec"
    dead_links: frozenset[int]
    dead_switch_nodes: tuple[int, ...] = ()

    def dead_link_refs(self, topology) -> list[str]:
        """Canonical grammar names of the dead links, in link-id order."""
        return [link_ref(topology, e) for e in sorted(self.dead_links)]


@dataclass(frozen=True)
class FaultSpec:
    """Declarative, JSON-able description of injected failures.

    All fields default to "nothing fails"; :meth:`is_trivial` reports
    whether the spec actually kills anything.
    """

    dead_links: tuple[str, ...] = ()
    dead_switches: tuple[str, ...] = ()
    random_link_failures: int = 0
    random_link_failure_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "dead_links", tuple(str(r) for r in self.dead_links)
        )
        object.__setattr__(
            self, "dead_switches", tuple(str(r) for r in self.dead_switches)
        )
        for ref in self.dead_links:
            parse_link_ref(ref)
        for ref in self.dead_switches:
            parse_switch_ref(ref)
        k = self.random_link_failures
        if isinstance(k, bool) or not isinstance(k, int) or k < 0:
            raise ConfigurationError(
                f"random_link_failures must be a non-negative integer, got {k!r}"
            )
        rate = self.random_link_failure_rate
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise ConfigurationError(
                f"random_link_failure_rate must be a number in [0, 1), got {rate!r}"
            )
        if not (0.0 <= float(rate) < 1.0):
            raise ConfigurationError(
                f"random_link_failure_rate must be in [0, 1), got {rate!r}"
            )
        object.__setattr__(self, "random_link_failure_rate", float(rate))
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigurationError(f"fault seed must be an integer, got {self.seed!r}")

    def is_trivial(self) -> bool:
        """True when the spec kills nothing (equivalent to no faults)."""
        return not (
            self.dead_links
            or self.dead_switches
            or self.random_link_failures
            or self.random_link_failure_rate > 0.0
        )

    # --- serialization -------------------------------------------------------

    def to_json(self) -> dict:
        """Canonical JSON object (round-trips through :meth:`from_json`)."""
        return {
            "dead_links": list(self.dead_links),
            "dead_switches": list(self.dead_switches),
            "random_link_failures": self.random_link_failures,
            "random_link_failure_rate": self.random_link_failure_rate,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data) -> "FaultSpec":
        """Build a spec from a JSON object, rejecting unknown fields."""
        if isinstance(data, FaultSpec):
            return data
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault spec must be a JSON object, got {type(data).__name__}"
            )
        known = {
            "dead_links",
            "dead_switches",
            "random_link_failures",
            "random_link_failure_rate",
            "seed",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        links = data.get("dead_links", ())
        switches = data.get("dead_switches", ())
        if isinstance(links, str) or isinstance(switches, str):
            raise ConfigurationError(
                "dead_links / dead_switches must be lists of references, not a string"
            )
        return cls(
            dead_links=tuple(links),
            dead_switches=tuple(switches),
            random_link_failures=data.get("random_link_failures", 0),
            random_link_failure_rate=data.get("random_link_failure_rate", 0.0),
            seed=data.get("seed", 0),
        )

    # --- resolution ----------------------------------------------------------

    def resolve(self, topology) -> ResolvedFaults:
        """Bind the spec to ``topology``, returning the physical dead set."""
        dead: set[int] = set()
        for ref in self.dead_links:
            direction, level, index = parse_link_ref(ref)
            cls = LinkClass(direction, level)
            ids = links_in_class(topology, cls)
            if not ids:
                raise ConfigurationError(
                    f"no channel class {cls} on this topology (link ref {ref!r})"
                )
            if index >= len(ids):
                raise ConfigurationError(
                    f"link index {index} out of range for class {cls} "
                    f"({len(ids)} links; ref {ref!r})"
                )
            dead.add(ids[index])

        switch_nodes: list[int] = []
        for ref in self.dead_switches:
            node = _resolve_switch_node(topology, ref)
            switch_nodes.append(node)
            for e in range(topology.num_links):
                if topology.link_src[e] == node or topology.link_dst[e] == node:
                    dead.add(e)

        if self.random_link_failures or self.random_link_failure_rate > 0.0:
            eligible = [
                e
                for e in range(topology.num_links)
                if topology.link_class[e].level >= 1 and e not in dead
            ]
            rng = np.random.default_rng(self.seed)
            if self.random_link_failures:
                if self.random_link_failures > len(eligible):
                    raise ConfigurationError(
                        f"cannot fail {self.random_link_failures} links: only "
                        f"{len(eligible)} eligible network links survive"
                    )
                chosen = rng.choice(
                    len(eligible), size=self.random_link_failures, replace=False
                )
                dead.update(eligible[int(i)] for i in chosen)
            if self.random_link_failure_rate > 0.0:
                draws = rng.random(len(eligible))
                dead.update(
                    e
                    for e, r in zip(eligible, draws)
                    if r < self.random_link_failure_rate
                )

        return ResolvedFaults(
            spec=self,
            dead_links=frozenset(dead),
            dead_switch_nodes=tuple(switch_nodes),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        if self.dead_links:
            parts.append(f"links={','.join(self.dead_links)}")
        if self.dead_switches:
            parts.append(f"switches={','.join(self.dead_switches)}")
        if self.random_link_failures:
            parts.append(f"random={self.random_link_failures}")
        if self.random_link_failure_rate > 0.0:
            parts.append(f"rate={self.random_link_failure_rate:g}")
        if self.random_link_failures or self.random_link_failure_rate > 0.0:
            parts.append(f"seed={self.seed}")
        return "faults(" + (", ".join(parts) if parts else "none") + ")"
