"""Fault injection and degraded-mode evaluation.

The paper's fat-tree analysis assumes a pristine network; this package lets
every layer of the library — analytical model, simulators, Scenario/Run
facade, and the design-space search — evaluate the *same* network with some
links or switches dead:

* :class:`FaultSpec` — declarative, JSON-able description of failures
  (explicit ``direction:level:index`` link refs, ``level:address`` switch
  refs, or seeded random failure counts/rates);
* :class:`FaultedTopology` — a SimTopology wrapper that masks dead links
  out of the routing options and rebuilds the resource groups so surviving
  pool members keep sharing;
* :class:`DegradedTrafficSpec` / :func:`degraded_spec` — the workload with
  dead terminals removed symmetrically and surviving rows renormalized.

Unreachability between two *surviving* terminals raises
:class:`~repro.errors.PartitionedNetworkError`; loss of a terminal merely
shrinks the workload.
"""

from .mask import DegradedTrafficSpec, FaultedTopology, degraded_spec
from .spec import (
    FaultSpec,
    ResolvedFaults,
    link_ref,
    parse_link_ref,
    parse_switch_ref,
)

__all__ = [
    "FaultSpec",
    "ResolvedFaults",
    "FaultedTopology",
    "DegradedTrafficSpec",
    "degraded_spec",
    "link_ref",
    "parse_link_ref",
    "parse_switch_ref",
]
