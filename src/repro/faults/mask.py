"""Fault masking: route, load, and simulate around dead links.

:class:`FaultedTopology` wraps any :class:`~repro.topology.base.SimTopology`
and *filters* dead alternatives out of the base topology's routing options —
it never invents detours, so every surviving path keeps its nominal length
and the model's distance accounting (Eq. 25's ``d``-terms) stays valid on
the degraded fabric.  Resource groups are rebuilt so that surviving members
of a multi-server pool stay pooled: when one of a fat-tree switch's two
up-links dies, the sibling becomes a one-server group and the stage graph
prices the redundancy loss automatically.

Terminal semantics: a PE whose injection channels are all dead, or that has
no surviving incoming link, is a *dead terminal* — it is removed from the
workload symmetrically (it neither sends nor receives) by
:class:`DegradedTrafficSpec`, which renormalizes every surviving source's
destination row back to its original activity.  A surviving source
addressing a surviving destination with no surviving route is a genuine
partition and raises
:class:`~repro.errors.PartitionedNetworkError` from the routing layer.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, PartitionedNetworkError
from ..topology.base import RouteOptions
from ..traffic.spec import TrafficSpec, UniformSpec
from .spec import FaultSpec, ResolvedFaults

__all__ = ["FaultedTopology", "DegradedTrafficSpec", "degraded_spec"]


class FaultedTopology:
    """A topology with some links dead; satisfies the SimTopology protocol.

    ``faults`` may be a :class:`FaultSpec`, an already-bound
    :class:`ResolvedFaults`, or a JSON mapping for
    :meth:`FaultSpec.from_json`.  Raises
    :class:`~repro.errors.PartitionedNetworkError` immediately when fewer
    than two terminals survive (there is no traffic left to model).
    """

    def __init__(self, base, faults) -> None:
        self.base = base
        if isinstance(faults, ResolvedFaults):
            resolved = faults
        elif isinstance(faults, FaultSpec):
            resolved = faults.resolve(base)
        else:
            resolved = FaultSpec.from_json(faults).resolve(base)
        self.faults = resolved
        self.dead_links = resolved.dead_links

        self.num_processors = base.num_processors
        self.num_links = base.num_links
        self.num_nodes = getattr(base, "num_nodes", None)
        self.link_class = base.link_class
        self.link_src = base.link_src
        self.link_dst = base.link_dst

        # Rebuild resource groups: surviving members of each base group stay
        # pooled; every dead link becomes a singleton group that routing
        # never requests (the event engine indexes waiters by group, so the
        # group tables must still cover all num_links ids).
        groups: list[list[int]] = []
        link_group = [-1] * base.num_links
        for g in base.groups:
            alive = [e for e in g if e not in self.dead_links]
            if alive:
                groups.append(alive)
                for e in alive:
                    link_group[e] = len(groups) - 1
        for e in sorted(self.dead_links):
            groups.append([e])
            link_group[e] = len(groups) - 1
        self.groups = groups
        self.link_group = link_group

        # Dead terminals: PEs that can no longer send or no longer receive.
        n = base.num_processors
        can_send = [False] * n
        can_receive = [False] * n
        for e in range(base.num_links):
            if e in self.dead_links:
                continue
            src, dst = base.link_src[e], base.link_dst[e]
            if src < n:
                can_send[src] = True
            if dst < n:
                can_receive[dst] = True
        self.dead_terminals = frozenset(
            pe for pe in range(n) if not (can_send[pe] and can_receive[pe])
        )
        live = n - len(self.dead_terminals)
        if live < 2:
            raise PartitionedNetworkError(
                f"faults leave fewer than two live terminals ({live} of {n})"
            )

    # --- SimTopology API -----------------------------------------------------

    def injection_options(self, src: int) -> RouteOptions:
        return self._filter(
            self.base.injection_options(src),
            f"PE {src} has no surviving injection channel",
        )

    def route_options(self, node: int, dst: int) -> RouteOptions:
        return self._filter(
            self.base.route_options(node, dst),
            f"no surviving route from node {node} toward PE {dst}",
        )

    def _filter(self, opts: RouteOptions, message: str) -> RouteOptions:
        keep = [i for i, e in enumerate(opts.links) if e not in self.dead_links]
        if len(keep) == len(opts.links):
            return opts
        if not keep:
            raise PartitionedNetworkError(message)
        return RouteOptions(
            links=tuple(opts.links[i] for i in keep),
            next_nodes=tuple(opts.next_nodes[i] for i in keep),
        )

    def path_length(self, src: int, dst: int) -> int:
        """Nominal shortest-path length (masking only filters minimal routes)."""
        return self.base.path_length(src, dst)

    def describe(self) -> str:
        """One-line human-readable summary."""
        base = self.base.describe() if hasattr(self.base, "describe") else repr(self.base)
        extra = (
            f", {len(self.dead_terminals)} dead terminal(s)"
            if self.dead_terminals
            else ""
        )
        return f"{base} [{len(self.dead_links)} dead link(s){extra}]"

    def __getattr__(self, name: str):
        if name == "base":
            raise AttributeError(name)  # lint: allow-raise (getattr protocol)
        return getattr(self.base, name)


class DegradedTrafficSpec(TrafficSpec):
    """``base`` with dead terminals removed symmetrically.

    Dead terminals neither send nor receive.  Each surviving source's
    destination row is renormalized back to its original activity, so
    per-source injection rates are preserved and the only lost traffic is
    the dead terminals' own.  A surviving source whose entire row
    addressed dead terminals becomes silent (activity 0) — the usual
    silent-source convention, *not* a partition.
    """

    def __init__(self, base: TrafficSpec, dead_terminals) -> None:
        self.base = base
        self.dead_terminals = frozenset(int(p) for p in dead_terminals)
        self.name = f"degraded({base.name})"

    def validate(self, num_pes: int) -> None:
        self.base.validate(num_pes)
        for pe in self.dead_terminals:
            if not (0 <= pe < num_pes):
                raise ConfigurationError(
                    f"dead terminal {pe} out of range (0..{num_pes - 1})"
                )

    def destination_matrix(self, num_pes: int) -> np.ndarray:
        self.validate(num_pes)
        m = np.array(self.base.destination_matrix(num_pes), dtype=float, copy=True)
        if not self.dead_terminals:
            return m
        original = m.sum(axis=1)
        dead = sorted(self.dead_terminals)
        m[dead, :] = 0.0
        m[:, dead] = 0.0
        remaining = m.sum(axis=1)
        scale = np.ones(num_pes)
        renorm = remaining > 0.0
        scale[renorm] = original[renorm] / remaining[renorm]
        return m * scale[:, None]

    def describe(self) -> str:
        return (
            f"{self.base.describe()} "
            f"[degraded: {len(self.dead_terminals)} dead terminal(s)]"
        )


def degraded_spec(topology, spec: TrafficSpec | None = None) -> TrafficSpec:
    """The workload actually offered to a (possibly faulted) topology.

    Returns ``spec`` (or uniform) unchanged when ``topology`` has no dead
    terminals; otherwise wraps it in :class:`DegradedTrafficSpec`.
    """
    base = spec if spec is not None else UniformSpec()
    dead = getattr(topology, "dead_terminals", None)
    if not dead:
        return base
    return DegradedTrafficSpec(base, dead)
