"""Design-space exploration: SLO-driven search over topologies and cost.

The paper's pitch is that an accurate analytical model makes design-space
exploration cheap — "which fat-tree sustains this workload?" answered in
milliseconds instead of simulation-hours.  This package is that product
layer:

* declare a :class:`DesignSpace` (topology-family parameter grids ×
  message lengths × traffic patterns × buffer depths),
* state :class:`Requirements` (latency SLO at a demand point, minimum
  saturation headroom, optional budget),
* call :func:`explore` — candidates evaluate through the batch engine
  (memoized, optionally across worker processes), hardware is priced by a
  pluggable :class:`~repro.design.cost.CostModel`, and the result exposes
  the feasible set, the cheapest feasible design, the largest feasible
  configuration and the latency/cost/headroom Pareto frontier.

>>> from repro.design import DesignSpace, Requirements, bft_space, explore
>>> space = DesignSpace(
...     families=(bft_space((16, 64, 256)),),
...     message_lengths=(16, 32),
... )
>>> result = explore(space, Requirements(demand_flit_load=0.02, latency_slo=75.0))
>>> result.largest_feasible() is not None
True
"""

from .cost import PORT_COUNT_COST, CostBreakdown, CostModel, LinearCostModel
from .evaluate import (
    CandidateMetrics,
    Evaluation,
    clear_metrics_cache,
    evaluate_candidate,
    metrics_cache_size,
    metrics_for,
)
from .families import (
    DesignFamily,
    Hardware,
    available_families,
    design_family,
    register_family,
)
from .pareto import Objective, dominates, pareto_frontier
from .search import ExplorationResult, Requirements, explore
from .space import (
    Candidate,
    DesignSpace,
    Expansion,
    FamilySpace,
    SkippedCandidate,
    bft_space,
    generalized_fattree_space,
    hypercube_space,
    kary_ncube_space,
)

__all__ = [
    "Candidate",
    "CandidateMetrics",
    "CostBreakdown",
    "CostModel",
    "DesignFamily",
    "DesignSpace",
    "Evaluation",
    "Expansion",
    "ExplorationResult",
    "FamilySpace",
    "Hardware",
    "LinearCostModel",
    "Objective",
    "PORT_COUNT_COST",
    "Requirements",
    "SkippedCandidate",
    "available_families",
    "bft_space",
    "clear_metrics_cache",
    "design_family",
    "dominates",
    "evaluate_candidate",
    "explore",
    "generalized_fattree_space",
    "hypercube_space",
    "kary_ncube_space",
    "metrics_cache_size",
    "metrics_for",
    "pareto_frontier",
    "register_family",
]
