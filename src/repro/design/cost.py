"""Pluggable hardware cost models (Solnushkin-style).

Solnushkin's automated fat-tree design procedure attaches a cost figure to
every enumerated network and returns the cheapest design meeting the
requirement.  This module provides the same ingredient for the explorer: a
cost model is any object with a ``cost(candidate, hardware)`` method
returning a :class:`CostBreakdown`; the hardware inventory (switch, link
and port counts) comes from :class:`~repro.design.families.Hardware`.

:class:`LinearCostModel` is the default — a linear price over switches,
links, ports and buffer storage (``ports * buffer_depth`` flits, making
buffer depth a real cost/performance trade-off even though the analytical
latency model is buffer-independent).  :data:`PORT_COUNT_COST` prices by
port count alone, the classic proxy for switch silicon area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..errors import ConfigurationError
from .families import Hardware
from .space import Candidate

__all__ = ["CostBreakdown", "CostModel", "LinearCostModel", "PORT_COUNT_COST"]


@dataclass(frozen=True)
class CostBreakdown:
    """One candidate's priced bill of materials."""

    switches: float
    links: float
    ports: float
    buffers: float

    @property
    def total(self) -> float:
        return self.switches + self.links + self.ports + self.buffers

    def as_dict(self) -> dict[str, float]:
        return {
            "switches": self.switches,
            "links": self.links,
            "ports": self.ports,
            "buffers": self.buffers,
            "total": self.total,
        }


class CostModel(Protocol):
    """Anything that can price a candidate's hardware inventory."""

    def cost(self, candidate: Candidate, hardware: Hardware) -> CostBreakdown: ...


@dataclass(frozen=True)
class LinearCostModel:
    """Linear price per switch, link, port and buffered flit of storage.

    The defaults keep the components on comparable scales for the machine
    sizes the paper studies; they are unit-free weights, not dollars —
    swap in site-specific figures for real procurement studies.
    """

    switch_cost: float = 50.0
    link_cost: float = 2.0
    port_cost: float = 5.0
    buffer_flit_cost: float = 0.25

    def __post_init__(self) -> None:
        for name in ("switch_cost", "link_cost", "port_cost", "buffer_flit_cost"):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be non-negative")

    def cost(self, candidate: Candidate, hardware: Hardware) -> CostBreakdown:
        return CostBreakdown(
            switches=self.switch_cost * hardware.switches,
            links=self.link_cost * hardware.links,
            ports=self.port_cost * hardware.ports,
            buffers=self.buffer_flit_cost * hardware.ports * candidate.buffer_depth,
        )


#: Price by switch-port count only (the silicon-area proxy).
PORT_COUNT_COST = LinearCostModel(
    switch_cost=0.0, link_cost=0.0, port_cost=1.0, buffer_flit_cost=0.0
)
