"""The exploration driver: requirements in, sized designs out.

:func:`explore` is the subsystem's front door.  It expands a
:class:`~repro.design.space.DesignSpace` into candidates, evaluates each
through the batch engine (memoized, optionally fanned out across worker
processes), prices the hardware with a pluggable cost model, checks every
candidate against the :class:`Requirements`, and returns an
:class:`ExplorationResult` exposing

* the full evaluation table,
* the feasible set and the *cheapest feasible* design (Solnushkin's
  selection rule),
* the *largest feasible* configuration (the capacity-planning question:
  which machine still meets the SLO?), and
* the latency / cost / headroom Pareto frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..util.tables import format_table
from .cost import CostModel, LinearCostModel
from .evaluate import Evaluation, _metrics_key, faulted_metrics_for, metrics_for
from .families import design_family
from .pareto import Objective, pareto_frontier
from .space import DesignSpace, SkippedCandidate

__all__ = ["Requirements", "ExplorationResult", "explore"]


@dataclass(frozen=True)
class Requirements:
    """What a feasible design must deliver.

    Attributes
    ----------
    demand_flit_load:
        The operating point, in flits/cycle/PE (Figure-3 units); latency
        and headroom are judged here.
    latency_slo:
        Maximum acceptable mean latency (cycles) at the demand point.
    min_headroom:
        Minimum ratio of saturation load to demand load.  ``1.0`` merely
        requires a steady state at the demand; ``1.5`` keeps 50% margin
        before the knee.
    max_cost:
        Optional budget cap on the cost model's total.
    survives_faults:
        When positive, every feasible design must *also* meet the latency
        SLO and headroom floor with this many seeded random link failures
        injected (drawn among network links with
        ``numpy.random.default_rng(fault_seed)``; see
        :class:`~repro.faults.FaultSpec`).  A candidate the failures
        partition is infeasible outright.
    fault_seed:
        Seed of the random failure draw (same seed -> same dead links on
        every candidate of the same family/size, so comparisons are fair).
    """

    demand_flit_load: float
    latency_slo: float
    min_headroom: float = 1.0
    max_cost: float | None = None
    survives_faults: int = 0
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if not (self.demand_flit_load > 0.0) or not math.isfinite(self.demand_flit_load):
            raise ConfigurationError("demand_flit_load must be positive and finite")
        if not (self.latency_slo > 0.0):
            raise ConfigurationError("latency_slo must be positive")
        if not (self.min_headroom >= 0.0):
            raise ConfigurationError("min_headroom must be non-negative")
        if self.max_cost is not None and not (self.max_cost > 0.0):
            raise ConfigurationError("max_cost must be positive when given")
        if (
            isinstance(self.survives_faults, bool)
            or not isinstance(self.survives_faults, int)
            or self.survives_faults < 0
        ):
            raise ConfigurationError(
                "survives_faults must be a non-negative integer"
            )
        if isinstance(self.fault_seed, bool) or not isinstance(self.fault_seed, int):
            raise ConfigurationError("fault_seed must be an integer")

    def fault_spec(self):
        """The random-failure :class:`~repro.faults.FaultSpec`, or None."""
        if self.survives_faults <= 0:
            return None
        from ..faults import FaultSpec

        return FaultSpec(
            random_link_failures=self.survives_faults, seed=self.fault_seed
        )

    def fault_violations(self, degraded) -> tuple[str, ...]:
        """Requirement clauses the degraded metrics break (empty = survives).

        ``degraded`` is the candidate's degraded-mode
        :class:`~repro.design.evaluate.CandidateMetrics`, or None when the
        seeded failures partitioned its network.
        """
        if self.survives_faults <= 0:
            return ()
        k, s = self.survives_faults, self.fault_seed
        if degraded is None:
            return (f"partitioned under {k} link failure(s) (seed {s})",)
        out: list[str] = []
        if not (math.isfinite(degraded.latency) and degraded.latency <= self.latency_slo):
            out.append(
                f"degraded latency {degraded.latency:.4g} > SLO "
                f"{self.latency_slo:.4g} under {k} link failure(s)"
            )
        headroom = degraded.headroom(self.demand_flit_load)
        if not (headroom >= self.min_headroom):
            out.append(
                f"degraded headroom {headroom:.3g}x < {self.min_headroom:.3g}x "
                f"under {k} link failure(s)"
            )
        return tuple(out)

    def violations(
        self, latency: float, headroom: float, total_cost: float
    ) -> tuple[str, ...]:
        """The requirement clauses this operating point breaks (empty = feasible)."""
        out: list[str] = []
        if not (math.isfinite(latency) and latency <= self.latency_slo):
            out.append(f"latency {latency:.4g} > SLO {self.latency_slo:.4g}")
        if not (headroom >= self.min_headroom):
            out.append(f"headroom {headroom:.3g}x < {self.min_headroom:.3g}x")
        if self.max_cost is not None and total_cost > self.max_cost:
            out.append(f"cost {total_cost:.4g} > budget {self.max_cost:.4g}")
        return tuple(out)


@dataclass(frozen=True)
class ExplorationResult:
    """Everything :func:`explore` learned about one design space."""

    requirements: Requirements
    evaluations: tuple[Evaluation, ...]
    skipped: tuple[SkippedCandidate, ...]

    @property
    def feasible(self) -> tuple[Evaluation, ...]:
        """Evaluations meeting every requirement clause."""
        return tuple(e for e in self.evaluations if e.feasible)

    @property
    def cheapest_feasible(self) -> Evaluation | None:
        """The feasible design with the lowest total cost (Solnushkin's rule)."""
        feasible = self.feasible
        if not feasible:
            return None
        return min(feasible, key=lambda e: (e.cost.total, e.latency))

    def largest_feasible(self) -> Evaluation | None:
        """The feasible design maximizing ``(num_processors, message_flits)``.

        Matches the selection rule of the original capacity-planning sweep
        (``max(feasible)`` over ``(N, flits)`` pairs), so the explorer and
        the legacy scalar loop agree by construction on the same inputs.
        """
        feasible = self.feasible
        if not feasible:
            return None
        return max(
            feasible,
            key=lambda e: (e.candidate.num_processors, e.candidate.message_flits),
        )

    def pareto(self) -> tuple[Evaluation, ...]:
        """Latency / cost / headroom frontier over all evaluated designs.

        Minimizes latency and total cost, maximizes headroom; saturated
        designs (non-finite latency) never appear.  Infeasible designs may:
        the frontier describes the trade-off surface, not the requirement.
        """
        return pareto_frontier(
            self.evaluations,
            (
                Objective(lambda e: e.latency, "min"),
                Objective(lambda e: e.cost.total, "min"),
                Objective(lambda e: e.headroom, "max"),
            ),
        )

    # --- rendering ---------------------------------------------------------------

    def as_rows(self, frontier: tuple[Evaluation, ...] | None = None) -> list[tuple]:
        """Table rows (one per evaluation) for :func:`format_table`.

        ``frontier`` lets callers reuse an already-computed Pareto set
        (the dominance scan is quadratic in the evaluation count).
        """
        pareto = set(id(e) for e in (self.pareto() if frontier is None else frontier))
        rows = []
        for e in self.evaluations:
            rows.append(
                (
                    e.candidate.family,
                    ", ".join(f"{k}={v}" for k, v in e.candidate.params),
                    e.candidate.num_processors,
                    e.candidate.message_flits,
                    e.candidate.pattern,
                    e.candidate.buffer_depth,
                    e.latency,
                    e.saturation_flit_load,
                    e.headroom,
                    e.cost.total,
                    "yes" if e.feasible else "no",
                    "*" if id(e) in pareto else "",
                )
            )
        return rows

    _HEADERS = (
        "family",
        "parameters",
        "N",
        "flits",
        "pattern",
        "buf",
        "latency @ demand",
        "sat load",
        "headroom (x)",
        "cost",
        "feasible",
        "pareto",
    )

    def render(self) -> str:
        """Human-readable report: table, verdicts, skips."""
        req = self.requirements
        frontier = self.pareto()
        lines = [
            format_table(
                list(self._HEADERS),
                self.as_rows(frontier),
                title=(
                    f"Design-space exploration: {len(self.evaluations)} candidates, "
                    f"SLO <= {req.latency_slo:.4g} cycles @ "
                    f"{req.demand_flit_load:.4g} fl/cyc/PE, "
                    f"headroom >= {req.min_headroom:.3g}x"
                    + (f", cost <= {req.max_cost:.4g}" if req.max_cost is not None else "")
                    + (
                        f", survives {req.survives_faults} link failure(s) "
                        f"(seed {req.fault_seed})"
                        if req.survives_faults > 0
                        else ""
                    )
                ),
            )
        ]
        cheapest = self.cheapest_feasible
        largest = self.largest_feasible()
        lines.append("")
        lines.append(f"feasible designs: {len(self.feasible)} / {len(self.evaluations)}")
        if cheapest is not None:
            lines.append(
                f"cheapest feasible: {cheapest.candidate.label()} "
                f"(cost {cheapest.cost.total:.4g}, latency {cheapest.latency:.4g})"
            )
        if largest is not None:
            lines.append(
                f"largest feasible:  {largest.candidate.label()} "
                f"(latency {largest.latency:.4g}, headroom {largest.headroom:.3g}x)"
            )
        if cheapest is None:
            lines.append("no design meets the requirements")
        if frontier:
            lines.append(f"Pareto frontier ({len(frontier)} designs):")
            for e in frontier:
                lines.append(
                    f"  {e.candidate.label()}: latency {e.latency:.4g}, "
                    f"cost {e.cost.total:.4g}, headroom {e.headroom:.3g}x"
                )
        if self.skipped:
            lines.append(f"skipped combinations ({len(self.skipped)}):")
            for s in self.skipped:
                inner = ", ".join(f"{k}={v}" for k, v in s.params)
                lines.append(
                    f"  {s.family}({inner}) f={s.message_flits} {s.pattern}: {s.reason}"
                )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable report (JSON-safe: no non-finite floats)."""
        req = self.requirements
        cheapest = self.cheapest_feasible
        largest = self.largest_feasible()
        return {
            "requirements": {
                "demand_flit_load": req.demand_flit_load,
                "latency_slo": req.latency_slo,
                "min_headroom": req.min_headroom,
                "max_cost": req.max_cost,
                "survives_faults": req.survives_faults,
                "fault_seed": req.fault_seed,
            },
            "evaluations": [e.as_json() for e in self.evaluations],
            "feasible_count": len(self.feasible),
            "cheapest_feasible": cheapest.as_json() if cheapest else None,
            "largest_feasible": largest.as_json() if largest else None,
            "pareto": [e.as_json() for e in self.pareto()],
            "skipped": [
                {
                    "family": s.family,
                    "params": dict(s.params),
                    "message_flits": s.message_flits,
                    "pattern": s.pattern,
                    "reason": s.reason,
                }
                for s in self.skipped
            ],
        }

    def to_run_result(self, *, label: str = ""):
        """This exploration as a ``kind="exploration"`` run-registry record.

        The record's ``metrics["exploration"]`` block carries the verdicts
        that should diff across PRs — feasible set, cheapest/largest
        selections and the Pareto frontier — but not the full evaluation
        table (regenerate it from the requirements when needed), so
        frontier drift shows up in ``repro runs diff`` without drowning it
        in per-candidate noise.
        """
        from ..runs import RunResult
        from ..runs.runner import provenance_stamp

        report = self.to_json()
        cheapest = report["cheapest_feasible"]
        largest = report["largest_feasible"]
        metrics = {
            "exploration": {
                "requirements": report["requirements"],
                "candidates": len(self.evaluations),
                "feasible_count": report["feasible_count"],
                "skipped_count": len(self.skipped),
                "cheapest_feasible": cheapest,
                "largest_feasible": largest,
                "pareto": report["pareto"],
                "feasible": [e.as_json() for e in self.feasible],
            }
        }
        return RunResult(
            metrics=metrics,
            scenario=None,
            kind="exploration",
            label=label,
            provenance=provenance_stamp(backend="design"),
        )


def explore(
    space: DesignSpace,
    requirements: Requirements,
    *,
    cost_model: CostModel | None = None,
    processes: int = 1,
    chunksize: int = 1,
) -> ExplorationResult:
    """Search ``space`` for designs meeting ``requirements``.

    Expansion reports (never silently drops) pattern-incompatible
    combinations; evaluation is memoized per candidate and demand point and
    fans uncached candidates across ``processes`` workers; every candidate
    is then priced with ``cost_model`` (default :class:`LinearCostModel`)
    and judged against the requirements.
    """
    cost_model = cost_model if cost_model is not None else LinearCostModel()
    expansion = space.expand()
    if not expansion.candidates:
        raise ConfigurationError(
            "design space expands to zero evaluable candidates"
            + (
                f" ({len(expansion.skipped)} combinations skipped: "
                f"{expansion.skipped[0].reason}, ...)"
                if expansion.skipped
                else ""
            )
        )
    metrics = metrics_for(
        expansion.candidates,
        requirements.demand_flit_load,
        processes=processes,
        chunksize=chunksize,
    )
    fault_spec = requirements.fault_spec()
    evaluations = []
    for cand in expansion.candidates:
        m = metrics[_metrics_key(cand, requirements.demand_flit_load)]
        hardware = design_family(cand.family).hardware(cand.params_dict)
        cost = cost_model.cost(cand, hardware)
        headroom = m.headroom(requirements.demand_flit_load)
        violations = requirements.violations(m.latency, headroom, cost.total)
        degraded = None
        if fault_spec is not None:
            try:
                degraded = faulted_metrics_for(
                    cand, requirements.demand_flit_load, fault_spec
                )
            except ConfigurationError as exc:
                # e.g. a candidate too small to lose that many links; it
                # cannot meet the survivability clause either way.
                violations = violations + (f"fault injection impossible: {exc}",)
            else:
                violations = violations + requirements.fault_violations(degraded)
        evaluations.append(
            Evaluation(
                candidate=cand,
                metrics=m,
                hardware=hardware,
                cost=cost,
                headroom=headroom,
                violations=violations,
                degraded=degraded,
            )
        )
    return ExplorationResult(
        requirements=requirements,
        evaluations=tuple(evaluations),
        skipped=expansion.skipped,
    )
