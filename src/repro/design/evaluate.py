"""Candidate evaluation: batch-engine metrics, memoized and fanned out.

Each candidate costs two model-side quantities:

* the mean latency at the requirement's demand point — one
  ``latency_batch`` evaluation for batch-capable evaluators (every fat-tree
  and stage-graph model), scalar ``latency`` for the Dally torus baseline;
* the saturation flit load — the vectorized Eq. 26 bracket
  (:func:`~repro.core.throughput.saturation_injection_rate`, a handful of
  ``stability_batch`` solves) where available, the closed-form capacity
  bound where the evaluator provides one, the scalar bisection otherwise.

Results are *memoized* in two layers keyed by the model identity
``(family, params, message_flits, spec)``: the saturation search and the
zero-load limit are demand-independent and cached once per model, while
the demand-point latency is cached per ``(model, demand)``.  Candidates
differing only in buffer depth (a cost-model knob) share one evaluation,
repeated :func:`~repro.design.search.explore` calls over overlapping
spaces only pay for the new points, and re-exploring the same space at a
*different* demand re-runs only the cheap single-point latency solves —
never the saturation ladders.  Uncached work fans out across worker
processes through :func:`~repro.util.parallel.parallel_map`; the parent
merges the returned metrics back into the caches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError, PartitionedNetworkError, SaturatedError
from ..obs.metrics import METRICS
from ..util.parallel import parallel_map
from .cost import CostBreakdown
from .families import Hardware, design_family
from .space import Candidate

__all__ = [
    "CandidateMetrics",
    "Evaluation",
    "evaluate_candidate",
    "faulted_metrics_for",
    "metrics_for",
    "clear_metrics_cache",
    "metrics_cache_size",
]


@dataclass(frozen=True)
class CandidateMetrics:
    """Model-side performance of one candidate at one demand point.

    ``latency`` is the mean latency (cycles) at the demand flit load
    (``inf`` past saturation); ``saturation_flit_load`` the Eq. 26 boundary
    in flits/cycle/PE; ``zero_load_latency`` the contention-free limit.
    """

    latency: float
    zero_load_latency: float
    saturation_flit_load: float

    def headroom(self, demand_flit_load: float) -> float:
        """Saturation load over demand (>= 1 means the demand is inside)."""
        return self.saturation_flit_load / demand_flit_load

    def as_json(self) -> dict:
        """JSON-safe dict (non-finite floats become None)."""
        return {
            "latency": self.latency if math.isfinite(self.latency) else None,
            "zero_load_latency": (
                self.zero_load_latency
                if math.isfinite(self.zero_load_latency)
                else None
            ),
            "saturation_flit_load": (
                self.saturation_flit_load
                if math.isfinite(self.saturation_flit_load)
                else None
            ),
        }


def _model_key(candidate: Candidate):
    # buffer_depth deliberately excluded: it never enters the latency model.
    return (
        candidate.family,
        candidate.params,
        candidate.message_flits,
        candidate.spec,
    )


def _metrics_key(candidate: Candidate, demand_flit_load: float):
    return (_model_key(candidate), demand_flit_load)


#: Demand-independent memo: model key -> (zero_load_latency, saturation).
_SATURATION_CACHE: dict[tuple, tuple[float, float]] = {}
#: Demand-dependent memo: (model key, demand) -> latency at that demand.
_LATENCY_CACHE: dict[tuple, float] = {}
#: Degraded-mode memo: (model key, faults) -> (zero_load, saturation),
#: or None when the faults partition that candidate's network (so repeat
#: explorations do not re-trace flows just to re-raise).
_FAULT_SATURATION_CACHE: dict[tuple, tuple[float, float] | None] = {}
#: Degraded-mode latency memo: ((model key, faults), demand) -> latency.
_FAULT_LATENCY_CACHE: dict[tuple, float] = {}


def clear_metrics_cache() -> None:
    """Drop every memoized evaluation (tests and long-lived services)."""
    _SATURATION_CACHE.clear()
    _LATENCY_CACHE.clear()
    _FAULT_SATURATION_CACHE.clear()
    _FAULT_LATENCY_CACHE.clear()


def metrics_cache_size() -> int:
    """Number of memoized ``(model, demand)`` latency evaluations."""
    return len(_LATENCY_CACHE)


def _latency_at(model, flit_load: float, message_flits: int) -> float:
    """Mean latency at one operating point through the batch engine."""
    if hasattr(model, "latency_batch"):
        rates = np.array([flit_load / message_flits])
        return float(model.latency_batch(rates, message_flits)[0])
    return model.latency(Workload.from_flit_load(flit_load, message_flits))


def _saturation_flit_load(model, message_flits: int) -> float:
    """Eq. 26 saturation load; closed form when the evaluator has one."""
    closed_form = getattr(model, "saturation_flit_load", None)
    if callable(closed_form):
        return closed_form(message_flits)
    from ..core.throughput import saturation_injection_rate

    try:
        return saturation_injection_rate(model, message_flits).flit_load
    except SaturatedError:
        # Unstable at every probed rate: no usable operating range.
        return 0.0


def _check_demand(demand_flit_load: float) -> None:
    if not (demand_flit_load > 0.0) or not math.isfinite(demand_flit_load):
        raise ConfigurationError(
            f"demand_flit_load must be positive and finite, got {demand_flit_load!r}"
        )


def compute_metrics(
    candidate: Candidate, demand_flit_load: float, need_saturation: bool = True
) -> CandidateMetrics:
    """Evaluate one candidate from scratch (no cache interaction).

    ``need_saturation=False`` skips the (comparatively expensive) Eq. 26
    search and reports ``nan`` for the demand-independent fields — the
    memo layer uses this when only the latency at a new demand is missing.
    """
    _check_demand(demand_flit_load)
    fam = design_family(candidate.family)
    model = fam.evaluator(
        candidate.params_dict, candidate.spec, candidate.message_flits
    )
    flits = candidate.message_flits
    return CandidateMetrics(
        latency=_latency_at(model, demand_flit_load, flits),
        zero_load_latency=(
            float(flits) + model.average_distance - 1.0
            if need_saturation
            else math.nan
        ),
        saturation_flit_load=(
            _saturation_flit_load(model, flits) if need_saturation else math.nan
        ),
    )


def _metrics_worker(task: tuple[Candidate, float, bool]) -> CandidateMetrics:
    """Module-level worker so tasks pickle for process fan-out."""
    return compute_metrics(*task)


def faulted_metrics_for(
    candidate: Candidate, demand_flit_load: float, faults
) -> CandidateMetrics | None:
    """Degraded-mode metrics of one candidate under a fault specification.

    Evaluates the candidate's fault-masked stage graph
    (:meth:`~repro.design.families.DesignFamily.faulted_evaluator`) at the
    demand point; returns ``None`` when ``faults`` partition the network.
    Memoized like the nominal path — per ``(model, faults)`` for the
    demand-independent half and per demand for the latency — including the
    partitioned verdict, so repeated explorations never re-trace flows
    just to rediscover a disconnection.  ``faults`` must be a hashable
    :class:`~repro.faults.FaultSpec`.
    """
    _check_demand(demand_flit_load)
    mk = (_model_key(candidate), faults)
    cached = _FAULT_SATURATION_CACHE.get(mk, "miss")
    if cached is None:
        METRICS.add("design.fault_cache.hits")
        return None
    lat_key = (mk, demand_flit_load)
    if cached != "miss" and lat_key in _FAULT_LATENCY_CACHE:
        METRICS.add("design.fault_cache.hits")
        zero_load, saturation = cached
        return CandidateMetrics(
            latency=_FAULT_LATENCY_CACHE[lat_key],
            zero_load_latency=zero_load,
            saturation_flit_load=saturation,
        )
    METRICS.add("design.fault_cache.misses")
    fam = design_family(candidate.family)
    try:
        model = fam.faulted_evaluator(
            candidate.params_dict, candidate.spec, candidate.message_flits, faults
        )
    except PartitionedNetworkError:
        _FAULT_SATURATION_CACHE[mk] = None
        return None
    flits = candidate.message_flits
    if mk not in _FAULT_SATURATION_CACHE:
        _FAULT_SATURATION_CACHE[mk] = (
            float(flits) + model.average_distance - 1.0,
            _saturation_flit_load(model, flits),
        )
    if lat_key not in _FAULT_LATENCY_CACHE:
        _FAULT_LATENCY_CACHE[lat_key] = _latency_at(model, demand_flit_load, flits)
    zero_load, saturation = _FAULT_SATURATION_CACHE[mk]
    return CandidateMetrics(
        latency=_FAULT_LATENCY_CACHE[lat_key],
        zero_load_latency=zero_load,
        saturation_flit_load=saturation,
    )


def metrics_for(
    candidates: Sequence[Candidate],
    demand_flit_load: float,
    *,
    processes: int = 1,
    chunksize: int = 1,
) -> dict[tuple, CandidateMetrics]:
    """Metrics for every candidate, memoized, computed in parallel.

    Deduplicates by model key (candidates differing only in buffer depth
    collapse to one evaluation), fans the uncached work out over
    ``processes`` workers — skipping the saturation search for models
    whose demand-independent half is already cached — merges the results
    into the per-process caches, and returns a ``{key: metrics}`` mapping
    covering all inputs; read it back through :func:`_metrics_key`.
    """
    _check_demand(demand_flit_load)
    fresh: dict[tuple, tuple[Candidate, bool]] = {}
    for c in candidates:
        mk = _model_key(c)
        need_saturation = mk not in _SATURATION_CACHE
        need_latency = (mk, demand_flit_load) not in _LATENCY_CACHE
        if (need_saturation or need_latency) and mk not in fresh:
            fresh[mk] = (c, need_saturation)
            METRICS.add("design.cache.misses")
        else:
            # Either fully memoized or deduplicated onto an already
            # scheduled model key (buffer-depth-only twins).
            METRICS.add("design.cache.hits")
    if fresh:
        tasks = [(c, demand_flit_load, sat) for c, sat in fresh.values()]
        METRICS.add("design.solves", float(len(tasks)))
        results = parallel_map(
            _metrics_worker, tasks, processes=processes, chunksize=chunksize
        )
        for (mk, (_, need_saturation)), metrics in zip(fresh.items(), results):
            _LATENCY_CACHE[(mk, demand_flit_load)] = metrics.latency
            if need_saturation:
                _SATURATION_CACHE[mk] = (
                    metrics.zero_load_latency,
                    metrics.saturation_flit_load,
                )
    if METRICS.enabled:
        METRICS.gauge("design.cache.latency_entries", float(len(_LATENCY_CACHE)))
        METRICS.gauge(
            "design.cache.saturation_entries", float(len(_SATURATION_CACHE))
        )
    out: dict[tuple, CandidateMetrics] = {}
    for c in candidates:
        mk = _model_key(c)
        zero_load, saturation = _SATURATION_CACHE[mk]
        out[(mk, demand_flit_load)] = CandidateMetrics(
            latency=_LATENCY_CACHE[(mk, demand_flit_load)],
            zero_load_latency=zero_load,
            saturation_flit_load=saturation,
        )
    return out


@dataclass(frozen=True)
class Evaluation:
    """One candidate joined with its metrics, hardware, cost and verdict.

    ``headroom`` is demand-relative (saturation load over the requirement's
    demand load) and is attached by the search so the record stays
    self-contained.
    """

    candidate: Candidate
    metrics: CandidateMetrics
    hardware: Hardware
    cost: CostBreakdown
    headroom: float
    violations: tuple[str, ...]
    #: Degraded-mode metrics when the requirements asked for fault
    #: survival (``survives_faults > 0``): None either when no fault check
    #: ran or when the seeded failures partition this candidate (the
    #: violations then carry the partition clause).
    degraded: CandidateMetrics | None = None

    @property
    def feasible(self) -> bool:
        return not self.violations

    @property
    def latency(self) -> float:
        return self.metrics.latency

    @property
    def saturation_flit_load(self) -> float:
        return self.metrics.saturation_flit_load

    def as_json(self) -> dict:
        """JSON-safe record (non-finite floats become None)."""

        def num(x: float):
            return float(x) if math.isfinite(x) else None

        return {
            "family": self.candidate.family,
            "params": dict(self.candidate.params),
            "num_processors": self.candidate.num_processors,
            "message_flits": self.candidate.message_flits,
            "pattern": self.candidate.pattern,
            "buffer_depth": self.candidate.buffer_depth,
            **self.metrics.as_json(),
            "headroom": num(self.headroom),
            "hardware": {
                "switches": self.hardware.switches,
                "links": self.hardware.links,
                "ports": self.hardware.ports,
            },
            "cost": self.cost.as_dict(),
            "feasible": self.feasible,
            "violations": list(self.violations),
            "degraded": None if self.degraded is None else self.degraded.as_json(),
        }


def evaluate_candidate(
    candidate: Candidate, demand_flit_load: float
) -> CandidateMetrics:
    """Memoized metrics of one candidate (single-point convenience API)."""
    return metrics_for([candidate], demand_flit_load)[
        _metrics_key(candidate, demand_flit_load)
    ]
