"""Declarative design spaces: what the explorer enumerates.

A :class:`DesignSpace` is the cross product of

* one or more :class:`FamilySpace` parameter grids (topology family plus a
  value list per structural parameter — BFT sizes, generalized fat-tree
  arities, hypercube dimensions, torus radix/dimension),
* a message-length axis,
* a traffic-pattern axis (:class:`~repro.traffic.spec.TrafficSpec`
  instances, or registry names resolved through
  :func:`~repro.traffic.spec.make_spec`), and
* a buffer-depth axis (a structural knob priced by the cost models; the
  analytical latency model is buffer-independent, so candidates differing
  only in depth share one memoized evaluation).

Expansion validates every combination: structurally invalid parameter
assignments raise immediately, while combinations a pattern cannot apply to
(a family without a pattern-aware model, or a size the pattern rejects —
e.g. transpose on an odd power of two) are *skipped* and reported, never
silently dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from ..traffic.spec import TrafficSpec, make_spec
from .families import design_family

__all__ = [
    "FamilySpace",
    "DesignSpace",
    "Candidate",
    "Expansion",
    "SkippedCandidate",
    "bft_space",
    "generalized_fattree_space",
    "hypercube_space",
    "kary_ncube_space",
]


@dataclass(frozen=True)
class Candidate:
    """One concrete design point of a :class:`DesignSpace`.

    ``params`` is a sorted, hashable ``((name, value), ...)`` tuple so
    candidates can key caches and cross process boundaries; ``spec`` is the
    concrete traffic pattern (``uniform`` routes to the family's closed
    form).  ``buffer_depth`` (flits per port) only enters the cost models.
    """

    family: str
    params: tuple[tuple[str, int], ...]
    message_flits: int
    spec: TrafficSpec
    buffer_depth: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.message_flits, int) or self.message_flits <= 0:
            raise ConfigurationError("message_flits must be a positive integer")
        if not isinstance(self.buffer_depth, int) or self.buffer_depth < 1:
            raise ConfigurationError("buffer_depth must be a positive integer")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @property
    def pattern(self) -> str:
        return self.spec.name

    @property
    def params_dict(self) -> dict[str, int]:
        return dict(self.params)

    @property
    def num_processors(self) -> int:
        return design_family(self.family).num_processors(self.params_dict)

    def label(self) -> str:
        """Compact human-readable identity, e.g. ``bft(processors=64)``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        tail = f", b={self.buffer_depth}" if self.buffer_depth != 1 else ""
        return f"{self.family}({inner}) f={self.message_flits} {self.pattern}{tail}"


@dataclass(frozen=True)
class SkippedCandidate:
    """A combination the expansion rejected, with the reason."""

    family: str
    params: tuple[tuple[str, int], ...]
    message_flits: int
    pattern: str
    reason: str


@dataclass(frozen=True)
class Expansion:
    """The outcome of enumerating a space: valid candidates plus skips."""

    candidates: tuple[Candidate, ...]
    skipped: tuple[SkippedCandidate, ...]


def _as_value_tuple(name: str, values: Iterable[int]) -> tuple[int, ...]:
    out = tuple(values)
    if not out:
        raise ConfigurationError(f"{name} must be a non-empty value list")
    if len(set(out)) != len(out):
        raise ConfigurationError(f"{name} contains duplicate values: {out!r}")
    return out


@dataclass(frozen=True)
class FamilySpace:
    """The parameter grid of one topology family.

    ``parameters`` maps each of the family's parameter names to the value
    list swept for it; the family's full cross product is enumerated.
    """

    family: str
    parameters: tuple[tuple[str, tuple[int, ...]], ...]

    def __post_init__(self) -> None:
        fam = design_family(self.family)
        params = dict(self.parameters)
        if tuple(sorted(params)) != tuple(sorted(fam.param_names)):
            raise ConfigurationError(
                f"family {self.family!r} takes parameters {fam.param_names}, "
                f"got {tuple(sorted(params))}"
            )
        normalized = tuple(
            (name, _as_value_tuple(f"{self.family}.{name}", params[name]))
            for name in fam.param_names
        )
        object.__setattr__(self, "parameters", normalized)

    @classmethod
    def build(cls, family: str, **parameters: Iterable[int]) -> "FamilySpace":
        """Keyword-argument constructor (``FamilySpace.build("bft", processors=(16, 64))``)."""
        return cls(family, tuple((k, tuple(v)) for k, v in parameters.items()))

    def assignments(self) -> list[dict[str, int]]:
        """Every concrete ``{param: value}`` assignment of the grid."""
        names = [name for name, _ in self.parameters]
        grids = [values for _, values in self.parameters]
        return [dict(zip(names, combo)) for combo in itertools.product(*grids)]

    @property
    def size(self) -> int:
        out = 1
        for _, values in self.parameters:
            out *= len(values)
        return out


def bft_space(processors: Iterable[int]) -> FamilySpace:
    """Butterfly fat-tree grid over machine sizes (powers of four)."""
    return FamilySpace.build("bft", processors=processors)


def generalized_fattree_space(
    children: Iterable[int], parents: Iterable[int], levels: Iterable[int]
) -> FamilySpace:
    """Generalized (c, p) fat-tree grid over arities and heights."""
    return FamilySpace.build(
        "generalized-fattree", children=children, parents=parents, levels=levels
    )


def hypercube_space(dimensions: Iterable[int]) -> FamilySpace:
    """Binary hypercube grid over dimensions."""
    return FamilySpace.build("hypercube", dimension=dimensions)


def kary_ncube_space(radix: Iterable[int], dimensions: Iterable[int]) -> FamilySpace:
    """Unidirectional k-ary n-cube grid over radix and dimension."""
    return FamilySpace.build("kary-ncube", radix=radix, dimensions=dimensions)


def _normalize_patterns(patterns) -> tuple[TrafficSpec, ...]:
    out: list[TrafficSpec] = []
    for p in patterns:
        if isinstance(p, str):
            out.append(make_spec(p))
        elif isinstance(p, TrafficSpec):
            out.append(p)
        else:
            raise ConfigurationError(
                f"patterns must be TrafficSpec instances or registry names, got {p!r}"
            )
    if not out:
        raise ConfigurationError("patterns must be non-empty")
    return tuple(out)


@dataclass(frozen=True)
class DesignSpace:
    """A declarative search space (see module docstring).

    Attributes
    ----------
    families:
        One or more :class:`FamilySpace` grids (a bare :class:`FamilySpace`
        is promoted to a one-element tuple).
    message_lengths:
        Worm lengths in flits.
    patterns:
        Traffic scenarios — spec instances or registry names.  Defaults to
        the paper's uniform assumption.
    buffer_depths:
        Per-port buffer depths in flits (cost-model knob).
    """

    families: tuple[FamilySpace, ...]
    message_lengths: tuple[int, ...]
    patterns: tuple[TrafficSpec, ...] = field(default=("uniform",))
    buffer_depths: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        families = (
            (self.families,)
            if isinstance(self.families, FamilySpace)
            else tuple(self.families)
        )
        if not families:
            raise ConfigurationError("families must be non-empty")
        object.__setattr__(self, "families", families)
        object.__setattr__(
            self, "message_lengths", _as_value_tuple("message_lengths", self.message_lengths)
        )
        for f in self.message_lengths:
            if not isinstance(f, int) or f <= 0:
                raise ConfigurationError(
                    f"message_lengths must be positive integers, got {f!r}"
                )
        object.__setattr__(self, "patterns", _normalize_patterns(self.patterns))
        object.__setattr__(
            self, "buffer_depths", _as_value_tuple("buffer_depths", self.buffer_depths)
        )
        for b in self.buffer_depths:
            if not isinstance(b, int) or b < 1:
                raise ConfigurationError(
                    f"buffer_depths must be positive integers, got {b!r}"
                )

    @property
    def size(self) -> int:
        """Upper bound on the candidate count (before pattern skips)."""
        return (
            sum(f.size for f in self.families)
            * len(self.message_lengths)
            * len(self.patterns)
            * len(self.buffer_depths)
        )

    def expand(self) -> Expansion:
        """Enumerate the space: validated candidates plus reported skips.

        Structural errors (an invalid parameter assignment) raise; pattern
        incompatibilities — a family without a pattern-aware model, or a
        machine size the spec itself rejects — become
        :class:`SkippedCandidate` records so no combination disappears
        silently.
        """
        candidates: list[Candidate] = []
        skipped: list[SkippedCandidate] = []
        for fspace in self.families:
            fam = design_family(fspace.family)
            for params in fspace.assignments():
                fam.validate(params)
                n = fam.num_processors(params)
                items = tuple(sorted(params.items()))
                for spec in self.patterns:
                    reason = self._pattern_reason(fam, spec, n)
                    for flits in self.message_lengths:
                        if reason is not None:
                            skipped.append(
                                SkippedCandidate(
                                    fam.name, items, flits, spec.name, reason
                                )
                            )
                            continue
                        for depth in self.buffer_depths:
                            candidates.append(
                                Candidate(
                                    family=fam.name,
                                    params=items,
                                    message_flits=flits,
                                    spec=spec,
                                    buffer_depth=depth,
                                )
                            )
        return Expansion(tuple(candidates), tuple(skipped))

    @staticmethod
    def _pattern_reason(fam, spec: TrafficSpec, num_processors: int) -> str | None:
        """Why ``spec`` cannot run on this family member (None when it can)."""
        if spec.name != "uniform" and not fam.supports_patterns:
            return f"family {fam.name!r} has no pattern-aware model"
        try:
            spec.validate(num_processors)
        except ConfigurationError as exc:
            return f"pattern {spec.name!r} rejects N={num_processors}: {exc}"
        return None

    def candidates(self) -> tuple[Candidate, ...]:
        """The valid candidates of :meth:`expand` (skips discarded)."""
        return self.expand().candidates
