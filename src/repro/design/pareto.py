"""Pareto-dominance utilities for multi-objective design selection.

The explorer reports the latency / cost / headroom trade-off surface as a
Pareto frontier: a design is kept when no other design is at least as good
on every objective and strictly better on one.  The helpers here are
objective-agnostic — objectives are ``(key, sense)`` pairs — so callers can
add axes (e.g. power, switch count) without touching the algorithm.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")

__all__ = ["Objective", "pareto_frontier", "dominates"]


class Objective:
    """One optimization axis: a value extractor plus a direction.

    ``sense`` is ``"min"`` or ``"max"``; values are compared after negating
    maximized axes, so dominance is uniformly "smaller or equal".
    """

    def __init__(self, key: Callable[[T], float], sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ConfigurationError(f"sense must be 'min' or 'max', got {sense!r}")
        self.key = key
        self.sense = sense

    def value(self, item: T) -> float:
        v = float(self.key(item))
        return v if self.sense == "min" else -v


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimize all)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_frontier(
    items: Sequence[T], objectives: Sequence[Objective]
) -> tuple[T, ...]:
    """The non-dominated subset of ``items`` under ``objectives``.

    Items with a non-finite value on any axis are excluded up front — a
    saturated design (infinite latency) cannot trade off against anything.
    Input order is preserved; duplicates on every axis all survive (they
    tie, and ties never dominate).
    """
    if not objectives:
        raise ConfigurationError("objectives must be non-empty")
    scored = []
    for item in items:
        vec = [obj.value(item) for obj in objectives]
        if all(math.isfinite(v) for v in vec):
            scored.append((item, vec))
    frontier = [
        item
        for item, vec in scored
        if not any(dominates(other, vec) for _, other in scored if other is not vec)
    ]
    return tuple(frontier)
