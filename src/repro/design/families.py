"""Topology families the design-space explorer can instantiate.

A :class:`DesignFamily` bundles everything the search driver needs to know
about one network family:

* which structural parameters describe a member (``param_names``) and how
  to validate a concrete assignment;
* how large the machine is (``num_processors``);
* how much hardware a member uses (``hardware`` — switch / link / port
  counts, read off the constructed topology so the cost models and the
  simulators always agree on what was built);
* how to build the *evaluator* — the analytical model object whose
  ``latency_batch`` / ``stability_batch`` (or scalar fallbacks) the batch
  engine consumes — for a given traffic spec and message length, plus the
  matching *baseline* evaluator (the family's prior-art variant), which
  the Scenario facade's ``baseline`` backend resolves through the same
  registry.

Four families ship by default:

* ``bft`` — the paper's 4-2 butterfly fat-tree
  (:class:`~repro.core.bft_model.ButterflyFatTreeModel`), pattern-aware via
  ``traffic_model``;
* ``generalized-fattree`` — the (children, parents) generalization
  (:class:`~repro.core.generalized_model.GeneralizedFatTreeModel`),
  uniform traffic only;
* ``hypercube`` — the Section 2 general model on a binary e-cube hypercube,
  pattern-aware via
  :func:`~repro.traffic.analytic.hypercube_traffic_stage_graph`;
* ``kary-ncube`` — the Dally torus baseline
  (:class:`~repro.baselines.dally.DallyKaryNCubeModel`), uniform traffic
  only.

``register_family`` admits project-specific families without touching this
module.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

from ..config import Workload
from ..errors import ConfigurationError
from ..util.validation import check_power_of

__all__ = [
    "Hardware",
    "DesignFamily",
    "register_family",
    "design_family",
    "available_families",
]


@dataclass(frozen=True)
class Hardware:
    """Hardware inventory of one candidate network.

    ``switches`` counts routing nodes, ``links`` unidirectional channels
    (injection and ejection channels included, matching the topology
    objects), and ``ports`` switch-side link endpoints — each
    switch-to-switch channel occupies two ports, each injection or
    ejection channel one.  These are the quantities Solnushkin-style cost
    models price.
    """

    switches: int
    links: int
    ports: int


def _hardware_of(topology) -> Hardware:
    """Read the inventory off a constructed topology object."""
    n = topology.num_processors
    return Hardware(
        switches=topology.num_nodes - n,
        links=topology.num_links,
        # Every link endpoint that lands on a switch is a port; the 2*N
        # PE-side endpoints of the injection/ejection channels are not.
        ports=2 * topology.num_links - 2 * n,
    )


class DesignFamily:
    """One searchable topology family (see module docstring).

    Subclasses set :attr:`name`, :attr:`param_names` and
    :attr:`supports_patterns`, and implement the four hooks below.
    ``params`` is always a plain ``{name: int}`` mapping covering exactly
    ``param_names``.
    """

    name: str = "base"
    param_names: tuple[str, ...] = ()
    #: Whether non-uniform TrafficSpecs have a pattern-aware evaluator.
    supports_patterns: bool = False

    def validate(self, params: Mapping[str, int]) -> None:
        """Raise :class:`ConfigurationError` for an invalid assignment."""
        missing = [p for p in self.param_names if p not in params]
        extra = [p for p in params if p not in self.param_names]
        if missing or extra:
            raise ConfigurationError(
                f"family {self.name!r} takes parameters {self.param_names}, "
                f"got {tuple(sorted(params))}"
            )
        for p in self.param_names:
            if not isinstance(params[p], int):
                raise ConfigurationError(
                    f"family {self.name!r}: parameter {p!r} must be an "
                    f"integer, got {params[p]!r}"
                )

    def num_processors(self, params: Mapping[str, int]) -> int:
        """Machine size of the assignment (validates first)."""
        raise NotImplementedError

    def topology(self, params: Mapping[str, int]):
        """Construct the concrete topology object (hardware accounting)."""
        raise NotImplementedError

    def evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        """Build the analytical evaluator for ``spec`` at ``message_flits``.

        For ``uniform`` specs this is the family's closed-form (or
        uniform stage-graph) model; for other patterns it is the
        pattern-aware channel graph.  Raises when the family has no
        pattern-aware form and a non-uniform spec is requested (the
        expansion layer normally filters these earlier).
        """
        raise NotImplementedError

    def baseline_evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        """Build the family's *prior-art* evaluator (the ``baseline`` backend).

        Same contract as :meth:`evaluator`, with the paper's novelties
        switched off in whatever form the family's prior art took: the
        naive variant for the fat-trees (independent M/G/1 links, no
        blocking correction), the Draper–Ghosh-style recursion for the
        hypercube, and Dally's analysis for the torus — which *is* this
        family's model, so its baseline coincides with it.
        """
        raise NotImplementedError

    def faulted_evaluator(
        self,
        params: Mapping[str, int],
        spec,
        message_flits: int,
        faults,
        *,
        baseline: bool = False,
    ):
        """Degraded-mode analytical evaluator under a fault specification.

        Every family routes through the same machinery: the fault-masked
        topology's exact per-channel flows
        (:func:`~repro.traffic.flows.masked_channel_flows` under the
        :func:`~repro.faults.degraded_spec` workload) feed the Section 2
        channel-graph model, with the family's prior-art variant switched
        in when ``baseline`` is true.  ``faults`` must be a hashable
        :class:`~repro.faults.FaultSpec` (flow propagation is memoized per
        assignment/spec/faults).  Raises
        :class:`~repro.errors.PartitionedNetworkError` when the faults
        disconnect surviving traffic.
        """
        from ..traffic.analytic import stage_graph_from_flows

        self.validate(params)
        if not self.supports_patterns:
            self._reject_pattern(spec)
        if spec is not None and spec.name == "uniform":
            spec = None  # canonical cache key; degraded_spec defaults to uniform
        flows = _cached_masked_flows(
            self.name, tuple(sorted(params.items())), spec, faults
        )
        variant = self._baseline_variant() if baseline else None
        return stage_graph_from_flows(
            flows, _reference_workload(message_flits), variant
        )

    def _baseline_variant(self):
        """The model variant of this family's prior art (None = paper)."""
        from ..core.variants import ModelVariant

        return ModelVariant.naive()

    def hardware(self, params: Mapping[str, int]) -> Hardware:
        """Switch/link/port inventory (memoized per assignment)."""
        self.validate(params)
        return _cached_hardware(self.name, tuple(sorted(params.items())))

    def sizes_to_params(self, num_processors: int) -> dict[str, int] | None:
        """Parameter assignment realizing ``num_processors``, or None.

        Lets callers sweep an abstract machine-size axis across families
        (the CLI's ``--sizes``); families whose size grid does not contain
        the value return None.
        """
        raise NotImplementedError

    def _reject_pattern(self, spec) -> None:
        if spec is not None and spec.name != "uniform":
            raise ConfigurationError(
                f"family {self.name!r} has no pattern-aware model; "
                f"pattern {spec.name!r} is only supported on families "
                f"{tuple(f for f, fam in _REGISTRY.items() if fam.supports_patterns)}"
            )


@lru_cache(maxsize=256)
def _cached_hardware(family: str, params_items: tuple[tuple[str, int], ...]) -> Hardware:
    fam = design_family(family)
    return _hardware_of(fam.topology(dict(params_items)))


def _reference_workload(message_flits: int) -> Workload:
    """The (arbitrary) rate stage graphs are built at; rates scale linearly."""
    return Workload(message_flits, 1.0 / (100.0 * message_flits))


# Flow propagation (spec -> per-channel rates) is the dominant cost of a
# pattern-aware evaluation and is independent of message length, so the
# explorer caches ChannelFlows per (size, spec) — the message-length axis of
# a design space then reuses one propagation.  TrafficSpec instances are
# frozen dataclasses, hence usable as cache keys.


@lru_cache(maxsize=64)
def _cached_bft_flows(num_processors: int, spec):
    from ..topology.butterfly_fattree import ButterflyFatTree
    from ..traffic.flows import bft_channel_flows

    return bft_channel_flows(ButterflyFatTree(num_processors), spec)


@lru_cache(maxsize=64)
def _cached_hypercube_flows(dimension: int, spec):
    from ..topology.hypercube import Hypercube
    from ..traffic.flows import single_path_flows

    return single_path_flows(Hypercube(dimension), spec)


@lru_cache(maxsize=64)
def _cached_masked_flows(
    family: str, params_items: tuple[tuple[str, int], ...], spec, faults
):
    from ..faults import FaultedTopology, degraded_spec
    from ..traffic.flows import masked_channel_flows

    fam = design_family(family)
    topo = FaultedTopology(fam.topology(dict(params_items)), faults)
    return masked_channel_flows(topo, degraded_spec(topo, spec))


class _BftFamily(DesignFamily):
    name = "bft"
    param_names = ("processors",)
    supports_patterns = True

    def validate(self, params: Mapping[str, int]) -> None:
        super().validate(params)
        check_power_of("processors", params["processors"], 4)

    def num_processors(self, params: Mapping[str, int]) -> int:
        self.validate(params)
        return params["processors"]

    def topology(self, params: Mapping[str, int]):
        from ..topology.butterfly_fattree import ButterflyFatTree

        return ButterflyFatTree(params["processors"])

    def evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        from ..core.bft_model import ButterflyFatTreeModel
        from ..traffic.analytic import stage_graph_from_flows

        self.validate(params)
        if spec is None or spec.name == "uniform":
            return ButterflyFatTreeModel(params["processors"])
        flows = _cached_bft_flows(params["processors"], spec)
        return stage_graph_from_flows(flows, _reference_workload(message_flits))

    def baseline_evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        from ..baselines import naive_bft_model

        self.validate(params)
        model = naive_bft_model(params["processors"])
        if spec is None or spec.name == "uniform":
            return model
        # traffic_model shares the naive variant's switches, so the
        # pattern-aware baseline stays the prior-art approximation.
        return model.traffic_model(spec, message_flits)

    def sizes_to_params(self, num_processors: int) -> dict[str, int] | None:
        try:
            check_power_of("processors", num_processors, 4)
        except ConfigurationError:
            return None
        return {"processors": num_processors}


class _GeneralizedFatTreeFamily(DesignFamily):
    name = "generalized-fattree"
    param_names = ("children", "parents", "levels")
    supports_patterns = False

    def validate(self, params: Mapping[str, int]) -> None:
        super().validate(params)
        if params["children"] < 2:
            raise ConfigurationError("children must be >= 2")
        if params["parents"] < 1:
            raise ConfigurationError("parents must be >= 1")
        if params["levels"] < 1:
            raise ConfigurationError("levels must be >= 1")

    def num_processors(self, params: Mapping[str, int]) -> int:
        self.validate(params)
        return params["children"] ** params["levels"]

    def topology(self, params: Mapping[str, int]):
        from ..topology.generalized_fattree import GeneralizedFatTree

        return GeneralizedFatTree(
            params["children"], params["parents"], params["levels"]
        )

    def evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        from ..core.generalized_model import GeneralizedFatTreeModel

        self.validate(params)
        self._reject_pattern(spec)
        return GeneralizedFatTreeModel(
            params["children"], params["parents"], params["levels"]
        )

    def baseline_evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        from ..core.generalized_model import GeneralizedFatTreeModel
        from ..core.variants import ModelVariant

        self.validate(params)
        self._reject_pattern(spec)
        return GeneralizedFatTreeModel(
            params["children"],
            params["parents"],
            params["levels"],
            ModelVariant.naive(),
        )

    def sizes_to_params(self, num_processors: int) -> dict[str, int] | None:
        # The size axis alone does not pin (children, parents); families
        # with free arity are swept through explicit FamilySpace grids.
        return None


class _HypercubeFamily(DesignFamily):
    name = "hypercube"
    param_names = ("dimension",)
    supports_patterns = True

    def validate(self, params: Mapping[str, int]) -> None:
        super().validate(params)
        if params["dimension"] < 1:
            raise ConfigurationError("dimension must be >= 1")

    def num_processors(self, params: Mapping[str, int]) -> int:
        self.validate(params)
        return 1 << params["dimension"]

    def topology(self, params: Mapping[str, int]):
        from ..topology.hypercube import Hypercube

        return Hypercube(params["dimension"])

    def evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        from ..core.generic_model import hypercube_stage_graph
        from ..traffic.analytic import stage_graph_from_flows

        self.validate(params)
        wl = _reference_workload(message_flits)
        if spec is None or spec.name == "uniform":
            return hypercube_stage_graph(params["dimension"], wl)
        flows = _cached_hypercube_flows(params["dimension"], spec)
        return stage_graph_from_flows(flows, wl)

    def baseline_evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        from ..baselines.draper_ghosh import draper_ghosh_variant
        from ..core.generic_model import hypercube_stage_graph
        from ..traffic.analytic import stage_graph_from_flows

        self.validate(params)
        wl = _reference_workload(message_flits)
        variant = draper_ghosh_variant(corrected=False)
        if spec is None or spec.name == "uniform":
            return hypercube_stage_graph(params["dimension"], wl, variant)
        flows = _cached_hypercube_flows(params["dimension"], spec)
        return stage_graph_from_flows(flows, wl, variant)

    def _baseline_variant(self):
        from ..baselines.draper_ghosh import draper_ghosh_variant

        return draper_ghosh_variant(corrected=False)

    def sizes_to_params(self, num_processors: int) -> dict[str, int] | None:
        if num_processors < 2:
            return None
        d = num_processors.bit_length() - 1
        return {"dimension": d} if (1 << d) == num_processors else None


class _KaryNCubeFamily(DesignFamily):
    name = "kary-ncube"
    param_names = ("radix", "dimensions")
    supports_patterns = False

    def validate(self, params: Mapping[str, int]) -> None:
        super().validate(params)
        if params["radix"] < 2:
            raise ConfigurationError("radix must be >= 2")
        if params["dimensions"] < 1:
            raise ConfigurationError("dimensions must be >= 1")

    def num_processors(self, params: Mapping[str, int]) -> int:
        self.validate(params)
        return params["radix"] ** params["dimensions"]

    def topology(self, params: Mapping[str, int]):
        from ..topology.kary_ncube import KaryNCube

        return KaryNCube(params["radix"], params["dimensions"])

    def evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        from ..baselines.dally import DallyKaryNCubeModel

        self.validate(params)
        self._reject_pattern(spec)
        return DallyKaryNCubeModel(params["radix"], params["dimensions"])

    def baseline_evaluator(self, params: Mapping[str, int], spec, message_flits: int):
        # Dally's analysis *is* the prior art for the torus: the family's
        # reference model and its baseline coincide (the repo carries no
        # improved Section-2 instantiation on rings yet — they need the
        # cyclic fixed point plus virtual-channel modeling, see ROADMAP).
        return self.evaluator(params, spec, message_flits)

    def _baseline_variant(self):
        # Under faults both backends go through the Section 2 channel graph;
        # prior art and reference coincide for this family, so the degraded
        # baseline keeps the paper variant too.
        return None

    def sizes_to_params(self, num_processors: int) -> dict[str, int] | None:
        # Free radix: like the generalized fat-tree, swept explicitly.
        return None


_REGISTRY: dict[str, DesignFamily] = {}


def register_family(family: DesignFamily) -> DesignFamily:
    """Add a family to the registry (keyed by ``family.name``)."""
    _REGISTRY[family.name] = family
    return family


for _fam in (
    _BftFamily(),
    _GeneralizedFatTreeFamily(),
    _HypercubeFamily(),
    _KaryNCubeFamily(),
):
    register_family(_fam)


def design_family(name: str) -> DesignFamily:
    """Look up a registered family by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown design family {name!r}; known: {', '.join(available_families())}"
        ) from None


def available_families() -> list[str]:
    """Registered family names (the CLI's ``--families`` choices)."""
    return sorted(_REGISTRY)
