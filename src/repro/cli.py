"""Command-line interface: ``python -m repro <command> ...``.

Gives downstream users the main entry points without writing Python:

* ``model``       — one analytical evaluation (latency breakdown);
* ``sweep``       — model latency-vs-load table up to saturation;
* ``saturation``  — Eq. 26 saturation loads for one or more message lengths;
* ``simulate``    — one simulation run (event/flit/buffered engine);
* ``info``        — topology summary;
* ``experiment``  — regenerate a paper artifact (fig3, throughput, scaling,
  ablations, other-networks, crosscheck, generalized, buffering, traffic).

``model``, ``sweep``, ``saturation`` and ``simulate`` all accept
``--pattern`` (plus ``--hotspot-fraction`` / ``--hotspot-target``): the
analytical commands then solve the pattern-aware per-channel model, and
``simulate`` drives the matching non-uniform traffic source, so the two
sides stay comparable for every registered scenario.

All output is plain text on stdout; exit status 0 on success, 2 on bad
arguments (argparse convention).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .config import SimConfig, Workload
from .core.bft_model import ButterflyFatTreeModel
from .core.sweep import latency_sweep, load_grid_to_saturation
from .core.throughput import saturation_injection_rate
from .errors import ReproError
from .simulation.buffered_sim import BufferedWormholeSimulator
from .simulation.flit_sim import FlitLevelWormholeSimulator
from .simulation.traffic import PoissonTraffic
from .simulation.wormhole_sim import EventDrivenWormholeSimulator
from .topology.butterfly_fattree import ButterflyFatTree
from .topology.properties import describe_topology
from .traffic.spec import available_patterns, make_spec
from .util.tables import format_table

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig3": "run_fig3",
    "throughput": "run_throughput_table",
    "scaling": "run_scaling",
    "ablations": "run_ablations",
    "other-networks": "run_other_networks",
    "crosscheck": "run_crosscheck",
    "generalized": "run_generalized",
    "buffering": "run_buffering",
    "service-times": "run_service_times",
    "traffic": "run_traffic_scenarios",
}

_SIMULATORS = {
    "event": EventDrivenWormholeSimulator,
    "flit": FlitLevelWormholeSimulator,
    "buffered": BufferedWormholeSimulator,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wormhole-routed butterfly fat-tree performance models "
        "(Greenberg & Guan, ICPP 1997 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_pattern(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--pattern",
            choices=available_patterns(),
            default="uniform",
            help="destination pattern (traffic scenario)",
        )
        p.add_argument(
            "--hotspot-fraction",
            type=float,
            default=0.1,
            help="hotspot pattern: probability of addressing the hot node",
        )
        p.add_argument(
            "--hotspot-target",
            type=int,
            default=0,
            help="hotspot pattern: the hot node",
        )

    def add_common(p: argparse.ArgumentParser, with_load: bool = True) -> None:
        p.add_argument(
            "--processors",
            "-n",
            type=int,
            default=256,
            help="number of processors (power of 4)",
        )
        p.add_argument(
            "--flits", "-f", type=int, default=32, help="message length in flits"
        )
        if with_load:
            p.add_argument(
                "--load",
                "-l",
                type=float,
                default=0.02,
                help="offered load in flits/cycle/PE (Figure-3 units)",
            )
        add_pattern(p)

    p_model = sub.add_parser("model", help="evaluate the analytical model once")
    add_common(p_model)

    p_sweep = sub.add_parser("sweep", help="model latency-vs-load table")
    add_common(p_sweep, with_load=False)
    p_sweep.add_argument("--points", type=int, default=10, help="grid points")
    p_sweep.add_argument(
        "--scalar",
        action="store_true",
        help="force one model solve per grid point (default: one batched "
        "NumPy solve for the whole grid)",
    )

    p_sat = sub.add_parser("saturation", help="Eq. 26 saturation throughput")
    p_sat.add_argument("--processors", "-n", type=int, default=256)
    p_sat.add_argument(
        "--flits",
        "-f",
        type=str,
        default="16,32,64",
        help="comma-separated message lengths",
    )
    add_pattern(p_sat)

    p_sim = sub.add_parser("simulate", help="run one simulation")
    add_common(p_sim)
    p_sim.add_argument(
        "--simulator",
        choices=sorted(_SIMULATORS),
        default="event",
        help="engine: event (worm-level), flit (cycle-level), buffered (VC router)",
    )
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--warmup", type=float, default=3000.0)
    p_sim.add_argument("--measure", type=float, default=9000.0)

    p_info = sub.add_parser("info", help="topology summary")
    p_info.add_argument("--processors", "-n", type=int, default=256)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.add_argument(
        "--full", action="store_true", help="paper-scale grids and windows"
    )

    return parser


def _spec_from_args(args):
    """The TrafficSpec selected by --pattern, or None for plain uniform.

    Uniform keeps the closed-form fast path (and byte-identical output with
    older versions); every other pattern builds a spec for the pattern-aware
    model/simulator.
    """
    if args.pattern == "uniform":
        return None
    return make_spec(
        args.pattern,
        hotspot_fraction=args.hotspot_fraction,
        hotspot_target=args.hotspot_target,
    )


def _cmd_model(args) -> str:
    import numpy as np

    model = ButterflyFatTreeModel(args.processors)
    wl = Workload.from_flit_load(args.load, args.flits)
    spec = _spec_from_args(args)
    if spec is not None:
        tm = model.traffic_model(spec, args.flits)
        latency = float(tm.latency_batch(np.array([wl.injection_rate]), args.flits)[0])
        rows = [("latency", latency), ("saturated", not (latency < float("inf")))]
        title = f"pattern={spec.name}, load={args.load} fl/cyc/PE"
    else:
        solution = model.solve(wl)
        rows = list(solution.breakdown().items())
        rows.append(("saturated", solution.saturated))
        title = f"load={args.load} fl/cyc/PE"
    return "\n".join(
        [model.describe(), format_table(["component", "value"], rows, title=title)]
    )


def _cmd_sweep(args) -> str:
    from .errors import ConfigurationError

    model = ButterflyFatTreeModel(args.processors)
    spec = _spec_from_args(args)
    if args.scalar and spec is not None:
        raise ConfigurationError(
            "--scalar (the per-point batch-engine cross-check) only applies "
            "to the uniform closed-form model; drop it or drop --pattern"
        )
    # A pattern builds the per-channel solver once; grid and sweep then both
    # go through its batch engine.
    evaluator = model.traffic_model(spec, args.flits) if spec is not None else model
    grid = load_grid_to_saturation(evaluator, args.flits, n_points=args.points)
    # Handing latency_sweep the model routes the grid through the batch
    # engine (one vectorized solve); a plain wrapper forces per-point mode.
    if args.scalar:
        evaluator = lambda wl: model.latency(wl)
    curve = latency_sweep(evaluator, args.flits, grid)
    suffix = f", {spec.name}" if spec is not None else ""
    return format_table(
        ["load (fl/cyc/PE)", "latency (cycles)"],
        curve.as_rows(),
        title=f"N={args.processors}, {args.flits}-flit{suffix}",
    )


def _cmd_saturation(args) -> str:
    model = ButterflyFatTreeModel(args.processors)
    spec = _spec_from_args(args)
    rows = []
    for flits in (int(x) for x in args.flits.split(",")):
        sat = saturation_injection_rate(model, flits, spec=spec)
        rows.append((flits, sat.injection_rate, sat.flit_load))
    suffix = f", {spec.name}" if spec is not None else ""
    return format_table(
        ["flits", "lambda0 (msgs/cyc/PE)", "flit load (fl/cyc/PE)"],
        rows,
        title=f"Saturation, N={args.processors}{suffix}",
    )


def _cmd_simulate(args) -> str:
    import numpy as np

    topo = ButterflyFatTree(args.processors)
    wl = Workload.from_flit_load(args.load, args.flits)
    cfg = SimConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure, seed=args.seed
    )
    spec = _spec_from_args(args)
    sim_cls = _SIMULATORS[args.simulator]
    kwargs = {}
    if spec is not None:
        kwargs["traffic"] = PoissonTraffic(
            args.processors, wl, seed=args.seed, spec=spec
        )
    result = sim_cls(topo, wl, cfg, keep_samples=False, **kwargs).run()
    model = ButterflyFatTreeModel(args.processors)
    if spec is not None:
        tm = model.traffic_model(spec, args.flits)
        prediction = float(
            tm.latency_batch(np.array([wl.injection_rate]), args.flits)[0]
        )
    else:
        prediction = model.latency(wl)
    lines = [
        f"simulator: {args.simulator}"
        + (f" (pattern: {spec.name})" if spec is not None else ""),
        result.summary(),
        f"model prediction: {prediction:.3f} cycles",
    ]
    return "\n".join(lines)


def _cmd_info(args) -> str:
    topo = ButterflyFatTree(args.processors)
    info = describe_topology(topo)
    rows = [
        ("processors", info["processors"]),
        ("links", info["links"]),
    ]
    rows += sorted(info["links_per_class"].items())
    rows += [(f"groups of size {k}", v) for k, v in sorted(info["groups_by_size"].items())]
    return "\n".join(
        [topo.describe(), format_table(["property", "value"], rows)]
    )


def _cmd_experiment(args) -> str:
    import os

    from . import experiments

    if args.full:
        os.environ["REPRO_FULL"] = "1"
    runner = getattr(experiments, _EXPERIMENTS[args.name])
    return runner().render()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "model": _cmd_model,
        "sweep": _cmd_sweep,
        "saturation": _cmd_saturation,
        "simulate": _cmd_simulate,
        "info": _cmd_info,
        "experiment": _cmd_experiment,
    }
    try:
        print(handlers[args.command](args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
