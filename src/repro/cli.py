"""Command-line interface: ``python -m repro <command> ...``.

Gives downstream users the main entry points without writing Python:

* ``run``         — evaluate one declarative :class:`~repro.runs.Scenario`
  (topology × workload × pattern × backend) and optionally persist the
  record in the run registry; ``--kill-links``/``--kill-switches``/
  ``--random-link-failures`` evaluate the same scenario on a degraded
  fabric;
* ``serve``       — long-running scenario service: POST a Scenario JSON to
  ``/solve``, get the RunResult record back, with identical questions
  answered from the content-addressed registry cache (see
  :mod:`repro.serve`);
* ``runs``        — registry operations: ``runs list`` (``--indexed`` for
  SQLite-backed queries), ``runs diff``, ``runs doctor`` (corruption
  audit / quarantine) and ``runs reindex`` (rebuild the query index);
* ``lint``        — static analysis of the source tree itself: the
  file-local invariant rules (REP001-007) plus the call-graph
  concurrency rules (REP201-204); ``--rules`` selects families
  (``REP2xx``), ``--list-rules`` prints the catalog, exit 1 on findings;
* ``model``       — one analytical evaluation (latency breakdown);
* ``sweep``       — model latency-vs-load table up to saturation;
* ``saturation``  — Eq. 26 saturation loads for one or more message lengths;
* ``simulate``    — one simulation run (event/flit/buffered engine);
* ``info``        — topology summary;
* ``patterns``    — list the registered traffic scenarios;
* ``design``      — SLO-driven design-space exploration (feasible set,
  cheapest design, Pareto frontier) over topology families and patterns;
  ``--save`` records the frontier as a ``kind="exploration"`` run so it
  diffs across PRs like any other record;
* ``experiment``  — regenerate a paper artifact (fig3, throughput, scaling,
  ablations, other-networks, crosscheck, generalized, buffering, traffic,
  design, topologies, faults).

Every subcommand accepts ``--json``: machine-readable output through one
shared formatter (non-finite floats encode as the sentinel strings of
:mod:`repro.runs.result`).  ``model``, ``sweep``, ``saturation`` and
``simulate`` all accept ``--pattern`` (plus ``--hotspot-fraction`` /
``--hotspot-target``), keeping model and simulator comparable for every
registered traffic scenario.

Exit status: 0 on success; 2 on invalid arguments or infeasible scenarios
(:class:`~repro.errors.ConfigurationError` / ``SaturatedError`` /
``PartitionedNetworkError`` — the requested fault set disconnects the
network — printed as a one-line message, matching the argparse
convention); 1 on any other library error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .config import SimConfig, Workload
from .core.bft_model import ButterflyFatTreeModel
from .core.sweep import latency_sweep, load_grid_to_saturation
from .core.throughput import saturation_injection_rate
from .errors import (
    ConfigurationError,
    PartitionedNetworkError,
    ReproError,
    SaturatedError,
)
from .simulation.buffered_sim import BufferedWormholeSimulator
from .simulation.flit_sim import FlitLevelWormholeSimulator
from .simulation.traffic import PoissonTraffic
from .simulation.wormhole_sim import EventDrivenWormholeSimulator
from .topology.butterfly_fattree import ButterflyFatTree
from .topology.properties import describe_topology
from .traffic.spec import available_patterns, make_spec
from .util.tables import format_table
from .util.validation import exact_exponent

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig3": "run_fig3",
    "throughput": "run_throughput_table",
    "scaling": "run_scaling",
    "ablations": "run_ablations",
    "other-networks": "run_other_networks",
    "crosscheck": "run_crosscheck",
    "generalized": "run_generalized",
    "buffering": "run_buffering",
    "service-times": "run_service_times",
    "traffic": "run_traffic_scenarios",
    "design": "run_design_exploration",
    "topologies": "run_topology_matrix",
    "faults": "run_fault_degradation",
}

_SIMULATORS = {
    "event": EventDrivenWormholeSimulator,
    "flit": FlitLevelWormholeSimulator,
    "buffered": BufferedWormholeSimulator,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for shell-completion tooling)."""
    from .runs.scenario import BACKENDS, TOPOLOGIES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wormhole-routed butterfly fat-tree performance models "
        "(Greenberg & Guan, ICPP 1997 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of tables",
        )

    def add_pattern(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--pattern",
            choices=available_patterns(),
            default="uniform",
            help="destination pattern (traffic scenario)",
        )
        p.add_argument(
            "--hotspot-fraction",
            type=float,
            default=0.1,
            help="hotspot pattern: probability of addressing the hot node",
        )
        p.add_argument(
            "--hotspot-target",
            type=int,
            default=0,
            help="hotspot pattern: the hot node",
        )

    def add_common(p: argparse.ArgumentParser, with_load: bool = True) -> None:
        p.add_argument(
            "--processors",
            "-n",
            type=int,
            default=256,
            help="number of processors (power of 4)",
        )
        p.add_argument(
            "--flits", "-f", type=int, default=32, help="message length in flits"
        )
        if with_load:
            p.add_argument(
                "--load",
                "-l",
                type=float,
                default=0.02,
                help="offered load in flits/cycle/PE (Figure-3 units)",
            )
        add_pattern(p)
        add_json(p)

    def add_registry(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--registry",
            default=None,
            help="run-registry directory (default: benchmarks/results/runs)",
        )

    def add_scenario_shape(p: argparse.ArgumentParser) -> None:
        """Flags that pick the topology family, its shape, and the faults."""
        add_common(p)
        p.add_argument(
            "--topology",
            choices=TOPOLOGIES,
            default="bft",
            help="topology family; -n/--processors sets the machine size and "
            "the family flags below refine the shape",
        )
        p.add_argument(
            "--children",
            type=int,
            default=None,
            help="generalized-fattree: block radix (default 4)",
        )
        p.add_argument(
            "--parents",
            type=int,
            default=None,
            help="generalized-fattree: up-links per switch (default 2)",
        )
        p.add_argument(
            "--levels",
            type=int,
            default=None,
            help="generalized-fattree: tree height (derived from -n by default)",
        )
        p.add_argument(
            "--dimension",
            type=int,
            default=None,
            help="hypercube: cube dimension (derived from -n by default)",
        )
        p.add_argument(
            "--radix",
            type=int,
            default=None,
            help="kary-ncube: ring length k (default 4)",
        )
        p.add_argument(
            "--kill-links",
            default="",
            help="comma-separated dead links as direction:level:index "
            "(e.g. up:0:1 kills PE 1's injection link)",
        )
        p.add_argument(
            "--kill-switches",
            default="",
            help="comma-separated dead switches as level:address "
            "(every incident link dies)",
        )
        p.add_argument(
            "--random-link-failures",
            type=int,
            default=0,
            help="additionally kill this many random level>=1 links",
        )
        p.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for --random-link-failures draws",
        )

    p_run = sub.add_parser(
        "run",
        help="evaluate one Scenario through a backend (the unified facade)",
    )
    add_scenario_shape(p_run)
    p_run.add_argument(
        "--backend",
        choices=BACKENDS,
        default="batch",
        help="model (scalar reference), batch (vectorized), simulate, baseline",
    )
    p_run.add_argument(
        "--points",
        type=int,
        default=8,
        help="latency-curve grid points (0 skips the curve; analytical backends)",
    )
    p_run.add_argument(
        "--simulator",
        choices=sorted(_SIMULATORS),
        default="event",
        help="engine of the simulate backend",
    )
    p_run.add_argument(
        "--replications", type=int, default=3, help="simulate backend: seeded runs"
    )
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--warmup", type=float, default=3000.0)
    p_run.add_argument("--measure", type=float, default=9000.0)
    p_run.add_argument(
        "--check",
        action="store_true",
        help="run the pre-solve static checks first; refuse to solve (exit 2) "
        "on any error finding and record the report in the run's provenance",
    )
    p_run.add_argument("--label", default="", help="free-form tag for the registry")
    p_run.add_argument(
        "--save", action="store_true", help="persist the record in the run registry"
    )
    p_run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace-format JSON of the run's spans to PATH "
        "(load it in chrome://tracing or Perfetto)",
    )
    add_registry(p_run)

    p_check = sub.add_parser(
        "check",
        help="pre-solve static analysis of one scenario (no solving): flow "
        "conservation, stage-graph structure, entry weights, stability",
    )
    add_scenario_shape(p_check)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis of the source tree: invariant rules "
        "(REP001-007) plus call-graph concurrency rules (REP201-204)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    p_lint.add_argument(
        "--rules",
        default=None,
        metavar="SPEC",
        help="comma-separated rule selection; a family prefix like REP2xx "
        "or REP2* selects every rule in it (default: all rules)",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (rule, pragma, description) and exit",
    )
    add_json(p_lint)

    p_serve = sub.add_parser(
        "serve",
        help="long-running scenario service: POST /solve a Scenario JSON, "
        "identical questions answered from the indexed registry",
    )
    add_registry(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1", help="listen address")
    p_serve.add_argument(
        "--port", type=int, default=8642, help="listen port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--solver-threads",
        type=int,
        default=1,
        help="solve worker threads (solves are CPU-bound; concurrency "
        "comes from cache hits and request coalescing)",
    )

    p_runs = sub.add_parser("runs", help="run-registry operations")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_list = runs_sub.add_parser("list", help="list persisted runs")
    add_registry(p_list)
    p_list.add_argument("--backend", default=None, help="filter by backend")
    p_list.add_argument("--topology", default=None, help="filter by topology family")
    p_list.add_argument("--label", default=None, help="filter by label")
    p_list.add_argument(
        "--indexed",
        action="store_true",
        help="answer from the SQLite index (refreshed first) instead of "
        "scanning the JSONL file",
    )
    add_json(p_list)
    p_reindex = runs_sub.add_parser(
        "reindex",
        help="rebuild the SQLite query index from the JSONL source of truth",
    )
    add_registry(p_reindex)
    add_json(p_reindex)
    p_diff = runs_sub.add_parser(
        "diff", help="compare two runs (ids, 'latest', or JSON baseline files)"
    )
    p_diff.add_argument("a", help="run id, 'latest', or a JSON file path")
    p_diff.add_argument("b", help="run id, 'latest', or a JSON file path")
    add_registry(p_diff)
    p_diff.add_argument(
        "--top", type=int, default=25, help="rows shown (largest |rel| first)"
    )
    add_json(p_diff)
    p_doctor = runs_sub.add_parser(
        "doctor", help="audit the records file for corrupted lines"
    )
    add_registry(p_doctor)
    p_doctor.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt lines to runs.quarantine.jsonl and rewrite the "
        "records file without them",
    )
    add_json(p_doctor)
    p_stats = runs_sub.add_parser(
        "stats", help="aggregate observability telemetry across persisted runs"
    )
    add_registry(p_stats)
    p_stats.add_argument("--backend", default=None, help="filter by backend")
    p_stats.add_argument("--topology", default=None, help="filter by topology family")
    p_stats.add_argument("--label", default=None, help="filter by label")
    add_json(p_stats)

    p_model = sub.add_parser("model", help="evaluate the analytical model once")
    add_common(p_model)

    p_sweep = sub.add_parser("sweep", help="model latency-vs-load table")
    add_common(p_sweep, with_load=False)
    p_sweep.add_argument("--points", type=int, default=10, help="grid points")
    p_sweep.add_argument(
        "--scalar",
        action="store_true",
        help="force one model solve per grid point (default: one batched "
        "NumPy solve for the whole grid)",
    )

    p_sat = sub.add_parser("saturation", help="Eq. 26 saturation throughput")
    p_sat.add_argument("--processors", "-n", type=int, default=256)
    p_sat.add_argument(
        "--flits",
        "-f",
        type=str,
        default="16,32,64",
        help="comma-separated message lengths",
    )
    add_pattern(p_sat)
    add_json(p_sat)

    p_sim = sub.add_parser("simulate", help="run one simulation")
    add_common(p_sim)
    p_sim.add_argument(
        "--simulator",
        choices=sorted(_SIMULATORS),
        default="event",
        help="engine: event (worm-level), flit (cycle-level), buffered (VC router)",
    )
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--warmup", type=float, default=3000.0)
    p_sim.add_argument("--measure", type=float, default=9000.0)

    p_info = sub.add_parser("info", help="topology summary")
    p_info.add_argument("--processors", "-n", type=int, default=256)
    add_json(p_info)

    p_patterns = sub.add_parser(
        "patterns", help="list registered traffic scenarios (--pattern choices)"
    )
    add_json(p_patterns)

    p_design = sub.add_parser(
        "design",
        help="SLO-driven design-space exploration over topology families",
    )
    p_design.add_argument(
        "--families",
        default="bft",
        help="comma-separated topology families "
        "(bft, generalized-fattree, hypercube, kary-ncube)",
    )
    p_design.add_argument(
        "--sizes",
        default="16,64,256,1024",
        help="comma-separated machine sizes; sizes a family cannot realize "
        "are dropped for that family",
    )
    p_design.add_argument(
        "--flits", "-f", default="16,32,64", help="comma-separated message lengths"
    )
    p_design.add_argument(
        "--patterns",
        default="uniform",
        help="comma-separated traffic patterns (see `repro patterns`)",
    )
    p_design.add_argument(
        "--buffer-depths",
        default="1",
        help="comma-separated per-port buffer depths (cost-model knob)",
    )
    p_design.add_argument(
        "--children", type=int, default=4, help="generalized-fattree block radix"
    )
    p_design.add_argument(
        "--parents", type=int, default=2, help="generalized-fattree up-link count"
    )
    p_design.add_argument("--radix", type=int, default=4, help="kary-ncube radix")
    p_design.add_argument(
        "--demand",
        type=float,
        default=0.02,
        help="demand operating point in flits/cycle/PE",
    )
    p_design.add_argument(
        "--slo",
        type=float,
        default=75.0,
        help="latency SLO (cycles) at the demand point",
    )
    p_design.add_argument(
        "--min-headroom",
        type=float,
        default=1.0,
        help="minimum saturation-load / demand ratio",
    )
    p_design.add_argument(
        "--max-cost", type=float, default=None, help="optional budget cap"
    )
    p_design.add_argument(
        "--survive-faults",
        type=int,
        default=0,
        help="require the SLO to also hold after this many random link "
        "failures (0 disables the check)",
    )
    p_design.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the --survive-faults failure draw",
    )
    p_design.add_argument(
        "--processes", type=int, default=1, help="worker processes for evaluation"
    )
    p_design.add_argument(
        "--save",
        action="store_true",
        help="record the exploration (feasible set, Pareto frontier) as a "
        "kind='exploration' run in the registry so frontiers diff across PRs",
    )
    p_design.add_argument("--label", default="", help="free-form tag for the registry")
    add_registry(p_design)
    add_json(p_design)
    p_design.add_argument(
        "--hotspot-fraction",
        type=float,
        default=0.1,
        help="hotspot pattern: probability of addressing the hot node",
    )
    p_design.add_argument(
        "--hotspot-target", type=int, default=0, help="hotspot pattern: the hot node"
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.add_argument(
        "--full", action="store_true", help="paper-scale grids and windows"
    )
    add_json(p_exp)

    return parser


def _spec_from_args(args):
    """The TrafficSpec selected by --pattern, or None for plain uniform.

    Uniform keeps the closed-form fast path (and byte-identical output with
    older versions); every other pattern builds a spec for the pattern-aware
    model/simulator.
    """
    if args.pattern == "uniform":
        return None
    return make_spec(
        args.pattern,
        hotspot_fraction=args.hotspot_fraction,
        hotspot_target=args.hotspot_target,
    )


def _pattern_params_from_args(args) -> dict:
    """Scenario ``pattern_params`` for the selected --pattern."""
    if args.pattern == "uniform":
        return {}
    return {
        "hotspot_fraction": args.hotspot_fraction,
        "hotspot_target": args.hotspot_target,
    }


def _registry_from_args(args):
    from .runs.registry import RunRegistry

    return RunRegistry(args.registry)


def _faults_from_args(args):
    """The Scenario ``faults`` mapping selected by the --kill-* flags.

    ``None`` (the fault-free fast path, byte-identical with older
    versions) unless at least one fault flag was given.
    """
    dead_links = [x.strip() for x in args.kill_links.split(",") if x.strip()]
    dead_switches = [x.strip() for x in args.kill_switches.split(",") if x.strip()]
    if not dead_links and not dead_switches and not args.random_link_failures:
        return None
    faults: dict = {}
    if dead_links:
        faults["dead_links"] = dead_links
    if dead_switches:
        faults["dead_switches"] = dead_switches
    if args.random_link_failures:
        faults["random_link_failures"] = args.random_link_failures
        faults["seed"] = args.fault_seed
    return faults


def _scenario_from_args(args):
    """The :class:`Scenario` described by the shared scenario flags.

    Flags a subcommand does not define (``repro check`` has no backend or
    measurement protocol) fall back to the Scenario defaults.
    """
    from .runs import Scenario

    return Scenario(
        topology=args.topology,
        num_processors=args.processors,
        children=args.children,
        parents=args.parents,
        levels=args.levels,
        dimension=args.dimension,
        radix=args.radix,
        message_flits=args.flits,
        flit_load=args.load,
        pattern=args.pattern,
        pattern_params=_pattern_params_from_args(args),
        backend=getattr(args, "backend", "batch"),
        sweep_points=getattr(args, "points", 8),
        simulator=getattr(args, "simulator", "event"),
        replications=getattr(args, "replications", 3),
        warmup_cycles=getattr(args, "warmup", 3000.0),
        measure_cycles=getattr(args, "measure", 9000.0),
        seed=getattr(args, "seed", 1),
        label=getattr(args, "label", ""),
        faults=_faults_from_args(args),
    )


# --- command handlers: each returns (text, json_payload[, exit_status]) -------------


def _cmd_check(args):
    from .analysis.model import analyze_scenario

    report = analyze_scenario(_scenario_from_args(args))
    return report.render(), report.to_json(), 0 if report.ok else 2


def _cmd_lint(args):
    from pathlib import Path

    from .analysis import lint as linter

    if args.list_rules:
        payload = {
            "rules": [
                {"rule": rule, "pragma": entry.pragma, "summary": entry.summary}
                for rule, entry in linter.RULE_CATALOG.items()
            ]
        }
        return linter.list_rules(), payload, 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        raise ConfigurationError(f"no such path: {missing[0]}")
    rules = linter.parse_rules(args.rules) if args.rules else None
    findings = linter.run_lint(args.paths, rules=rules)
    payload = json.loads(linter.report_json(args.paths, rules, findings))
    if findings:
        from .analysis.findings import render_findings

        text = "{}\n\n{} finding(s)".format(render_findings(findings), len(findings))
        return text, payload, 1
    checked = ", ".join(payload["rules"])
    return f"clean: {len(args.paths)} path(s), rules {checked}", payload, 0


def _cmd_run(args):
    from .runs import Runner

    scenario = _scenario_from_args(args)
    extra_provenance = None
    if args.check:
        from .analysis.model import analyze_scenario

        report = analyze_scenario(scenario)
        if not report.ok:
            first = report.errors()[0]
            raise ConfigurationError(
                f"pre-solve check failed ({len(report.errors())} error(s)); "
                f"first: {first.rule} at {first.location}: {first.message}"
            )
        extra_provenance = {"pre_solve_checks": report.to_json()}
    runner = Runner(registry=_registry_from_args(args) if args.save else None)
    if args.trace:
        from .obs import tracing

        with tracing() as tracer:
            result = runner.run(scenario, extra_provenance=extra_provenance)
        tracer.write(args.trace)
    else:
        result = runner.run(scenario, extra_provenance=extra_provenance)

    lines = [scenario.describe()]
    rows = []
    point = result.metrics.get("point") or {}
    for key in sorted(point):
        rows.append((f"point.{key}", point[key]))
    sat = result.metrics.get("saturation") or {}
    for key in ("injection_rate", "flit_load"):
        if key in sat:
            rows.append((f"saturation.{key}", sat[key]))
    faults = result.metrics.get("faults")
    if faults:
        rows.append(("faults.dead_links", ",".join(faults["dead_links"]) or "-"))
        rows.append(("faults.dead_terminals", len(faults["dead_terminals"])))
    # Per-phase wall times (build_s, saturation_s, evaluate_s/simulate_s,
    # total_s) — not just the total, which hid where a slow run spent it.
    for key in sorted(result.timings):
        rows.append((f"time.{key}", result.timings[key]))
    lines.append(format_table(["metric", "value"], rows, title=result.run_id))
    curve = result.metrics.get("curve")
    if curve:
        lines.append("")
        lines.append(
            format_table(
                ["load (fl/cyc/PE)", "latency (cycles)"],
                list(zip(curve["flit_loads"], curve["latencies"])),
                title=curve["label"],
            )
        )
    if args.save:
        lines.append(f"saved to {runner.registry.records_path} as {result.run_id}")
    return "\n".join(lines), result.to_json()


def _cmd_serve(args):
    import asyncio

    from .serve import ScenarioService

    service = ScenarioService(
        _registry_from_args(args),
        host=args.host,
        port=args.port,
        solver_threads=args.solver_threads,
    )

    async def _serve() -> None:
        await service.start()
        print(
            f"repro serve: listening on {service.address} "
            f"(registry: {service.cache.registry.path}); "
            "POST /solve, GET /stats, GET /health",
            flush=True,
        )
        await service.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return "repro serve: stopped", {"address": service.address}


def _cmd_runs(args):
    registry = _registry_from_args(args)
    if args.runs_command == "reindex":
        from .runs import RunIndex

        with RunIndex(registry) as index:
            indexed = index.rebuild()
            skipped = index.skipped
        text = (
            f"reindexed {registry.path}: {indexed} record(s) -> {index.path.name}"
            + (f" ({skipped} unindexable record(s) skipped)" if skipped else "")
        )
        return text, {
            "registry": str(registry.path),
            "index": str(index.path),
            "indexed": indexed,
            "skipped": skipped,
        }
    if args.runs_command == "list":
        if args.indexed:
            from .runs import RunIndex

            with RunIndex(registry) as index:
                records = index.query(
                    backend=args.backend, topology=args.topology, label=args.label
                )
        else:
            records = registry.query(
                backend=args.backend, topology=args.topology, label=args.label
            )
        rows = []
        for r in records:
            sc = r.scenario
            point = (r.metrics.get("point") or {}) if r.kind == "scenario" else {}
            sat = (r.metrics.get("saturation") or {}) if r.kind == "scenario" else {}
            rows.append(
                (
                    r.run_id,
                    r.kind,
                    sc.backend if sc else "-",
                    sc.topology if sc else "-",
                    sc.num_processors if sc else None,
                    sc.message_flits if sc else None,
                    sc.pattern if sc else "-",
                    point.get("latency"),
                    sat.get("flit_load"),
                    r.timings.get("build_s"),
                    r.timings.get("saturation_s"),
                    # Analytical backends time "evaluate", the simulator
                    # "simulate" — one column, whichever the run recorded.
                    r.timings.get("evaluate_s", r.timings.get("simulate_s")),
                    r.timings.get("total_s"),
                    r.label or "-",
                )
            )
        text = format_table(
            ["run id", "kind", "backend", "topology", "N", "flits", "pattern",
             "latency", "sat load", "build s", "sat s", "eval s", "total s",
             "label"],
            rows,
            title=f"{len(rows)} run(s) in {registry.path}",
        )
        if registry.skipped_versions:
            text += (
                f"\n({registry.skipped_versions} record(s) from another schema "
                "version skipped)"
            )
        if registry.skipped_corrupt:
            text += (
                f"\n({registry.skipped_corrupt} corrupted line(s) skipped; "
                "see `repro runs doctor`)"
            )
        return text, {
            "registry": str(registry.path),
            "runs": [r.to_json() for r in records],
            "skipped_versions": registry.skipped_versions,
            "skipped_corrupt": registry.skipped_corrupt,
        }
    if args.runs_command == "diff":
        diff = registry.diff(args.a, args.b)
        return diff.render(top=args.top), diff.to_json()
    if args.runs_command == "doctor":
        report = registry.doctor(quarantine=args.quarantine)
        return report.render(), report.to_json()
    if args.runs_command == "stats":
        from .runs import collect_stats

        report = collect_stats(
            registry.query(
                backend=args.backend, topology=args.topology, label=args.label
            ),
            source=str(registry.path),
        )
        return report.render(), report.to_json()
    raise ConfigurationError(f"unknown runs subcommand {args.runs_command!r}")


def _cmd_model(args):
    import numpy as np

    model = ButterflyFatTreeModel(args.processors)
    wl = Workload.from_flit_load(args.load, args.flits)
    spec = _spec_from_args(args)
    if spec is not None:
        tm = model.traffic_model(spec, args.flits)
        latency = float(tm.latency_batch(np.array([wl.injection_rate]), args.flits)[0])
        rows = [("latency", latency), ("saturated", not (latency < float("inf")))]
        title = f"pattern={spec.name}, load={args.load} fl/cyc/PE"
    else:
        solution = model.solve(wl)
        rows = list(solution.breakdown().items())
        rows.append(("saturated", solution.saturated))
        title = f"load={args.load} fl/cyc/PE"
    text = "\n".join(
        [model.describe(), format_table(["component", "value"], rows, title=title)]
    )
    payload = {
        "num_processors": args.processors,
        "message_flits": args.flits,
        "flit_load": args.load,
        "pattern": args.pattern,
        "components": {k: v for k, v in rows},
    }
    return text, payload


def _cmd_sweep(args):
    model = ButterflyFatTreeModel(args.processors)
    spec = _spec_from_args(args)
    if args.scalar and spec is not None:
        raise ConfigurationError(
            "--scalar (the per-point batch-engine cross-check) only applies "
            "to the uniform closed-form model; drop it or drop --pattern"
        )
    # A pattern builds the per-channel solver once; grid and sweep then both
    # go through its batch engine.
    evaluator = model.traffic_model(spec, args.flits) if spec is not None else model
    grid = load_grid_to_saturation(evaluator, args.flits, n_points=args.points)
    # Handing latency_sweep the model routes the grid through the batch
    # engine (one vectorized solve); a plain wrapper forces per-point mode.
    if args.scalar:
        evaluator = lambda wl: model.latency(wl)
    curve = latency_sweep(evaluator, args.flits, grid)
    suffix = f", {spec.name}" if spec is not None else ""
    text = format_table(
        ["load (fl/cyc/PE)", "latency (cycles)"],
        curve.as_rows(),
        title=f"N={args.processors}, {args.flits}-flit{suffix}",
    )
    payload = {
        "num_processors": args.processors,
        "message_flits": args.flits,
        "pattern": args.pattern,
        "flit_loads": [float(x) for x in curve.flit_loads],
        "latencies": [float(y) for y in curve.latencies],
    }
    return text, payload


def _cmd_saturation(args):
    model = ButterflyFatTreeModel(args.processors)
    spec = _spec_from_args(args)
    rows = []
    for flits in (int(x) for x in args.flits.split(",")):
        sat = saturation_injection_rate(model, flits, spec=spec)
        rows.append((flits, sat.injection_rate, sat.flit_load))
    suffix = f", {spec.name}" if spec is not None else ""
    text = format_table(
        ["flits", "lambda0 (msgs/cyc/PE)", "flit load (fl/cyc/PE)"],
        rows,
        title=f"Saturation, N={args.processors}{suffix}",
    )
    payload = {
        "num_processors": args.processors,
        "pattern": args.pattern,
        "saturation": [
            {"message_flits": f, "injection_rate": r, "flit_load": fl}
            for f, r, fl in rows
        ],
    }
    return text, payload


def _cmd_simulate(args):
    import numpy as np

    topo = ButterflyFatTree(args.processors)
    wl = Workload.from_flit_load(args.load, args.flits)
    cfg = SimConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure, seed=args.seed
    )
    spec = _spec_from_args(args)
    sim_cls = _SIMULATORS[args.simulator]
    kwargs = {}
    if spec is not None:
        kwargs["traffic"] = PoissonTraffic(
            args.processors, wl, seed=args.seed, spec=spec
        )
    result = sim_cls(topo, wl, cfg, keep_samples=False, **kwargs).run()
    model = ButterflyFatTreeModel(args.processors)
    if spec is not None:
        tm = model.traffic_model(spec, args.flits)
        prediction = float(
            tm.latency_batch(np.array([wl.injection_rate]), args.flits)[0]
        )
    else:
        prediction = model.latency(wl)
    lines = [
        f"simulator: {args.simulator}"
        + (f" (pattern: {spec.name})" if spec is not None else ""),
        result.summary(),
        f"model prediction: {prediction:.3f} cycles",
    ]
    payload = {
        "simulator": args.simulator,
        "pattern": args.pattern,
        "num_processors": args.processors,
        "message_flits": args.flits,
        "flit_load": args.load,
        "latency_mean": result.latency_mean,
        "latency_std": result.latency_std,
        "throughput": result.delivered_flit_rate,
        "stable": result.stable,
        "censored_tagged": result.censored_tagged,
        "model_prediction": prediction,
    }
    return "\n".join(lines), payload


def _cmd_info(args):
    topo = ButterflyFatTree(args.processors)
    info = describe_topology(topo)
    rows = [
        ("processors", info["processors"]),
        ("links", info["links"]),
    ]
    rows += sorted(info["links_per_class"].items())
    rows += [(f"groups of size {k}", v) for k, v in sorted(info["groups_by_size"].items())]
    text = "\n".join(
        [topo.describe(), format_table(["property", "value"], rows)]
    )
    return text, info


def _cmd_patterns(args):
    from .traffic.spec import pattern_descriptions

    descriptions = pattern_descriptions()
    rows = sorted(descriptions.items())
    text = format_table(
        ["pattern", "description"],
        rows,
        title="Registered traffic scenarios (usable as --pattern / --patterns)",
    )
    return text, {"patterns": dict(descriptions)}


def _split_ints(text: str, flag: str) -> list[int]:
    try:
        return [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise ConfigurationError(f"{flag} expects comma-separated integers, got {text!r}")


def _design_family_spaces(args) -> list:
    """Map the shared --sizes axis onto each requested family's parameters.

    Sizes a family cannot realize (e.g. 32 PEs for a power-of-four fat
    tree) are dropped for that family; a family left with no sizes at all
    is an error.
    """
    from .design import FamilySpace, design_family

    sizes = _split_ints(args.sizes, "--sizes")
    spaces = []
    for name in [f.strip() for f in args.families.split(",") if f.strip()]:
        fam = design_family(name)
        if name == "generalized-fattree":
            assignments = [
                {"children": args.children, "parents": args.parents, "levels": lv}
                for lv in (exact_exponent(args.children, n) for n in sizes)
                if lv is not None
            ]
        elif name == "kary-ncube":
            assignments = [
                {"radix": args.radix, "dimensions": d}
                for d in (exact_exponent(args.radix, n) for n in sizes)
                if d is not None
            ]
        else:
            assignments = [
                p for p in (fam.sizes_to_params(n) for n in sizes) if p is not None
            ]
        if not assignments:
            raise ConfigurationError(
                f"family {name!r} cannot realize any of the requested sizes {sizes}"
            )
        grid = {
            key: tuple(dict.fromkeys(a[key] for a in assignments))
            for key in fam.param_names
        }
        spaces.append(FamilySpace.build(name, **grid))
    return spaces


def _cmd_design(args):
    from .design import DesignSpace, Requirements, explore

    patterns = tuple(
        make_spec(
            name.strip(),
            hotspot_fraction=args.hotspot_fraction,
            hotspot_target=args.hotspot_target,
        )
        for name in args.patterns.split(",")
        if name.strip()
    )
    space = DesignSpace(
        families=tuple(_design_family_spaces(args)),
        message_lengths=tuple(_split_ints(args.flits, "--flits")),
        patterns=patterns,
        buffer_depths=tuple(_split_ints(args.buffer_depths, "--buffer-depths")),
    )
    requirements = Requirements(
        demand_flit_load=args.demand,
        latency_slo=args.slo,
        min_headroom=args.min_headroom,
        max_cost=args.max_cost,
        survives_faults=args.survive_faults,
        fault_seed=args.fault_seed,
    )
    result = explore(space, requirements, processes=args.processes)
    text = result.render()
    payload = result.to_json()
    if args.save:
        registry = _registry_from_args(args)
        record = result.to_run_result(label=args.label)
        registry.save(record)
        text += f"\nsaved to {registry.records_path} as {record.run_id}"
        payload = {"run_id": record.run_id, **payload}
    return text, payload


def _cmd_experiment(args):
    import os

    from . import experiments

    if args.full:
        os.environ["REPRO_FULL"] = "1"
    runner = getattr(experiments, _EXPERIMENTS[args.name])
    text = runner().render()
    return text, {"experiment": args.name, "full": args.full, "rendered": text}


def render_output(text: str, payload, *, as_json: bool) -> str:
    """The shared output formatter every subcommand goes through.

    ``--json`` emits the handler's structured payload (sorted keys,
    non-finite floats as the run-record sentinel strings); otherwise the
    handler's plain-text rendering is passed through unchanged.
    """
    if not as_json:
        return text
    from .runs.result import json_safe

    return json.dumps(json_safe(payload), indent=2, sort_keys=True)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "check": _cmd_check,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "runs": _cmd_runs,
        "model": _cmd_model,
        "sweep": _cmd_sweep,
        "saturation": _cmd_saturation,
        "simulate": _cmd_simulate,
        "info": _cmd_info,
        "patterns": _cmd_patterns,
        "design": _cmd_design,
        "experiment": _cmd_experiment,
    }
    status = 0
    try:
        outcome = handlers[args.command](args)
        if len(outcome) == 3:
            text, payload, status = outcome
        else:
            text, payload = outcome
        try:
            print(render_output(text, payload, as_json=getattr(args, "json", False)))
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; that is not an error.
            sys.stderr.close()
    except (ConfigurationError, SaturatedError, PartitionedNetworkError) as exc:
        # Invalid arguments / infeasible scenarios (including fault sets
        # that disconnect the network): argparse-style status 2 with a
        # one-line message, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
