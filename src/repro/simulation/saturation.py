"""Empirical saturation-throughput search.

Mirrors the model-side Eq. 26 solver (:mod:`repro.core.throughput`) with a
simulation-backed stability predicate: an operating point is *stable* when a
run delivers (nearly) everything it was offered — no tagged message is
censored at the horizon and the delivered flit rate stays within 5% of the
offered rate.  The same bracket-then-bisect search then locates the
saturation load.

Simulation noise makes the empirical boundary fuzzier than the model's, so
the default tolerance is coarser and each probe can be averaged over
replications.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SimConfig, Workload
from ..core.throughput import SaturationResult, saturation_injection_rate
from ..topology.base import SimTopology
from ..util.rng import replication_seeds
from .wormhole_sim import EventDrivenWormholeSimulator

__all__ = ["empirical_saturation"]


@dataclass(frozen=True)
class _SimStability:
    """Adapter giving the throughput search a simulator-backed predicate."""

    topology: SimTopology
    config: SimConfig
    replications: int

    def is_stable(self, workload: Workload) -> bool:
        seeds = replication_seeds(self.config.seed, self.replications)
        stable_votes = 0
        for seed in seeds:
            # replace() reseeds without hand-copying (and dropping) fields.
            cfg = replace(self.config, seed=seed)
            result = EventDrivenWormholeSimulator(
                self.topology, workload, cfg, keep_samples=False
            ).run()
            if result.stable:
                stable_votes += 1
        # Majority vote damps borderline noise.
        return 2 * stable_votes > self.replications


def empirical_saturation(
    topology: SimTopology,
    message_flits: int,
    config: SimConfig,
    *,
    replications: int = 1,
    rel_tol: float = 0.03,
    initial_rate: float | None = None,
) -> SaturationResult:
    """Locate the simulated saturation injection rate of ``topology``.

    Parameters
    ----------
    topology:
        Network to drive (any SimTopology).
    message_flits:
        Worm length for the sweep.
    config:
        Measurement protocol template; per-probe seeds are derived from
        ``config.seed``.
    replications:
        Runs per probed operating point (majority vote on stability).
    rel_tol:
        Relative bisection tolerance (simulation noise rarely supports
        better than a few percent).
    """
    probe = _SimStability(topology, config, replications)
    return saturation_injection_rate(
        probe,
        message_flits,
        rel_tol=rel_tol,
        initial_rate=initial_rate,
    )
