"""Replication management and simulated latency curves.

Bridges the simulators to the experiment harness: run several independently
seeded replications of an operating point, aggregate them with Student-t
confidence intervals, and sweep a load grid into a
:class:`~repro.core.sweep.LatencyCurve` directly comparable with the model's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import partial
from typing import Sequence

import numpy as np

from ..config import SimConfig, Workload
from ..core.sweep import LatencyCurve
from ..topology.base import SimTopology
from ..util.parallel import parallel_map
from ..util.rng import replication_seeds
from ..util.stats import mean_confidence_interval
from .metrics import SimulationResult
from .wormhole_sim import EventDrivenWormholeSimulator

__all__ = ["ReplicatedResult", "run_replications", "simulated_latency_curve"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of independently seeded replications at one operating point."""

    workload: Workload
    results: tuple[SimulationResult, ...]

    @property
    def latency_mean(self) -> float:
        """Mean of per-replication latency means (nan when nothing delivered)."""
        means = [r.latency_mean for r in self.results if not math.isnan(r.latency_mean)]
        return float(np.mean(means)) if means else math.nan

    @property
    def latency_ci(self) -> float:
        """95% Student-t half-interval across replications."""
        means = [r.latency_mean for r in self.results if not math.isnan(r.latency_mean)]
        return mean_confidence_interval(means)[1]

    @property
    def delivered_flit_rate(self) -> float:
        return float(np.mean([r.delivered_flit_rate for r in self.results]))

    @property
    def stable(self) -> bool:
        """Majority of replications in steady state."""
        votes = sum(1 for r in self.results if r.stable)
        return 2 * votes > len(self.results)


def run_replications(
    topology: SimTopology,
    workload: Workload,
    config: SimConfig,
    *,
    replications: int = 3,
    simulator_cls=EventDrivenWormholeSimulator,
    keep_samples: bool = False,
) -> ReplicatedResult:
    """Run ``replications`` independently seeded simulations of one point."""
    results = []
    for seed in replication_seeds(config.seed, replications):
        # replace() reseeds without hand-copying fields (a hand-written copy
        # silently dropped `extra` and would drop any future field).
        cfg = replace(config, seed=seed)
        results.append(
            simulator_cls(topology, workload, cfg, keep_samples=keep_samples).run()
        )
    return ReplicatedResult(workload=workload, results=tuple(results))


def _curve_point(
    load: float,
    *,
    topology: SimTopology,
    message_flits: int,
    config: SimConfig,
    replications: int,
    simulator_cls,
) -> float:
    """Simulate one operating point of a latency curve (worker function)."""
    wl = Workload.from_flit_load(float(load), message_flits)
    if replications <= 1:
        res = simulator_cls(topology, wl, config, keep_samples=False).run()
        return res.latency_mean if res.stable else math.inf
    rep = run_replications(
        topology, wl, config, replications=replications, simulator_cls=simulator_cls
    )
    return rep.latency_mean if rep.stable else math.inf


def simulated_latency_curve(
    topology: SimTopology,
    message_flits: int,
    flit_loads: Sequence[float],
    config: SimConfig,
    *,
    replications: int = 1,
    label: str = "simulation",
    simulator_cls=EventDrivenWormholeSimulator,
    processes: int = 1,
    chunksize: int = 1,
) -> LatencyCurve:
    """Measure a latency-vs-load series (the "Experiment" points of Figure 3).

    Unstable points (censored tagged messages / throughput collapse) are
    recorded as ``inf``, matching how saturated model points are reported.
    Operating points are independent, so ``processes > 1`` fans them out
    across worker processes (results are bit-identical to the serial run —
    every point derives its own seeded RNG streams).  ``chunksize`` batches
    grid points per worker dispatch; the default of 1 keeps dispatch
    dynamic, which balances best on ascending grids whose near-saturation
    points simulate far more events than the low-load ones (model-backed
    sweeps don't pass through here at all — they go through the batch
    solver in one NumPy pass).
    """
    loads = np.asarray(list(flit_loads), dtype=float)
    worker = partial(
        _curve_point,
        topology=topology,
        message_flits=message_flits,
        config=config,
        replications=replications,
        simulator_cls=simulator_cls,
    )
    lat = np.array(
        parallel_map(
            worker, [float(x) for x in loads], processes=processes, chunksize=chunksize
        ),
        dtype=float,
    )
    return LatencyCurve(
        label=label, message_flits=message_flits, flit_loads=loads, latencies=lat
    )
