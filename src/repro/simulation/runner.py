"""Replication management and simulated latency curves.

Bridges the simulators to the experiment harness: run several independently
seeded replications of an operating point, aggregate them with Student-t
confidence intervals, and sweep a load grid into a
:class:`~repro.core.sweep.LatencyCurve` directly comparable with the model's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import partial
from typing import Sequence

import numpy as np

from ..config import SimConfig, Workload
from ..core.sweep import LatencyCurve
from ..errors import ConfigurationError, PartitionedNetworkError
from ..obs import METRICS, trace_span
from ..topology.base import SimTopology
from ..util.parallel import parallel_map
from ..util.rng import replication_seeds
from ..util.stats import mean_confidence_interval
from .metrics import SimulationResult
from .wormhole_sim import EventDrivenWormholeSimulator

__all__ = [
    "ReplicatedResult",
    "ReplicationFailure",
    "run_replications",
    "simulated_latency_curve",
]


@dataclass(frozen=True)
class ReplicationFailure:
    """One replication slot that produced no result despite rescue retries."""

    seed: int
    attempts: int
    error: str


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of independently seeded replications at one operating point."""

    workload: Workload
    results: tuple[SimulationResult, ...]
    #: Replication slots that failed even after rescue reseeding.
    failures: tuple[ReplicationFailure, ...] = ()
    #: Number of results that came from a rescue seed rather than the
    #: originally scheduled one.
    rescued: int = 0

    @property
    def latency_mean(self) -> float:
        """Mean of per-replication latency means (nan when nothing delivered)."""
        means = [r.latency_mean for r in self.results if not math.isnan(r.latency_mean)]
        return float(np.mean(means)) if means else math.nan

    @property
    def latency_ci(self) -> float:
        """95% Student-t half-interval across replications."""
        means = [r.latency_mean for r in self.results if not math.isnan(r.latency_mean)]
        return mean_confidence_interval(means)[1]

    @property
    def delivered_flit_rate(self) -> float:
        return float(np.mean([r.delivered_flit_rate for r in self.results]))

    @property
    def stable(self) -> bool:
        """Majority of replications in steady state."""
        votes = sum(1 for r in self.results if r.stable)
        return 2 * votes > len(self.results)


def _rescue_seed(base_seed: int, index: int, attempt: int) -> int:
    """Deterministic replacement seed for a crashed replication.

    Derived from the protocol's base seed plus the replication index and
    the retry attempt, so a rescued run is reproducible and distinct from
    every scheduled replication seed.
    """
    ss = np.random.SeedSequence([abs(int(base_seed)), 0x5EED, index, attempt])
    return int(ss.generate_state(1, np.uint64)[0])


def run_replications(
    topology: SimTopology,
    workload: Workload,
    config: SimConfig,
    *,
    replications: int = 3,
    simulator_cls=EventDrivenWormholeSimulator,
    keep_samples: bool = False,
    traffic_factory=None,
    max_rescues: int = 2,
) -> ReplicatedResult:
    """Run ``replications`` independently seeded simulations of one point.

    A replication that *crashes* (raises) is retried up to ``max_rescues``
    times with deterministic rescue seeds (:func:`_rescue_seed`) — a
    defective seed should not void a whole measurement campaign.
    Deterministic configuration problems are different: a
    :class:`~repro.errors.ConfigurationError` or
    :class:`~repro.errors.PartitionedNetworkError` would fail identically
    under any seed, so those re-raise immediately.  Slots that fail every
    attempt are recorded as :class:`ReplicationFailure` on the result (the
    aggregate degrades to the surviving replications); if *no* slot
    produces a result, the last error re-raises.

    ``traffic_factory``, when given, is called with each replication's
    seed and must return the simulator's ``traffic`` source — this is how
    pattern and degraded (fault-masked) workloads reseed per replication.
    """
    results = []
    failures: list[ReplicationFailure] = []
    rescued = 0
    last_error: Exception | None = None
    for index, seed in enumerate(replication_seeds(config.seed, replications)):
        attempt = 0
        attempt_seed = seed
        while True:
            # replace() reseeds without hand-copying fields (a hand-written
            # copy silently dropped `extra` and would drop any future field).
            cfg = replace(config, seed=attempt_seed)
            kwargs = {}
            if traffic_factory is not None:
                kwargs["traffic"] = traffic_factory(attempt_seed)
            try:
                with trace_span(
                    "simulate/replication", seed=attempt_seed, attempt=attempt
                ):
                    results.append(
                        simulator_cls(
                            topology, workload, cfg, keep_samples=keep_samples, **kwargs
                        ).run()
                    )
            except (ConfigurationError, PartitionedNetworkError):
                # Deterministic: no seed can rescue these.
                raise
            except Exception as exc:
                last_error = exc
                if attempt >= max_rescues:
                    METRICS.add("sim.replications.failed")
                    failures.append(
                        ReplicationFailure(
                            seed=seed,
                            attempts=attempt + 1,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    break
                attempt += 1
                attempt_seed = _rescue_seed(config.seed, index, attempt)
                METRICS.add("sim.replications.rescue_attempts")
            else:
                METRICS.add("sim.replications.completed")
                if attempt > 0:
                    rescued += 1
                    METRICS.add("sim.replications.rescued")
                break
    if not results:
        if last_error is not None:
            raise last_error
        raise ConfigurationError("replications must be >= 1")
    return ReplicatedResult(
        workload=workload,
        results=tuple(results),
        failures=tuple(failures),
        rescued=rescued,
    )


def _curve_point(
    load: float,
    *,
    topology: SimTopology,
    message_flits: int,
    config: SimConfig,
    replications: int,
    simulator_cls,
) -> float:
    """Simulate one operating point of a latency curve (worker function)."""
    wl = Workload.from_flit_load(float(load), message_flits)
    if replications <= 1:
        res = simulator_cls(topology, wl, config, keep_samples=False).run()
        return res.latency_mean if res.stable else math.inf
    rep = run_replications(
        topology, wl, config, replications=replications, simulator_cls=simulator_cls
    )
    return rep.latency_mean if rep.stable else math.inf


def simulated_latency_curve(
    topology: SimTopology,
    message_flits: int,
    flit_loads: Sequence[float],
    config: SimConfig,
    *,
    replications: int = 1,
    label: str = "simulation",
    simulator_cls=EventDrivenWormholeSimulator,
    processes: int = 1,
    chunksize: int = 1,
) -> LatencyCurve:
    """Measure a latency-vs-load series (the "Experiment" points of Figure 3).

    Unstable points (censored tagged messages / throughput collapse) are
    recorded as ``inf``, matching how saturated model points are reported.
    Operating points are independent, so ``processes > 1`` fans them out
    across worker processes (results are bit-identical to the serial run —
    every point derives its own seeded RNG streams).  ``chunksize`` batches
    grid points per worker dispatch; the default of 1 keeps dispatch
    dynamic, which balances best on ascending grids whose near-saturation
    points simulate far more events than the low-load ones (model-backed
    sweeps don't pass through here at all — they go through the batch
    solver in one NumPy pass).
    """
    loads = np.asarray(list(flit_loads), dtype=float)
    worker = partial(
        _curve_point,
        topology=topology,
        message_flits=message_flits,
        config=config,
        replications=replications,
        simulator_cls=simulator_cls,
    )
    lat = np.array(
        parallel_map(
            worker, [float(x) for x in loads], processes=processes, chunksize=chunksize
        ),
        dtype=float,
    )
    return LatencyCurve(
        label=label, message_flits=message_flits, flit_loads=loads, latencies=lat
    )
