"""Measurement accounting shared by both simulators.

Implements the warmup / tagged-window / drain protocol described in
:class:`repro.config.SimConfig`, collects latency moments (and optionally
raw samples for percentiles), counts per-channel-class link acquisitions
inside the window (to validate the Eq. 14 rates), and accumulates per-class
busy time (to validate utilizations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..config import SimConfig, Workload
from ..topology.base import LinkClass
from ..util.stats import OnlineStats

__all__ = ["ClassStats", "SimulationResult", "MetricsCollector"]


@dataclass
class ClassStats:
    """Per-channel-class measurements.

    ``acquisitions`` counts link grants whose grant time fell inside the
    measurement window; ``links`` is the class population, so the empirical
    per-link rate is ``acquisitions / (links * window)``.  ``busy_time``
    sums holding intervals of the class's links over the whole run.
    """

    links: int = 0
    acquisitions: int = 0
    busy_time: float = 0.0

    def rate_per_link(self, window: float) -> float:
        if self.links == 0 or window <= 0:
            return math.nan
        return self.acquisitions / (self.links * window)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    Latency statistics cover *tagged* messages (generated inside the
    measurement window) that were delivered before the horizon; the
    ``censored_tagged`` count reports tagged messages still undelivered at
    the end — any non-zero value means the latency average is biased low
    and the run should be treated as unstable/saturated.
    """

    workload: Workload
    config: SimConfig
    num_pes: int
    end_time: float
    generated_total: int
    tagged_generated: int
    tagged_delivered: int
    censored_tagged: int
    delivered_in_window: int
    delivered_flits_in_window: int
    latency_mean: float
    latency_std: float
    latency_min: float
    latency_max: float
    latency_p50: float
    latency_p95: float
    short_worm_fraction: float
    class_stats: dict[str, ClassStats] = field(default_factory=dict)

    @property
    def offered_flit_rate(self) -> float:
        """Configured offered load in flits/cycle/PE."""
        return self.workload.flit_load

    @property
    def delivered_flit_rate(self) -> float:
        """Measured throughput: delivered flits/cycle/PE inside the window.

        Uses actual per-message lengths, so it remains correct under the
        variable-length traffic extension.
        """
        return self.delivered_flits_in_window / (
            self.config.measure_cycles * self.num_pes
        )

    @property
    def stable(self) -> bool:
        """Heuristic steady-state check used by the empirical saturation search.

        A run is stable when no tagged message was censored at the horizon
        and the count of messages delivered inside the window keeps up with
        the count generated inside it, allowing for Poisson counting noise
        (3-sigma cushion) so that lightly loaded runs are not misflagged.
        """
        if self.tagged_generated == 0:
            return True
        if self.censored_tagged > 0:
            return False
        expected = self.tagged_generated
        cushion = 3.0 * math.sqrt(max(expected, 1))
        return self.delivered_in_window >= 0.95 * expected - cushion

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"load={self.offered_flit_rate:.5f} fl/cyc/PE: "
            f"latency={self.latency_mean:.2f}±{self.latency_std:.2f} cyc "
            f"(n={self.tagged_delivered}, censored={self.censored_tagged}), "
            f"throughput={self.delivered_flit_rate:.5f}"
        )


class MetricsCollector:
    """Mutable accumulator driven by a simulator, frozen into a result."""

    def __init__(
        self,
        workload: Workload,
        config: SimConfig,
        num_pes: int,
        link_classes: list[LinkClass],
        *,
        keep_samples: bool = True,
    ) -> None:
        self.workload = workload
        self.config = config
        self.num_pes = num_pes
        self.keep_samples = keep_samples
        self.generated_total = 0
        self.tagged_generated = 0
        self.tagged_delivered = 0
        self.delivered_in_window = 0
        self.delivered_flits_in_window = 0
        self.short_worms = 0
        self.delivered_total = 0
        self._stats = OnlineStats()
        self._samples: list[float] = []
        # channel-class bookkeeping
        self._class_names: list[str] = []
        self._class_index: dict[LinkClass, int] = {}
        for cls in link_classes:
            if cls not in self._class_index:
                self._class_index[cls] = len(self._class_names)
                self._class_names.append(str(cls))
        self.link_class_id = np.array(
            [self._class_index[cls] for cls in link_classes], dtype=np.int32
        )
        n_classes = len(self._class_names)
        self._class_links = np.zeros(n_classes, dtype=np.int64)
        for cls in link_classes:
            self._class_links[self._class_index[cls]] += 1
        self._class_acquisitions = np.zeros(n_classes, dtype=np.int64)
        self._class_busy = np.zeros(n_classes, dtype=float)

    # --- hooks called by simulators --------------------------------------------------

    def on_generated(self, gen_time: float) -> bool:
        """Register a generated message; returns True when it is tagged."""
        self.generated_total += 1
        tagged = self.config.measure_start <= gen_time < self.config.measure_end
        if tagged:
            self.tagged_generated += 1
        return tagged

    def on_acquisition(self, link_class_id: int, time: float) -> None:
        """Register a link grant (for empirical per-class rates)."""
        if self.config.measure_start <= time < self.config.measure_end:
            self._class_acquisitions[link_class_id] += 1

    def on_busy(
        self, link_class_id: int, duration: float, acquire_time: float | None = None
    ) -> None:
        """Accumulate a completed holding interval on a link.

        When ``acquire_time`` is given, only intervals whose acquisition
        fell inside the measurement window are accumulated, so that
        ``busy_time / acquisitions`` is the mean per-acquisition holding
        time — directly comparable to the model's channel service time
        ``x_bar``.
        """
        if acquire_time is not None and not (
            self.config.measure_start <= acquire_time < self.config.measure_end
        ):
            return
        self._class_busy[link_class_id] += duration

    def on_delivered(
        self,
        gen_time: float,
        delivery_time: float,
        tagged: bool,
        path_length: int,
        flits: int | None = None,
    ) -> None:
        """Register a completed message (``flits`` defaults to the workload length)."""
        if flits is None:
            flits = self.workload.message_flits
        self.delivered_total += 1
        if path_length > flits:
            self.short_worms += 1
        if self.config.measure_start <= delivery_time < self.config.measure_end:
            self.delivered_in_window += 1
            self.delivered_flits_in_window += flits
        if tagged:
            self.tagged_delivered += 1
            latency = delivery_time - gen_time
            self._stats.add(latency)
            if self.keep_samples:
                self._samples.append(latency)

    # --- finalization ---------------------------------------------------------------

    def finalize(self, end_time: float) -> SimulationResult:
        """Freeze accumulated measurements into a :class:`SimulationResult`."""
        if self._samples:
            arr = np.asarray(self._samples)
            p50 = float(np.percentile(arr, 50))
            p95 = float(np.percentile(arr, 95))
        else:
            p50 = p95 = math.nan
        class_stats = {
            name: ClassStats(
                links=int(self._class_links[i]),
                acquisitions=int(self._class_acquisitions[i]),
                busy_time=float(self._class_busy[i]),
            )
            for i, name in enumerate(self._class_names)
        }
        return SimulationResult(
            workload=self.workload,
            config=self.config,
            num_pes=self.num_pes,
            end_time=end_time,
            generated_total=self.generated_total,
            tagged_generated=self.tagged_generated,
            tagged_delivered=self.tagged_delivered,
            censored_tagged=self.tagged_generated - self.tagged_delivered,
            delivered_in_window=self.delivered_in_window,
            delivered_flits_in_window=self.delivered_flits_in_window,
            latency_mean=self._stats.mean,
            latency_std=self._stats.std,
            latency_min=self._stats.min if self._stats.count else math.nan,
            latency_max=self._stats.max if self._stats.count else math.nan,
            latency_p50=p50,
            latency_p95=p95,
            short_worm_fraction=(
                self.short_worms / self.delivered_total if self.delivered_total else 0.0
            ),
            class_stats=class_stats,
        )
