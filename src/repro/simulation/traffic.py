"""Traffic generation for the simulators.

The paper's workload is Poisson arrivals with uniformly random destinations
(assumption 1).  :class:`PoissonTraffic` reproduces it exactly — each PE
generates messages with exponential inter-arrival times at rate
``lambda_0`` — and additionally offers the destination patterns commonly
used in interconnect studies (random permutation, hotspot, quad-local) as
extensions for the example applications.

A traffic source is consumed through :meth:`arrivals`, a time-ordered
iterator of ``(time, src, dst)`` triples; :class:`TraceTraffic` replays an
explicit list, which is how the two simulators are driven with identical
inputs for cross-validation.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError
from ..util.rng import spawn_rngs

__all__ = ["Pattern", "PoissonTraffic", "TraceTraffic", "Arrival", "bimodal_lengths"]


class Pattern(enum.Enum):
    """Destination-selection patterns."""

    #: Uniformly random destination, excluding the source (the paper's).
    UNIFORM = "uniform"
    #: A fixed random derangement: PE ``i`` always sends to ``pi(i)``.
    PERMUTATION = "permutation"
    #: With probability ``hotspot_fraction`` send to ``hotspot_target``.
    HOTSPOT = "hotspot"
    #: Uniform within the source's 4-leaf quad (shares a level-1 switch).
    QUAD_LOCAL = "quad-local"


@dataclass(frozen=True)
class Arrival:
    """One generated message: creation time, source PE, destination PE.

    ``flits`` optionally overrides the workload's fixed message length for
    this message (variable-length extension; the paper's assumption 2 fixes
    it).  ``None`` means "use the workload length".
    """

    time: float
    src: int
    dst: int
    flits: int | None = None


class PoissonTraffic:
    """Independent Poisson sources with a pluggable destination pattern.

    Parameters
    ----------
    num_pes:
        Number of processing elements.
    workload:
        Injection rate and message length (length is carried by the
        simulator; the source only needs the rate).
    seed:
        Root seed; arrival times, destinations, and the permutation (when
        used) draw from independent spawned streams.
    pattern:
        Destination pattern; defaults to the paper's uniform traffic.
    hotspot_fraction / hotspot_target:
        Parameters of :attr:`Pattern.HOTSPOT`.
    length_sampler:
        Optional callable ``rng -> int`` drawing a per-message length in
        flits (relaxes the paper's fixed-length assumption 2; supported by
        the event-driven simulator).  See :func:`bimodal_lengths`.
    """

    def __init__(
        self,
        num_pes: int,
        workload: Workload,
        seed: int = 0,
        *,
        pattern: Pattern = Pattern.UNIFORM,
        hotspot_fraction: float = 0.1,
        hotspot_target: int = 0,
        length_sampler=None,
    ) -> None:
        if num_pes < 2:
            raise ConfigurationError("traffic requires at least 2 PEs")
        if pattern is Pattern.HOTSPOT and not (0.0 <= hotspot_fraction <= 1.0):
            raise ConfigurationError("hotspot_fraction must be in [0, 1]")
        if pattern is Pattern.HOTSPOT and not (0 <= hotspot_target < num_pes):
            raise ConfigurationError("hotspot_target out of range")
        if pattern is Pattern.QUAD_LOCAL and num_pes % 4 != 0:
            raise ConfigurationError("QUAD_LOCAL requires num_pes divisible by 4")
        self.num_pes = num_pes
        self.workload = workload
        self.pattern = pattern
        self.hotspot_fraction = hotspot_fraction
        self.hotspot_target = hotspot_target
        self.length_sampler = length_sampler
        self._arrival_rng, self._dst_rng, perm_rng, self._len_rng = spawn_rngs(seed, 4)
        self._permutation = (
            self._derangement(perm_rng, num_pes)
            if pattern is Pattern.PERMUTATION
            else None
        )

    @staticmethod
    def _derangement(rng: np.random.Generator, n: int) -> np.ndarray:
        """A uniformly-ish random permutation with no fixed points."""
        while True:
            perm = rng.permutation(n)
            if not np.any(perm == np.arange(n)):
                return perm

    # --- destination sampling ---------------------------------------------------

    def sample_destination(self, src: int) -> int:
        """Draw the destination for a message sourced at ``src``."""
        rng = self._dst_rng
        if self.pattern is Pattern.PERMUTATION:
            return int(self._permutation[src])
        if self.pattern is Pattern.HOTSPOT:
            if rng.random() < self.hotspot_fraction and self.hotspot_target != src:
                return self.hotspot_target
            return self._uniform_excluding(src, 0, self.num_pes)
        if self.pattern is Pattern.QUAD_LOCAL:
            quad = src - src % 4
            return self._uniform_excluding(src, quad, quad + 4)
        return self._uniform_excluding(src, 0, self.num_pes)

    def _uniform_excluding(self, src: int, lo: int, hi: int) -> int:
        d = int(self._dst_rng.integers(lo, hi - 1))
        return d + 1 if d >= src else d

    # --- the arrival stream --------------------------------------------------------

    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        """Yield time-ordered arrivals with ``time < horizon``.

        Per-PE exponential inter-arrival streams are merged through a heap,
        so the global stream is a superposition of independent Poisson
        processes — exactly the paper's arrival model.  A zero injection
        rate yields an empty stream.
        """
        lam = self.workload.injection_rate
        if lam <= 0.0:
            return
        rng = self._arrival_rng
        scale = 1.0 / lam
        heap: list[tuple[float, int]] = []
        first = rng.exponential(scale, size=self.num_pes)
        for pe in range(self.num_pes):
            t = float(first[pe])
            if t < horizon:
                heap.append((t, pe))
        heapq.heapify(heap)
        sampler = self.length_sampler
        while heap:
            t, pe = heapq.heappop(heap)
            flits = int(sampler(self._len_rng)) if sampler is not None else None
            yield Arrival(t, pe, self.sample_destination(pe), flits)
            nxt = t + float(rng.exponential(scale))
            if nxt < horizon:
                heapq.heappush(heap, (nxt, pe))


def bimodal_lengths(short: int, long: int, short_fraction: float):
    """A two-point message-length sampler (e.g. 8-flit requests, 56-flit data).

    Returns a callable suitable for ``PoissonTraffic(length_sampler=...)``.
    """
    if short <= 0 or long <= 0:
        raise ConfigurationError("lengths must be positive")
    if not (0.0 <= short_fraction <= 1.0):
        raise ConfigurationError("short_fraction must be in [0, 1]")

    def sample(rng) -> int:
        return short if rng.random() < short_fraction else long

    return sample


class TraceTraffic:
    """Replay an explicit arrival list (for tests and cross-validation).

    Arrivals must be time-ordered; ``horizon`` simply truncates the replay.
    """

    def __init__(self, trace: Sequence[Arrival] | Iterable[tuple[float, int, int]]):
        items = [a if isinstance(a, Arrival) else Arrival(*a) for a in trace]
        for prev, cur in zip(items, items[1:]):
            if cur.time < prev.time:
                raise ConfigurationError("trace arrivals must be time-ordered")
        for a in items:
            if a.src == a.dst:
                raise ConfigurationError("trace contains a self-addressed message")
        self._items = items

    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        for a in self._items:
            if a.time >= horizon:
                break
            yield a

    def floored(self) -> "TraceTraffic":
        """A copy with integer (floor) arrival times, for the cycle-level sim."""
        floored = [Arrival(float(int(a.time)), a.src, a.dst) for a in self._items]
        floored.sort(key=lambda a: a.time)
        return TraceTraffic(floored)
