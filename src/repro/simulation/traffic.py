"""Traffic generation for the simulators.

The paper's workload is Poisson arrivals with uniformly random destinations
(assumption 1).  :class:`PoissonTraffic` reproduces it exactly — each PE
generates messages with exponential inter-arrival times at rate
``lambda_0`` — and generalizes it along two orthogonal axes:

* **destinations** come from a :class:`~repro.traffic.spec.TrafficSpec`
  (uniform, permutation, hotspot, quad-local, transpose, bit-reversal,
  bit-complement, tornado, or any custom spec).  The same spec drives the
  analytical side (:mod:`repro.traffic.analytic`), so model and simulator
  always describe the *same* workload;
* **arrival timing** can be modulated by
  :class:`~repro.traffic.spec.BurstyArrivals`, a two-state ON-OFF Poisson
  process with the configured long-run rate but bursty short-term
  behaviour.

The legacy ``pattern=Pattern.X`` keyword survives as a thin alias that
builds the matching spec.  A traffic source is consumed through
:meth:`arrivals`, a time-ordered iterator of ``(time, src, dst)`` triples;
:class:`TraceTraffic` replays an explicit list, which is how the two
simulators are driven with identical inputs for cross-validation.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..config import Workload
from ..errors import ConfigurationError
from ..traffic.spec import BurstyArrivals, PermutationSpec, TrafficSpec, make_spec
from ..util.rng import spawn_rngs

__all__ = ["Pattern", "PoissonTraffic", "TraceTraffic", "Arrival", "bimodal_lengths"]


class Pattern(enum.Enum):
    """Destination-selection patterns (aliases for the spec registry).

    Values match the registry names of :mod:`repro.traffic.spec`; use
    ``spec=`` for parametrized or custom patterns.
    """

    #: Uniformly random destination, excluding the source (the paper's).
    UNIFORM = "uniform"
    #: A fixed random derangement: PE ``i`` always sends to ``pi(i)``.
    PERMUTATION = "permutation"
    #: With probability ``hotspot_fraction`` send to ``hotspot_target``.
    HOTSPOT = "hotspot"
    #: Uniform within the source's 4-leaf quad (shares a level-1 switch).
    QUAD_LOCAL = "quad-local"
    #: Swap the two halves of the address bits (matrix transpose).
    TRANSPOSE = "transpose"
    #: Reverse the address bits (FFT exchange).
    BIT_REVERSAL = "bit-reversal"
    #: Complement every address bit.
    BIT_COMPLEMENT = "bit-complement"
    #: Offset by half the machine.
    TORNADO = "tornado"


@dataclass(frozen=True)
class Arrival:
    """One generated message: creation time, source PE, destination PE.

    ``flits`` optionally overrides the workload's fixed message length for
    this message (variable-length extension; the paper's assumption 2 fixes
    it).  ``None`` means "use the workload length".
    """

    time: float
    src: int
    dst: int
    flits: int | None = None


class PoissonTraffic:
    """Independent Poisson sources with a pluggable destination pattern.

    Parameters
    ----------
    num_pes:
        Number of processing elements.
    workload:
        Injection rate and message length (length is carried by the
        simulator; the source only needs the rate).
    seed:
        Root seed; arrival times, destinations, and the permutation (when
        used) draw from independent spawned streams.
    spec:
        Destination distribution (a :class:`TrafficSpec`); defaults to the
        paper's uniform traffic.  Sources the spec marks silent (fixed
        points of deterministic permutations) inject nothing.
    pattern:
        Legacy alias: a :class:`Pattern` member or registry name that is
        resolved to a built-in spec.  Mutually exclusive with ``spec``.
    hotspot_fraction / hotspot_target:
        Parameters of the hotspot pattern alias.
    length_sampler:
        Optional callable ``rng -> int`` drawing a per-message length in
        flits (relaxes the paper's fixed-length assumption 2; supported by
        the event-driven simulator).  See :func:`bimodal_lengths`.
    bursty:
        Optional :class:`BurstyArrivals` modifier: each source alternates
        exponentially distributed ON/OFF periods and injects at
        ``rate / duty`` while ON, preserving the long-run rate.
    """

    def __init__(
        self,
        num_pes: int,
        workload: Workload,
        seed: int = 0,
        *,
        spec: TrafficSpec | None = None,
        pattern: Pattern | str | None = None,
        hotspot_fraction: float = 0.1,
        hotspot_target: int = 0,
        length_sampler=None,
        bursty: BurstyArrivals | None = None,
    ) -> None:
        if num_pes < 2:
            raise ConfigurationError("traffic requires at least 2 PEs")
        if spec is not None and pattern is not None:
            raise ConfigurationError("pass either spec or pattern, not both")
        if bursty is not None and not isinstance(bursty, BurstyArrivals):
            raise ConfigurationError(
                f"bursty must be a BurstyArrivals, got {bursty!r}"
            )
        self.num_pes = num_pes
        self.workload = workload
        self.length_sampler = length_sampler
        self.bursty = bursty
        self._arrival_rng, self._dst_rng, perm_rng, self._len_rng = spawn_rngs(seed, 4)
        if spec is None:
            name = pattern.value if isinstance(pattern, Pattern) else pattern
            if name is None:
                name = Pattern.UNIFORM.value
            if name == Pattern.PERMUTATION.value:
                # Derive the derangement seed from this source's own spawned
                # stream so different traffic seeds get different mappings.
                spec = PermutationSpec(seed=int(perm_rng.integers(2**63)))
            else:
                spec = make_spec(
                    name,
                    hotspot_fraction=hotspot_fraction,
                    hotspot_target=hotspot_target,
                )
        spec.validate(num_pes)
        self.spec = spec
        self.pattern = (
            pattern
            if isinstance(pattern, Pattern)
            else next((p for p in Pattern if p.value == spec.name), None)
        )
        self._activity = np.asarray(spec.source_activity(num_pes), dtype=float)
        #: Back-compat: the concrete permutation when the spec is one.
        self._permutation = (
            spec.permutation_for(num_pes)
            if isinstance(spec, PermutationSpec)
            else None
        )

    # --- destination sampling ---------------------------------------------------

    def sample_destination(self, src: int) -> int:
        """Draw the destination for a message sourced at ``src``."""
        return self.spec.sample_destination(src, self.num_pes, self._dst_rng)

    # --- the arrival stream --------------------------------------------------------

    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        """Yield time-ordered arrivals with ``time < horizon``.

        Per-PE inter-arrival streams are merged through a heap.  Without a
        ``bursty`` modifier each PE is an independent Poisson process of
        rate ``lambda_0`` — exactly the paper's arrival model; with one,
        each PE is a two-state modulated Poisson process with the same
        long-run rate.  Sources the spec marks silent generate nothing, as
        does a zero injection rate.
        """
        lam = self.workload.injection_rate
        if lam <= 0.0:
            return
        rng = self._arrival_rng
        bursty = self.bursty
        activity = self._activity
        scale = 1.0 / lam
        window_end: np.ndarray | None = None
        if bursty is not None:
            scale = scale * bursty.duty  # per-PE rate while ON is lam / duty
            # Every PE starts a fresh ON window at time 0.
            window_end = rng.exponential(bursty.burst_cycles, size=self.num_pes)

        def next_time(pe: int, t: float) -> float:
            # Fractional activity scales the per-PE rate (matching the
            # analytical flow accounting); scaling an Exp(scale) draw by
            # 1/activity is an exact Exp(scale/activity) draw, and keeps
            # the stream bit-identical to older versions when activity is 1.
            if bursty is None:
                return t + float(rng.exponential(scale)) / activity[pe]
            while True:
                t = t + float(rng.exponential(scale)) / activity[pe]
                if t < window_end[pe]:
                    return t
                # Jump to the next ON window; the exponential's memorylessness
                # makes restarting the draw at the window start exact.
                t = window_end[pe] + float(rng.exponential(bursty.off_cycles))
                window_end[pe] = t + float(rng.exponential(bursty.burst_cycles))

        heap: list[tuple[float, int]] = []
        if bursty is None:
            first = rng.exponential(scale, size=self.num_pes)
            starts = [
                float(first[pe]) / activity[pe] if activity[pe] > 0.0 else horizon
                for pe in range(self.num_pes)
            ]
        else:
            starts = [
                next_time(pe, 0.0) if activity[pe] > 0.0 else horizon
                for pe in range(self.num_pes)
            ]
        for pe, t in enumerate(starts):
            if t < horizon:
                heap.append((t, pe))
        heapq.heapify(heap)
        sampler = self.length_sampler
        while heap:
            t, pe = heapq.heappop(heap)
            flits = int(sampler(self._len_rng)) if sampler is not None else None
            yield Arrival(t, pe, self.sample_destination(pe), flits)
            nxt = next_time(pe, t)
            if nxt < horizon:
                heapq.heappush(heap, (nxt, pe))


def bimodal_lengths(short: int, long: int, short_fraction: float):
    """A two-point message-length sampler (e.g. 8-flit requests, 56-flit data).

    Returns a callable suitable for ``PoissonTraffic(length_sampler=...)``.
    """
    if short <= 0 or long <= 0:
        raise ConfigurationError("lengths must be positive")
    if not (0.0 <= short_fraction <= 1.0):
        raise ConfigurationError("short_fraction must be in [0, 1]")

    def sample(rng) -> int:
        return short if rng.random() < short_fraction else long

    return sample


class TraceTraffic:
    """Replay an explicit arrival list (for tests and cross-validation).

    Arrivals must be time-ordered; ``horizon`` simply truncates the replay.
    """

    def __init__(self, trace: Sequence[Arrival] | Iterable[tuple[float, int, int]]):
        items = [a if isinstance(a, Arrival) else Arrival(*a) for a in trace]
        for prev, cur in zip(items, items[1:]):
            if cur.time < prev.time:
                raise ConfigurationError("trace arrivals must be time-ordered")
        for a in items:
            if a.src == a.dst:
                raise ConfigurationError("trace contains a self-addressed message")
        self._items = items

    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        for a in self._items:
            if a.time >= horizon:
                break
            yield a

    def floored(self) -> "TraceTraffic":
        """A copy with integer (floor) arrival times, for the cycle-level sim.

        Per-message ``flits`` overrides are preserved, so variable-length
        traces stay variable-length across the cycle-level cross-check.
        """
        floored = [
            Arrival(float(int(a.time)), a.src, a.dst, a.flits) for a in self._items
        ]
        floored.sort(key=lambda a: a.time)
        return TraceTraffic(floored)
