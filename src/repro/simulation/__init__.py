"""Wormhole-routing simulators (S5/S6 in DESIGN.md).

* :mod:`repro.simulation.wormhole_sim` — event-driven worm-level simulator
  (primary validation engine; exact under the long-worm assumption);
* :mod:`repro.simulation.flit_sim` — independent cycle-driven flit-level
  simulator used for cross-validation;
* :mod:`repro.simulation.traffic` — Poisson sources and destination
  patterns (uniform per the paper, plus permutation/hotspot/local
  extensions) and trace replay;
* :mod:`repro.simulation.metrics` — measurement protocol and result types;
* :mod:`repro.simulation.saturation` — empirical saturation search;
* :mod:`repro.simulation.runner` — replication aggregation and simulated
  latency curves.
"""

from .buffered_sim import (
    BufferedWormholeSimulator,
    dateline_policy,
    simulate_buffered,
)
from .flit_sim import FlitLevelWormholeSimulator, simulate_flit_level
from .metrics import ClassStats, MetricsCollector, SimulationResult
from .runner import ReplicatedResult, run_replications, simulated_latency_curve
from .saturation import empirical_saturation
from .traffic import Arrival, Pattern, PoissonTraffic, TraceTraffic, bimodal_lengths
from .wormhole_sim import EventDrivenWormholeSimulator, simulate

__all__ = [
    "BufferedWormholeSimulator",
    "dateline_policy",
    "simulate_buffered",
    "FlitLevelWormholeSimulator",
    "simulate_flit_level",
    "ClassStats",
    "MetricsCollector",
    "SimulationResult",
    "ReplicatedResult",
    "run_replications",
    "simulated_latency_curve",
    "empirical_saturation",
    "Arrival",
    "Pattern",
    "PoissonTraffic",
    "TraceTraffic",
    "bimodal_lengths",
    "EventDrivenWormholeSimulator",
    "simulate",
]
