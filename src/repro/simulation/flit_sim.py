"""Cycle-driven flit-level wormhole simulator (S6 in DESIGN.md).

An independent implementation of the same wormhole semantics as
:mod:`repro.simulation.wormhole_sim`, used to cross-validate it.  Instead of
computing channel-release times algebraically from the final acquisition,
this simulator advances every worm flit-by-flit, cycle-by-cycle:

* a worm is a rigid train of ``F`` flits: whenever its head advances one
  channel, every flit behind advances one slot, and when the head blocks
  every flit freezes in place (the paper's blocked-in-place abstraction);
* the *advance count* of a worm equals the number of cycles its head has
  moved; flit ``F-1`` (the tail) leaves channel ``k`` exactly when the
  advance count reaches ``k + F``, at which point the channel is freed for
  the next cycle's arbitration;
* output arbitration is FCFS on head-arrival cycle with random tie-breaks,
  per group (the fat-tree's up-link pairs form two-server groups).

For worms at least as long as their paths the event-driven simulator and
this one produce *identical* per-message timing given identical integer
arrival traces (verified in the test suite); unlike the event-driven
simulator, the rigid-train bookkeeping here stays exact even for worms
shorter than their paths.  The price is O(active worms) work per cycle,
so it is intended for small/medium networks and validation runs.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from ..config import SimConfig, Workload
from ..errors import ConfigurationError
from ..topology.base import SimTopology
from ..util.rng import spawn_rngs
from .metrics import MetricsCollector, SimulationResult
from .traffic import Arrival, PoissonTraffic

__all__ = ["FlitLevelWormholeSimulator", "simulate_flit_level"]


class _Worm:
    __slots__ = (
        "src",
        "dst",
        "gen_time",
        "node",
        "path",
        "acquires",
        "advances",
        "final_acquired",
        "tagged",
    )

    def __init__(self, src: int, dst: int, gen_time: float, tagged: bool) -> None:
        self.src = src
        self.dst = dst
        self.gen_time = gen_time
        self.node = src
        self.path: list[int] = []
        self.acquires: list[int] = []
        self.advances = 0
        self.final_acquired = False
        self.tagged = tagged


class FlitLevelWormholeSimulator:
    """Cycle-accurate rigid-worm simulator over integer cycles.

    Arrival times from the traffic source are floored to whole cycles;
    everything else (constructor signature, measurement protocol, result
    type) matches the event-driven simulator.
    """

    def __init__(
        self,
        topology: SimTopology,
        workload: Workload,
        config: SimConfig,
        *,
        traffic=None,
        keep_samples: bool = True,
    ) -> None:
        self.topology = topology
        self.workload = workload
        self.config = config
        self.traffic = traffic or PoissonTraffic(
            topology.num_processors, workload, seed=config.seed
        )
        (self._choice_rng,) = spawn_rngs(config.seed ^ 0x5EED_CAFE, 1)
        self.metrics = MetricsCollector(
            workload,
            config,
            topology.num_processors,
            list(topology.link_class),
            keep_samples=keep_samples,
        )

    def run(self) -> SimulationResult:
        """Execute the cycle loop until the drain completes or the horizon hits.

        Returns the frozen :class:`SimulationResult`; the simulator is
        single-use (construct a new instance per run).
        """
        topo = self.topology
        cfg = self.config
        metrics = self.metrics
        flits = self.workload.message_flits
        cutoff = int(cfg.cutoff_cycles)
        measure_end = cfg.measure_end
        link_dst = topo.link_dst
        link_group = topo.link_group
        class_id = metrics.link_class_id
        rng = self._choice_rng

        free = np.ones(topo.num_links, dtype=bool)
        group_members = [tuple(g) for g in topo.groups]
        queues: list[list[tuple[int, float, int, _Worm]]] = [
            [] for _ in range(len(group_members))
        ]
        active_groups: set[int] = set()

        arrival_iter: Iterator[Arrival] = self.traffic.arrivals(float(cutoff))
        next_arrival = next(arrival_iter, None)

        pending: list[_Worm] = []  # worms issuing their next request this cycle
        draining: list[_Worm] = []  # final channel acquired, tail still moving
        tagged_outstanding = 0
        seq = 0
        t = 0

        def enqueue_request(worm: _Worm, cycle: int) -> None:
            nonlocal seq
            if worm.path:
                options = topo.route_options(worm.node, worm.dst)
            else:
                options = topo.injection_options(worm.src)
            g = link_group[options.links[0]]
            heapq.heappush(queues[g], (cycle, float(rng.random()), seq, worm))
            active_groups.add(g)
            seq += 1

        def advance(worm: _Worm, cycle: int) -> bool:
            """Move the rigid train one slot; returns True when delivered."""
            worm.advances += 1
            k = worm.advances - flits
            if 0 <= k < len(worm.path):
                link = worm.path[k]
                free[link] = True
                metrics.on_busy(
                    int(class_id[link]),
                    cycle + 1 - worm.acquires[k],
                    float(worm.acquires[k]),
                )
                g = link_group[link]
                if queues[g]:
                    active_groups.add(g)
            if worm.final_acquired and worm.advances == len(worm.path) - 1 + flits:
                metrics.on_delivered(
                    worm.gen_time, float(cycle + 1), worm.tagged, len(worm.path)
                )
                return True
            return False

        while t < cutoff:
            # -- phase 1: arrivals landing this cycle ------------------------------
            while next_arrival is not None and int(next_arrival.time) == t:
                a = next_arrival
                if a.flits is not None and a.flits != flits:
                    raise ConfigurationError(
                        "the flit-level engine supports fixed-length worms only; "
                        "use the event-driven simulator for variable lengths"
                    )
                tagged = metrics.on_generated(float(t))
                worm = _Worm(a.src, a.dst, float(t), tagged)
                if tagged:
                    tagged_outstanding += 1
                enqueue_request(worm, t)
                next_arrival = next(arrival_iter, None)

            # -- phase 2: requests from worms that crossed a link last cycle -------
            for worm in pending:
                enqueue_request(worm, t)
            pending.clear()

            # -- phase 3: FCFS arbitration per group -------------------------------
            advancing: list[_Worm] = []
            if active_groups:
                for g in sorted(active_groups):
                    q = queues[g]
                    while q:
                        members = [e for e in group_members[g] if free[e]]
                        if not members:
                            break
                        _, _, _, worm = heapq.heappop(q)
                        link = (
                            members[0]
                            if len(members) == 1
                            else members[int(rng.integers(len(members)))]
                        )
                        free[link] = False
                        worm.path.append(link)
                        worm.acquires.append(t)
                        metrics.on_acquisition(int(class_id[link]), float(t))
                        nxt = link_dst[link]
                        if nxt == worm.dst:
                            worm.final_acquired = True
                        else:
                            worm.node = nxt
                        advancing.append(worm)
                    if not q:
                        active_groups.discard(g)

            # -- phase 4: movement --------------------------------------------------
            still_draining: list[_Worm] = []
            for worm in draining:
                if not advance(worm, t):
                    still_draining.append(worm)
                elif worm.tagged:
                    tagged_outstanding -= 1
            for worm in advancing:
                if advance(worm, t):
                    if worm.tagged:
                        tagged_outstanding -= 1
                elif worm.final_acquired:
                    still_draining.append(worm)
                else:
                    pending.append(worm)
            draining = still_draining

            t += 1
            if tagged_outstanding == 0 and t >= measure_end:
                break

        return metrics.finalize(float(t))


def simulate_flit_level(
    topology: SimTopology,
    workload: Workload,
    config: SimConfig,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around the flit-level simulator."""
    return FlitLevelWormholeSimulator(topology, workload, config, **kwargs).run()
