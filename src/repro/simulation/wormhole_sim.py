"""Event-driven worm-level wormhole simulator (S5 in DESIGN.md).

Simulates the paper's wormhole semantics exactly, at message (worm)
granularity rather than flit granularity, which keeps the event count at
``O(path length)`` per message:

* a worm acquires the channels on its path one at a time; the head needs
  one cycle per channel, so channel ``k+1`` is requested one cycle after
  channel ``k`` was granted;
* contention for a channel (or for the fat-tree's two-up-link *group*) is
  resolved First-Come First-Served by head-arrival time, with random
  tie-breaking (assumption 3);
* when the head blocks, every flit of the worm blocks in place;
* destinations consume one flit per cycle without blocking (assumption 4).

Under these semantics — with worms longer than their paths, the paper's
long-worm assumption — all stalls happen before the tail leaves the source,
so once the *last* channel is acquired at time ``a_last`` the whole
pipeline drains deterministically:

* channel ``k`` of a ``D``-channel path is released at
  ``a_last - (D-1) + k + F``  (the tail flit has then crossed it), and
* the message is fully received at ``a_last + F``.

This timing algebra is exact for ``F >= D`` (verified against the
independent cycle-level simulator in the test suite); for shorter worms it
errs on the pessimistic side, and the fraction of affected messages is
reported as :attr:`SimulationResult.short_worm_fraction`.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..config import SimConfig, Workload
from ..errors import SimulationError
from ..topology.base import SimTopology
from ..util.rng import spawn_rngs
from .metrics import MetricsCollector, SimulationResult
from .traffic import PoissonTraffic

__all__ = ["EventDrivenWormholeSimulator", "simulate"]

_EVT_ARRIVAL = 0
_EVT_REQUEST = 1
_EVT_RELEASE = 2


class _Worm:
    """Mutable per-message record."""

    __slots__ = ("src", "dst", "gen_time", "node", "path", "acquires", "tagged", "flits")

    def __init__(
        self, src: int, dst: int, gen_time: float, tagged: bool, flits: int
    ) -> None:
        self.src = src
        self.dst = dst
        self.gen_time = gen_time
        self.node = src
        self.path: list[int] = []
        self.acquires: list[float] = []
        self.tagged = tagged
        self.flits = flits


class EventDrivenWormholeSimulator:
    """Drive a :class:`~repro.topology.base.SimTopology` under offered traffic.

    Parameters
    ----------
    topology:
        Any topology object implementing the SimTopology protocol.
    workload:
        Message length and injection rate (the rate is ignored when an
        explicit ``traffic`` source is supplied).
    config:
        Measurement protocol (warmup/window/horizon) and root seed.
    traffic:
        Optional replacement traffic source (e.g. a trace, or a hotspot
        pattern); defaults to the paper's Poisson/uniform workload.
    keep_samples:
        Retain raw latency samples for percentile statistics.
    """

    def __init__(
        self,
        topology: SimTopology,
        workload: Workload,
        config: SimConfig,
        *,
        traffic=None,
        keep_samples: bool = True,
    ) -> None:
        self.topology = topology
        self.workload = workload
        self.config = config
        self.traffic = traffic or PoissonTraffic(
            topology.num_processors, workload, seed=config.seed
        )
        (self._choice_rng,) = spawn_rngs(config.seed ^ 0x5EED_CAFE, 1)
        self.metrics = MetricsCollector(
            workload,
            config,
            topology.num_processors,
            list(topology.link_class),
            keep_samples=keep_samples,
        )

    # --- main loop ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the event loop until the drain completes or the horizon hits.

        Returns the frozen :class:`SimulationResult`; the simulator is
        single-use (construct a new instance per run).
        """
        topo = self.topology
        cfg = self.config
        metrics = self.metrics
        flits = self.workload.message_flits
        cutoff = cfg.cutoff_cycles
        measure_end = cfg.measure_end
        link_dst = topo.link_dst
        class_id = metrics.link_class_id
        choice = self._choice_rng

        free = np.ones(topo.num_links, dtype=bool)
        queues: list[list[tuple[float, float, int, _Worm, tuple[int, ...]]]] = [
            [] for _ in range(len(topo.groups))
        ]
        link_group = topo.link_group

        heap: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(time: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, kind, payload))
            seq += 1

        arrival_iter = self.traffic.arrivals(cutoff)
        nxt = next(arrival_iter, None)
        if nxt is not None:
            push(nxt.time, _EVT_ARRIVAL, nxt)

        tagged_outstanding = 0
        now = 0.0

        def grant(worm: _Worm, link: int, time: float) -> None:
            nonlocal tagged_outstanding
            free[link] = False
            worm.path.append(link)
            worm.acquires.append(time)
            metrics.on_acquisition(int(class_id[link]), time)
            nxt_node = link_dst[link]
            if nxt_node == worm.dst:
                self._complete(worm, time, push)
                if worm.tagged:
                    tagged_outstanding -= 1
            else:
                worm.node = nxt_node
                push(time + 1.0, _EVT_REQUEST, worm)

        def request(worm: _Worm, options, time: float) -> None:
            links = options.links
            if len(links) == 1:
                link = links[0]
                if free[link]:
                    grant(worm, link, time)
                    return
            else:
                free_links = [e for e in links if free[e]]
                if free_links:
                    link = (
                        free_links[0]
                        if len(free_links) == 1
                        else free_links[int(choice.integers(len(free_links)))]
                    )
                    grant(worm, link, time)
                    return
            g = link_group[links[0]]
            heapq.heappush(queues[g], (time, float(choice.random()), id(worm), worm, links))

        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if now >= cutoff:
                break
            if kind == _EVT_ARRIVAL:
                a = payload
                tagged = metrics.on_generated(a.time)
                worm = _Worm(
                    a.src, a.dst, a.time, tagged, a.flits if a.flits else flits
                )
                if tagged:
                    tagged_outstanding += 1
                request(worm, topo.injection_options(a.src), a.time)
                nxt = next(arrival_iter, None)
                if nxt is not None:
                    push(nxt.time, _EVT_ARRIVAL, nxt)
            elif kind == _EVT_REQUEST:
                worm = payload
                request(worm, topo.route_options(worm.node, worm.dst), now)
            else:  # _EVT_RELEASE
                link = payload
                if free[link]:
                    raise SimulationError(f"double release of link {link}")
                q = queues[link_group[link]]
                if q:
                    _, _, _, worm, _links = heapq.heappop(q)
                    # FCFS hand-off: the freed link goes to the earliest
                    # waiter at the release instant (the link never idles).
                    grant(worm, link, now)
                else:
                    free[link] = True
            if tagged_outstanding == 0 and now >= measure_end:
                break

        return metrics.finalize(min(now, cutoff))

    # --- completion ---------------------------------------------------------------

    def _complete(self, worm: _Worm, a_last: float, push) -> None:
        """Schedule the deterministic drain once the final channel is acquired."""
        flits = worm.flits
        metrics = self.metrics
        class_id = metrics.link_class_id
        depth = len(worm.path)
        start = a_last - (depth - 1)
        for i, link in enumerate(worm.path):
            release = start + i + flits
            push(release, _EVT_RELEASE, link)
            metrics.on_busy(
                int(class_id[link]), release - worm.acquires[i], worm.acquires[i]
            )
        metrics.on_delivered(
            worm.gen_time, a_last + flits, worm.tagged, depth, flits
        )


def simulate(
    topology: SimTopology,
    workload: Workload,
    config: SimConfig,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around the event-driven simulator."""
    return EventDrivenWormholeSimulator(topology, workload, config, **kwargs).run()
