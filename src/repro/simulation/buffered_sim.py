"""Cycle-driven input-buffered router simulator with virtual channels.

The paper's model (and our other two simulators) use the classic
*blocked-in-place* wormhole abstraction: a stalled worm freezes where it
is, and channels have no buffering beyond the flit in flight.  Real
routers give every input a small FIFO and often multiplex each physical
link between several *virtual channels* (VCs).  This simulator implements
that microarchitecture:

* every physical link has ``virtual_channels`` VCs; the receiving end of
  each (link, VC) pair owns a FIFO buffer of ``buffer_flits`` flits
  (ejection links deliver straight into the consuming PE — assumption 4);
* a worm's head, once at the front of its input buffer, requests an output
  VC on the next link (FCFS per link group, the fat-tree's adaptive pair
  included); the binding persists until the tail flit crosses the link;
* each physical link forwards at most one flit per cycle, round-robin
  among its VCs with a flit ready and downstream credit available;
* credits are conservative: a buffer slot freed in cycle ``t`` is usable
  from cycle ``t+1``.

Two VC allocation policies are provided:

* ``"any"`` — lowest free VC (fat-trees and hypercubes, whose channel
  dependencies are acyclic, need nothing more);
* ``"dateline"`` — Dally & Seitz's deadlock-avoidance scheme for rings:
  worms use VC 0 within a dimension until they cross the wrap-around link,
  VC 1 afterwards, which breaks the torus's cyclic channel dependency.
  With ``virtual_channels >= 2`` the unidirectional k-ary n-cube becomes
  deadlock-free, enabling torus validation at loads where the VC-less
  simulators (physically correctly) deadlock.

Buffer-depth physics worth knowing (and exercised by the BUF experiment):
with a one-cycle credit turnaround, ``buffer_flits=1`` limits each hop to
one flit every *two* cycles — the classic small-buffer throughput collapse
of credit-based flow control — so the paper's blocked-in-place abstraction
corresponds to ``buffer_flits=2`` (the default), which sustains one flit
per cycle.  Deeper buffers add slack that slightly softens contention at
high load; the BUF experiment quantifies both effects against the paper's
Figure 3 curves.

Performance note: work per cycle is proportional to the number of *active*
links and groups, so the simulator is practical for the validation sizes
(N <= 256) used by the experiments; the event-driven engine remains the
tool of choice for 1024-PE sweeps.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

import numpy as np

from ..config import SimConfig, Workload
from ..errors import ConfigurationError, SimulationError
from ..topology.base import SimTopology
from ..topology.kary_ncube import KaryNCube
from ..util.rng import spawn_rngs
from .metrics import MetricsCollector, SimulationResult
from .traffic import PoissonTraffic

__all__ = ["BufferedWormholeSimulator", "simulate_buffered", "dateline_policy"]


class _Worm:
    __slots__ = (
        "src",
        "dst",
        "gen_time",
        "node",
        "bindings",
        "sent",
        "tagged",
        "crossed_dateline",
        "current_dim",
    )

    def __init__(self, src: int, dst: int, gen_time: float, tagged: bool) -> None:
        self.src = src
        self.dst = dst
        self.gen_time = gen_time
        self.node = src  # routing node for the next allocation
        self.bindings: list[tuple[int, int]] = []  # (link, vc) per hop
        self.sent: list[int] = []  # flits sent across each bound hop
        self.tagged = tagged
        self.crossed_dateline = False
        self.current_dim = -1


class _DatelinePolicy:
    """Dally–Seitz dateline VC eligibility for a unidirectional torus."""

    def __init__(self, topology: KaryNCube) -> None:
        self.k = topology.radix
        self.d = topology.dimensions
        self.network_links = topology.num_processors * topology.dimensions

    def classify(self, link: int) -> tuple[int, bool]:
        """(dimension, is_wrap_link) for network links; (-1, False) otherwise."""
        if link >= self.network_links:
            return -1, False
        u, dim = divmod(link, self.d)
        coord = (u // self.k**dim) % self.k
        return dim, coord == self.k - 1

    def eligible(self, worm: _Worm, link: int) -> tuple[int, ...]:
        """VC indices the worm may use on ``link``."""
        dim, _ = self.classify(link)
        if dim < 0:
            return (0, 1)
        if dim != worm.current_dim:
            return (0,)  # entering a new dimension: back to VC 0
        return (1,) if worm.crossed_dateline else (0,)

    def on_allocate(self, worm: _Worm, link: int) -> None:
        """Update the worm's dateline state after a binding is made."""
        dim, is_wrap = self.classify(link)
        if dim < 0:
            return
        if dim != worm.current_dim:
            worm.current_dim = dim
            worm.crossed_dateline = False
        if is_wrap:
            worm.crossed_dateline = True


def dateline_policy(topology: SimTopology) -> _DatelinePolicy:
    """Build the dateline policy; requires a :class:`KaryNCube`."""
    if not isinstance(topology, KaryNCube):
        raise ConfigurationError("dateline_policy requires a KaryNCube topology")
    return _DatelinePolicy(topology)


class BufferedWormholeSimulator:
    """Input-buffered, virtual-channel wormhole simulator (see module docs).

    Parameters
    ----------
    topology:
        Any SimTopology.
    workload / config / traffic / keep_samples:
        As for the other simulators.
    virtual_channels:
        VCs per physical link (>= 1).
    buffer_flits:
        FIFO capacity per (link, VC) input buffer (>= 1).  The default of 2
        is the smallest depth that streams one flit per cycle under the
        one-cycle credit loop; 1 halves the per-hop bandwidth.
    vc_policy:
        ``"any"`` or ``"dateline"``.
    """

    def __init__(
        self,
        topology: SimTopology,
        workload: Workload,
        config: SimConfig,
        *,
        traffic=None,
        keep_samples: bool = True,
        virtual_channels: int = 1,
        buffer_flits: int = 2,
        vc_policy: str = "any",
    ) -> None:
        if not isinstance(virtual_channels, int) or virtual_channels < 1:
            raise ConfigurationError("virtual_channels must be a positive integer")
        if not isinstance(buffer_flits, int) or buffer_flits < 1:
            raise ConfigurationError("buffer_flits must be a positive integer")
        if vc_policy not in ("any", "dateline"):
            raise ConfigurationError(f"unknown vc_policy {vc_policy!r}")
        if vc_policy == "dateline" and virtual_channels < 2:
            raise ConfigurationError("dateline policy requires >= 2 virtual channels")
        self.topology = topology
        self.workload = workload
        self.config = config
        self.vcs = virtual_channels
        self.buffer_flits = buffer_flits
        self.vc_policy_name = vc_policy
        self._policy = dateline_policy(topology) if vc_policy == "dateline" else None
        self.traffic = traffic or PoissonTraffic(
            topology.num_processors, workload, seed=config.seed
        )
        (self._rng,) = spawn_rngs(config.seed ^ 0xBFFE_11, 1)
        self.metrics = MetricsCollector(
            workload,
            config,
            topology.num_processors,
            list(topology.link_class),
            keep_samples=keep_samples,
        )

    def _eligible_vcs(self, worm: _Worm, link: int) -> tuple[int, ...]:
        if self._policy is None:
            return tuple(range(self.vcs))
        return self._policy.eligible(worm, link)

    # --- main loop --------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the cycle loop; see the module docstring for semantics."""
        topo = self.topology
        cfg = self.config
        metrics = self.metrics
        flits = self.workload.message_flits
        V = self.vcs
        B = self.buffer_flits
        cutoff = int(cfg.cutoff_cycles)
        measure_end = cfg.measure_end
        link_dst = topo.link_dst
        link_group = topo.link_group
        class_id = metrics.link_class_id
        rng = self._rng
        n_links = topo.num_links
        n_pes = topo.num_processors

        is_ejection = np.fromiter(
            (link_dst[e] < n_pes for e in range(n_links)), dtype=bool, count=n_links
        )

        def lv(link: int, vc: int) -> int:
            return link * V + vc

        vc_output_busy = np.zeros(n_links * V, dtype=bool)
        occupancy = np.zeros(n_links * V, dtype=np.int32)
        # FIFO of [worm, arrived, departed] segments per receiving buffer.
        buffer_queue: list[deque] = [deque() for _ in range(n_links * V)]
        out_worm: list[_Worm | None] = [None] * (n_links * V)
        out_hop = np.zeros(n_links * V, dtype=np.int32)
        alloc_cycle = np.zeros(n_links * V, dtype=np.int64)
        rr_pointer = np.zeros(n_links, dtype=np.int32)
        active_links: set[int] = set()

        sources: list[deque] = [deque() for _ in range(n_pes)]
        group_queues: list[list] = [[] for _ in range(len(topo.groups))]
        active_groups: set[int] = set()
        requested: set[int] = set()
        seq = 0

        arrival_iter = self.traffic.arrivals(float(cutoff))
        next_arrival = next(arrival_iter, None)
        tagged_outstanding = 0
        t = 0

        def request_allocation(worm: _Worm, cycle: int) -> None:
            nonlocal seq
            if id(worm) in requested:
                return
            if worm.bindings:
                options = topo.route_options(worm.node, worm.dst)
            else:
                options = topo.injection_options(worm.src)
            g = link_group[options.links[0]]
            heapq.heappush(
                group_queues[g], (cycle, float(rng.random()), seq, worm, options.links)
            )
            active_groups.add(g)
            requested.add(id(worm))
            seq += 1

        while t < cutoff:
            # ---- phase 1: arrivals --------------------------------------------------
            while next_arrival is not None and int(next_arrival.time) == t:
                a = next_arrival
                if a.flits is not None and a.flits != flits:
                    raise ConfigurationError(
                        "the buffered engine supports fixed-length worms only; "
                        "use the event-driven simulator for variable lengths"
                    )
                tagged = metrics.on_generated(float(t))
                worm = _Worm(a.src, a.dst, float(t), tagged)
                if tagged:
                    tagged_outstanding += 1
                sources[a.src].append(worm)
                if sources[a.src][0] is worm:
                    request_allocation(worm, t)
                next_arrival = next(arrival_iter, None)

            # ---- phase 2: VC allocation (FCFS per VC, no head-of-line) ----------------
            # Requests are served oldest-first, but a requester whose needed
            # VC is busy does not block younger requesters that can use a
            # different free VC — allocation must be per-resource or the
            # dateline scheme's deadlock-freedom argument breaks.
            if active_groups:
                for g in sorted(active_groups):
                    q = group_queues[g]
                    if not q:
                        active_groups.discard(g)
                        continue
                    kept: list = []
                    progress = True
                    while q:
                        entry = heapq.heappop(q)
                        _, _, _, worm, links = entry
                        free_choices = []
                        for link in links:
                            for vc in self._eligible_vcs(worm, link):
                                if not vc_output_busy[lv(link, vc)]:
                                    free_choices.append((link, vc))
                                    break  # lowest eligible VC per link
                        if not free_choices:
                            kept.append(entry)
                            continue
                        link, vc = (
                            free_choices[0]
                            if len(free_choices) == 1
                            else free_choices[int(rng.integers(len(free_choices)))]
                        )
                        requested.discard(id(worm))
                        slot = lv(link, vc)
                        vc_output_busy[slot] = True
                        out_worm[slot] = worm
                        out_hop[slot] = len(worm.bindings)
                        alloc_cycle[slot] = t
                        worm.bindings.append((link, vc))
                        worm.sent.append(0)
                        worm.node = link_dst[link]
                        metrics.on_acquisition(int(class_id[link]), float(t))
                        if self._policy is not None:
                            self._policy.on_allocate(worm, link)
                        active_links.add(link)
                    for entry in kept:
                        heapq.heappush(q, entry)
                    if not q:
                        active_groups.discard(g)

            # ---- phase 3: link scheduling (one flit per link, RR over VCs) -----------
            occ_snapshot = occupancy.copy()
            moves: list[tuple[_Worm, int, int, int]] = []
            for link in list(active_links):
                base = link * V
                start = rr_pointer[link]
                any_binding = False
                for off in range(V):
                    vc = (start + off) % V
                    slot = base + vc
                    worm = out_worm[slot]
                    if worm is None:
                        continue
                    any_binding = True
                    hop = int(out_hop[slot])
                    k = worm.sent[hop]
                    if k >= flits:
                        continue
                    if hop == 0:
                        src_q = sources[worm.src]
                        if not src_q or src_q[0] is not worm:
                            continue
                    else:
                        up_slot = lv(*worm.bindings[hop - 1])
                        upq = buffer_queue[up_slot]
                        if not upq or upq[0][0] is not worm or k >= upq[0][1]:
                            continue  # not at front / flit not yet arrived
                    if not is_ejection[link] and occ_snapshot[slot] >= B:
                        continue  # no credit downstream
                    moves.append((worm, hop, link, vc))
                    rr_pointer[link] = (vc + 1) % V
                    break
                if not any_binding:
                    active_links.discard(link)

            # ---- phase 4: apply movements ---------------------------------------------
            delivered_now: list[_Worm] = []
            for worm, hop, link, vc in moves:
                k = worm.sent[hop]
                worm.sent[hop] = k + 1
                slot = lv(link, vc)
                is_tail = k == flits - 1

                # departure from the upstream store
                if hop == 0:
                    if is_tail:
                        src_q = sources[worm.src]
                        if not src_q or src_q.popleft() is not worm:
                            raise SimulationError("source queue corrupted")
                        if src_q and not src_q[0].bindings:
                            request_allocation(src_q[0], t + 1)
                else:
                    up_slot = lv(*worm.bindings[hop - 1])
                    occupancy[up_slot] -= 1
                    upq = buffer_queue[up_slot]
                    seg = upq[0]
                    seg[2] += 1
                    if seg[2] == flits:
                        upq.popleft()
                        if upq:
                            front = upq[0][0]
                            # The new front worm's head may now be routable:
                            # it still ends at this buffer and has somewhere
                            # to go.
                            if (
                                front.bindings[-1] == worm.bindings[hop - 1]
                                and front.node != front.dst
                            ):
                                request_allocation(front, t + 1)

                # arrival downstream
                if is_ejection[link]:
                    if is_tail:
                        delivered_now.append(worm)
                else:
                    occupancy[slot] += 1
                    q = buffer_queue[slot]
                    if q and q[-1][0] is worm:
                        q[-1][1] += 1
                    else:
                        q.append([worm, 1, 0])
                    if (
                        k == 0
                        and q[0][0] is worm
                        and link_dst[link] != worm.dst
                    ):
                        # head landed at the buffer front: route next cycle
                        request_allocation(worm, t + 1)

                # tail crossed this link: the output VC frees for reallocation
                if is_tail:
                    vc_output_busy[slot] = False
                    out_worm[slot] = None
                    metrics.on_busy(
                        int(class_id[link]),
                        float(t + 1 - alloc_cycle[slot]),
                        float(alloc_cycle[slot]),
                    )
                    g = link_group[link]
                    if group_queues[g]:
                        active_groups.add(g)

            for worm in delivered_now:
                metrics.on_delivered(
                    worm.gen_time, float(t + 1), worm.tagged, len(worm.bindings)
                )
                if worm.tagged:
                    tagged_outstanding -= 1

            t += 1
            if tagged_outstanding == 0 and t >= measure_end:
                break

        return metrics.finalize(float(t))


def simulate_buffered(
    topology: SimTopology,
    workload: Workload,
    config: SimConfig,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around the buffered VC simulator."""
    return BufferedWormholeSimulator(topology, workload, config, **kwargs).run()
