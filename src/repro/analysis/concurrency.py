"""Concurrency lints (REP201..REP204) over the project effect facts.

This is the rule layer of the analyzer stack — :mod:`.callgraph` builds
the interprocedural graph, :mod:`.effects` infers per-function effect
facts, and this module turns those facts into findings.  Where the
paper's analytical model predicts contention on *physical channels*,
this pass predicts contention on *shared in-process state*:

**REP201** — no blocking effect (file/sqlite/socket I/O, ``time.sleep``,
subprocess) may be reachable from an ``async def`` body through plain
calls.  Hand-offs through ``loop.run_in_executor`` / ``asyncio.to_thread``
are the sanctioned escape hatch: they appear as *spawn* edges in the call
graph and are never flagged.  Suppress a justified site with
``# lint: allow-blocking-async``.

**REP202** — a module-global written both from a *thread-pool-reachable*
function (the transitive closure of executor/thread spawn targets) and
from main-path code is contended: every write site must hold a lock (a
``with <lock>:`` at the site, or the mutating method's own locking
discipline), be ``threading.local``, or carry
``# lint: allow-shared-state``.

**REP203** — no ``await`` inside a *sync* ``with <lock>:`` critical
section; parking the coroutine while holding a thread lock stalls every
other thread that wants it.  ``async with`` (asyncio locks) is fine.
Suppress with ``# lint: allow-await-in-lock``.

**REP204** — a bare coroutine call as an expression statement
(``self.refresh()`` where ``refresh`` is ``async def``) never runs;
award it an ``await`` or schedule it.  Suppress with
``# lint: allow-bare-coroutine``.

All four rules are conservative in the "no fabricated resolution"
direction: dynamic dispatch the call graph cannot resolve produces no
finding rather than a speculative one.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from .callgraph import CallGraph, FunctionInfo, ModuleInfo, build_callgraph, _FunctionScope
from .effects import EffectTable, _attr_chain, _lock_like, infer_effects
from .findings import ERROR, Finding, RULE_CATALOG, pragma_lines

__all__ = ["REP2XX_RULES", "analyze_concurrency"]

REP2XX_RULES = ("REP201", "REP202", "REP203", "REP204")


def analyze_concurrency(
    paths: Sequence[Path | str], *, rules: Sequence[str] | None = None
) -> list[Finding]:
    """Run the REP2xx pass over every ``.py`` under ``paths``."""
    selected = frozenset(rules) if rules is not None else frozenset(REP2XX_RULES)
    graph = build_callgraph(paths)
    table = infer_effects(graph)
    checker = _Checker(graph, table)
    findings: list[Finding] = []
    if "REP201" in selected:
        findings.extend(checker.rep201())
    if "REP202" in selected:
        findings.extend(checker.rep202())
    if "REP203" in selected:
        findings.extend(checker.rep203())
    if "REP204" in selected:
        findings.extend(checker.rep204())
    return sorted(findings, key=Finding.sort_key)


class _Checker:
    def __init__(self, graph: CallGraph, table: EffectTable) -> None:
        self.graph = graph
        self.table = table
        self._pragmas: dict[str, dict[int, frozenset[str]]] = {
            name: pragma_lines(mod.source) for name, mod in graph.modules.items()
        }

    # -- shared helpers -----------------------------------------------------

    def _mod(self, fn: FunctionInfo) -> ModuleInfo | None:
        return self.graph.modules.get(fn.module)

    def _suppressed(self, module: str, line: int, rule: str) -> bool:
        tags = self._pragmas.get(module, {}).get(line)
        return bool(tags) and RULE_CATALOG[rule].pragma in tags

    def _finding(
        self, rule: str, fn: FunctionInfo, line: int, message: str, hint: str
    ) -> Finding | None:
        if self._suppressed(fn.module, line, rule):
            return None
        mod = self._mod(fn)
        path = str(mod.path) if mod is not None else fn.module
        return Finding(
            rule=rule, severity=ERROR, message=message, path=path, line=line, hint=hint
        )

    # -- REP201: blocking reachable from async def --------------------------

    def rep201(self) -> list[Finding]:
        hint = (
            "hand off via await loop.run_in_executor(...)/asyncio.to_thread(...)"
            " or pragma allow-blocking-async"
        )
        out: list[Finding] = []
        for qualname, fn in self.graph.functions.items():
            if not fn.is_async:
                continue
            effects = self.table.get(qualname)
            if effects is not None:
                for line, api in effects.blocking_sites:
                    f = self._finding(
                        "REP201",
                        fn,
                        line,
                        f"async def '{fn.name}' performs blocking call {api}",
                        hint,
                    )
                    if f is not None:
                        out.append(f)
            seen: set[tuple[int, str]] = set()
            for site in self.graph.callees(qualname):  # spawn edges excluded
                callee = self.graph.functions.get(site.callee)
                ce = self.table.get(site.callee)
                if callee is None or callee.is_async or ce is None or ce.blocks is None:
                    continue
                if (site.lineno, site.callee) in seen:
                    continue
                seen.add((site.lineno, site.callee))
                witness = " -> ".join(
                    part.rsplit(".", 1)[-1]
                    for part in (site.callee, *ce.blocks_via)
                )
                f = self._finding(
                    "REP201",
                    fn,
                    site.lineno,
                    f"async def '{fn.name}' calls '{callee.name}' which blocks"
                    f" ({ce.blocks} via {witness})",
                    hint,
                )
                if f is not None:
                    out.append(f)
        return out

    # -- REP202: contended module-global writes -----------------------------

    def rep202(self) -> list[Finding]:
        hint = (
            "guard every write with one threading.Lock"
            " or pragma allow-shared-state"
        )
        pool = self.graph.reachable(self.graph.spawn_targets())
        writes: dict[str, list[tuple[str, object]]] = {}
        for qualname, effects in self.table.items():
            for w in effects.global_writes:
                writes.setdefault(w.target, []).append((qualname, w))
        out: list[Finding] = []
        for target, sites in writes.items():
            pool_writers = {q for q, _ in sites if q in pool}
            main_writers = {q for q, _ in sites if q not in pool}
            if not pool_writers or not main_writers:
                continue
            short = target.rsplit(".", 1)[-1]
            for qualname, w in sites:
                if w.guarded:  # type: ignore[attr-defined]
                    continue
                fn = self.graph.functions[qualname]
                f = self._finding(
                    "REP202",
                    fn,
                    w.lineno,  # type: ignore[attr-defined]
                    f"unguarded write to shared module global '{short}'"
                    f" ({w.how}); '{target}' is written from both"  # type: ignore[attr-defined]
                    " thread-pool and main-path code",
                    hint,
                )
                if f is not None:
                    out.append(f)
        return out

    # -- REP203: await while holding a sync lock ----------------------------

    def rep203(self) -> list[Finding]:
        hint = (
            "release the lock before awaiting, or switch to asyncio.Lock"
            " with 'async with'; pragma allow-await-in-lock"
        )
        out: list[Finding] = []
        for fn in self.graph.functions.values():
            mod = self._mod(fn)
            if mod is None:
                continue
            for line in _awaits_under_sync_lock(fn.node, self.graph, mod.name):
                f = self._finding(
                    "REP203",
                    fn,
                    line,
                    f"'{fn.name}' awaits while holding a sync lock"
                    " (parks the coroutine with the lock held)",
                    hint,
                )
                if f is not None:
                    out.append(f)
        return out

    # -- REP204: bare coroutine call ----------------------------------------

    def rep204(self) -> list[Finding]:
        hint = "await it, or schedule it with asyncio.create_task(...)"
        out: list[Finding] = []
        for fn in self.graph.functions.values():
            mod = self._mod(fn)
            if mod is None:
                continue
            scope = _FunctionScope(fn.cls)
            for stmt in _statements(fn.node):
                if not isinstance(stmt, ast.Expr) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                chain = _attr_chain(stmt.value.func)
                if not chain:
                    continue
                resolved = self.graph.resolve_chain(mod.name, chain, scope=scope)
                if resolved is None or resolved.kind != "func":
                    continue
                callee = self.graph.functions.get(resolved.target)
                if callee is None or not callee.is_async:
                    continue
                f = self._finding(
                    "REP204",
                    fn,
                    stmt.lineno,
                    f"coroutine '{callee.name}' is called but never awaited"
                    " or scheduled (the call builds a coroutine object and"
                    " drops it)",
                    hint,
                )
                if f is not None:
                    out.append(f)
        return out


# ---------------------------------------------------------------------------
# AST walkers (both skip nested defs — their bodies run on another schedule).


def _statements(fn_node: ast.AST) -> list[ast.stmt]:
    """Every statement in the function body, excluding nested defs."""
    out: list[ast.stmt] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.stmt):
                out.append(child)
            walk(child)

    walk(fn_node)
    return out


def _awaits_under_sync_lock(
    fn_node: ast.AST, graph: CallGraph, module: str
) -> list[int]:
    """Line numbers of ``await`` expressions inside a sync ``with <lock>``."""
    lines: list[int] = []

    def walk(node: ast.AST, depth: int) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if node is not fn_node:
                return
        if isinstance(node, ast.Await) and depth > 0:
            lines.append(node.lineno)
        if isinstance(node, ast.With):
            holds = any(
                _lock_like(item.context_expr, graph, module) for item in node.items
            )
            for item in node.items:
                walk(item, depth)
            for stmt in node.body:
                walk(stmt, depth + 1 if holds else depth)
            return
        # ast.AsyncWith never increments depth: asyncio locks are awaited
        # fairly and holding one across an await is their intended use.
        for child in ast.iter_child_nodes(node):
            walk(child, depth)

    walk(fn_node, 0)
    return lines
