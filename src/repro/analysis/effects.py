"""Per-function effect inference over the project call graph.

For every function in a :class:`~repro.analysis.callgraph.CallGraph` this
pass infers a :class:`FunctionEffects` record:

* **blocks** — the function (transitively) performs an operation that
  parks the calling thread: file/sqlite/socket I/O, ``time.sleep``,
  subprocess spawning.  Matching is two-tier: calls that resolve to a
  canonical external dotted path are matched exactly
  (``sqlite3.connect``, ``time.sleep``, ``os.write``), while unresolved
  attribute calls fall back to a conservative method-tail list
  (``.open``, ``.read_text``, ``.execute`` …) so a ``cursor.execute`` on
  an untyped receiver is still caught.
* **reads_clock** — reads wall-clock time (the REP006 tails).
* **solves** — enters a NumPy/GIL-bound numeric kernel (any resolved
  ``numpy.*`` call); GIL-holding CPU work is what multi-worker serving
  must push into a pool, so the fact is propagated like blocking.
* **mutates self** — writes instance state outside ``__init__``/
  ``__post_init__``, with per-site *lock-guard* tracking: a mutation
  inside ``with <lock>:`` (a name containing ``lock`` or a value typed
  ``threading.Lock``/``RLock``/``Condition``/``Semaphore``) is guarded.
  A method is *guarded* when every mutation path — direct sites and
  transitive ``self.helper()`` calls — holds a lock.  Writes through a
  ``threading.local``-typed attribute are exempt (thread-local state
  cannot race).
* **writes module-globals** — direct writes (``global X`` rebinding,
  ``X.attr = ...``, ``X[k] = ...``, container-mutator calls) plus calls
  to self-mutating methods *on* a module-global instance: with
  ``METRICS = MetricsRegistry()`` at module level, ``METRICS.add(...)``
  is a write to ``obs.metrics.METRICS`` whose guardedness is the called
  method's guardedness (or an enclosing ``with lock:`` at the call site).

Blocking/clock/solve facts propagate transitively over ``call`` edges to
*sync* callees (calling an ``async def`` only creates a coroutine — its
effects belong to whoever awaits it, and REP201 reports them there);
``spawn`` edges never propagate — handing work to an executor is the
sanctioned way to keep an effect off the event loop.  Each transitive
``blocks`` carries a witness chain (``lookup -> find_by_scenario_key ->
sqlite3.connect``) so findings explain themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import CallGraph, FunctionInfo, ModuleInfo, Resolved, _FunctionScope

__all__ = [
    "EffectTable",
    "FunctionEffects",
    "GlobalWrite",
    "infer_effects",
]

# --- canonical external paths ------------------------------------------------

_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "sqlite3.connect",
        "os.open",
        "os.write",
        "os.read",
        "os.fsync",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.system",
        "os.popen",
        "urllib.request.urlopen",
        "socket.create_connection",
        "socket.socket",
        "select.select",
        "shutil.copy",
        "shutil.copytree",
        "shutil.rmtree",
    }
)
_BLOCKING_PREFIXES = ("subprocess.",)

# Method tails that block on an *unresolved* receiver (conservative: a
# typed receiver that resolved to a non-blocking external is exempt).
_BLOCKING_METHOD_TAILS = frozenset(
    {
        "open",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "mkdir",
        "unlink",
        "rename",
        "replace",
        "execute",
        "executemany",
        "executescript",
        "commit",
        "rollback",
        "fetchone",
        "fetchall",
        "fetchmany",
        "recv",
        "sendall",
        "accept",
    }
)

_WALL_CLOCK_EXACT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
_WALL_CLOCK_TAILS = (
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
)

_SOLVE_PREFIXES = ("numpy.", "np.")

# Container methods that mutate their receiver in place.
_MUTATOR_TAILS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "__setitem__",
    }
)

_LOCK_CLASS_TAILS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

_CONSTRUCTOR_EXEMPT = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass(frozen=True)
class GlobalWrite:
    """One write site against a module-global variable."""

    target: str  # global qualname, e.g. "repro.obs.metrics.METRICS"
    lineno: int
    guarded: bool
    how: str  # human description: "METRICS.add(...)", "global _ACTIVE", ...


@dataclass
class FunctionEffects:
    """Inferred effect facts for one function (see module docstring)."""

    qualname: str
    # Direct in-body blocking sites: (lineno, api description).
    blocking_sites: list[tuple[int, str]] = field(default_factory=list)
    # Transitive verdicts.
    blocks: str | None = None  # the blocking API at the end of the chain
    blocks_via: tuple[str, ...] = ()  # witness: callee qualnames to the site
    reads_clock: bool = False
    solves: bool = False
    # Instance-state mutation (outside constructors).
    self_mutation_sites: list[tuple[int, bool]] = field(default_factory=list)
    self_call_sites: list[tuple[str, int, bool]] = field(default_factory=list)
    mutates_self: bool = False
    self_guarded: bool = True  # meaningful only when mutates_self
    # Module-global writes (direct + via mutating methods on global instances).
    global_writes: list[GlobalWrite] = field(default_factory=list)
    # Deferred: calls on module-global project-class instances whose
    # guardedness depends on the callee's (resolved after propagation).
    _pending_method_writes: list[tuple[str, str, int, bool, str]] = field(
        default_factory=list
    )


class EffectTable(dict):
    """``qualname -> FunctionEffects`` with graph context attached."""

    def __init__(self, graph: CallGraph) -> None:
        super().__init__()
        self.graph = graph


# ---------------------------------------------------------------------------
# Matching helpers.


def _blocking_reason(canonical: str) -> str | None:
    if canonical in _BLOCKING_EXACT:
        return canonical
    for prefix in _BLOCKING_PREFIXES:
        if canonical.startswith(prefix):
            return canonical
    return None


def _is_wall_clock(canonical: str, chain: tuple[str, ...]) -> bool:
    if canonical in _WALL_CLOCK_EXACT:
        return True
    for tail in _WALL_CLOCK_TAILS:
        if chain[-len(tail) :] == tail:
            return True
    return False


def _is_solve(canonical: str) -> bool:
    return any(canonical.startswith(p) for p in _SOLVE_PREFIXES)


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _lock_like(expr: ast.expr, graph: CallGraph, module: str) -> bool:
    """Is this ``with`` context expression a thread lock?"""
    if isinstance(expr, ast.Call):
        chain = _attr_chain(expr.func)
    else:
        chain = _attr_chain(expr)
    if not chain:
        return False
    if "lock" in chain[-1].lower():
        return True
    resolved = graph.resolve_chain(module, chain)
    if resolved is not None and resolved.kind == "external":
        return resolved.target.rsplit(".", 1)[-1] in _LOCK_CLASS_TAILS
    if resolved is not None and resolved.kind == "var":
        return any(
            r.kind == "external"
            and r.target.rsplit(".", 1)[-1] in _LOCK_CLASS_TAILS
            for r in graph.var_types(resolved.target)
        )
    return False


def _is_thread_local_attr(
    graph: CallGraph, cls_qualname: str | None, attr: str
) -> bool:
    if cls_qualname is None:
        return False
    cls = graph.classes.get(cls_qualname)
    if cls is None:
        return False
    return any(
        r.kind == "external" and r.target.rsplit(".", 1)[-1] == "local"
        for r in cls.attr_types.get(attr, [])
    )


# ---------------------------------------------------------------------------
# The per-function direct pass.


class _DirectEffects:
    """Recursive body walk tracking lock depth and local shadowing."""

    def __init__(
        self,
        graph: CallGraph,
        mod: ModuleInfo,
        fn: FunctionInfo,
        effects: FunctionEffects,
    ) -> None:
        self.graph = graph
        self.mod = mod
        self.fn = fn
        self.e = effects
        # A minimal scope so ``self.attr.method(...)`` chains resolve
        # through the owning class's inferred attribute types.
        self.scope = _FunctionScope(fn.cls)
        self.locals: set[str] = set()
        self.declared_globals: set[str] = set()
        self._prescan(fn.node)

    def _prescan(self, node: ast.AST) -> None:
        """Locally-bound names (params, assignments) shadow module globals."""
        args = self.fn.node.args
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.locals.add(a.arg)
        if args.vararg:
            self.locals.add(args.vararg.arg)
        if args.kwarg:
            self.locals.add(args.kwarg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                self.declared_globals.update(sub.names)
            elif isinstance(sub, ast.Assign):
                for t in sub.targets:
                    if isinstance(t, ast.Name):
                        self.locals.add(t.id)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(sub.target, ast.Name):
                    self.locals.add(sub.target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for t in ast.walk(sub.target):
                    if isinstance(t, ast.Name):
                        self.locals.add(t.id)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if isinstance(item.optional_vars, ast.Name):
                        self.locals.add(item.optional_vars.id)
        self.locals -= self.declared_globals

    # -- the walk -----------------------------------------------------------

    def run(self) -> None:
        for stmt in self.fn.node.body:
            self._visit(stmt, lock_depth=0)

    def _visit(self, node: ast.AST, lock_depth: int) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested defs run on their own schedule (executor callables,
            # callbacks): their bodies are not inline effects of the
            # enclosing function.  The call graph cannot resolve them as
            # spawn targets either, so they stay out of both sides —
            # conservative in the "no false positives" direction.
            return
        if isinstance(node, ast.With):
            holds = any(
                _lock_like(item.context_expr, self.graph, self.mod.name)
                for item in node.items
            )
            for item in node.items:
                self._visit(item.context_expr, lock_depth)
            for stmt in node.body:
                self._visit(stmt, lock_depth + 1 if holds else lock_depth)
            return
        if isinstance(node, ast.Call):
            self._call(node, lock_depth)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._assignment(node, lock_depth)
        for child in ast.iter_child_nodes(node):
            self._visit(child, lock_depth)

    # -- calls --------------------------------------------------------------

    def _call(self, node: ast.Call, lock_depth: int) -> None:
        chain = _attr_chain(node.func)
        if not chain:
            return
        is_self = chain[0] == "self" and self.fn.cls is not None
        if not is_self and chain[0] in self.locals and len(chain) == 1:
            return
        if is_self:
            resolved = self.graph.resolve_chain(self.mod.name, chain, scope=self.scope)
        elif chain[0] in self.locals:
            resolved = None
        else:
            resolved = self.graph.resolve_chain(self.mod.name, chain)
        guarded = lock_depth > 0
        if resolved is None:
            # Unresolved receiver: conservative tail matching.
            tail = chain[-1]
            if chain[0] == "open" and len(chain) == 1:
                self.e.blocking_sites.append((node.lineno, "open()"))
            elif len(chain) > 1 and tail in _BLOCKING_METHOD_TAILS:
                self.e.blocking_sites.append((node.lineno, ".".join(chain)))
            if _is_wall_clock(".".join(chain), chain):
                self.e.reads_clock = True
            return
        if resolved.kind == "external":
            canonical = resolved.target
            reason = _blocking_reason(canonical)
            if reason is not None:
                self.e.blocking_sites.append((node.lineno, reason))
            if _is_wall_clock(canonical, chain):
                self.e.reads_clock = True
            if _is_solve(canonical):
                self.e.solves = True
            return
        if resolved.kind == "func":
            info = self.graph.functions.get(resolved.target)
            if (
                info is not None
                and info.cls is not None
                and chain[0] == "self"
                and info.cls == (self.fn.cls or "")
            ):
                self.e.self_call_sites.append((resolved.target, node.lineno, guarded))
            # Method call on a module-global instance: a deferred global
            # write if the method turns out to mutate self.
            if info is not None and info.cls is not None and len(chain) >= 2:
                root = self.graph.resolve_chain(self.mod.name, chain[:1])
                if (
                    chain[0] not in self.locals
                    and root is not None
                    and root.kind == "var"
                ):
                    self.e._pending_method_writes.append(
                        (
                            root.target,
                            resolved.target,
                            node.lineno,
                            guarded,
                            ".".join(chain) + "(...)",
                        )
                    )
            return
        if resolved.kind == "var":
            # Container-mutator call on a module-global: X.update(...).
            if len(chain) >= 2 and chain[-1] in _MUTATOR_TAILS:
                root = self.graph.resolve_chain(self.mod.name, chain[:1])
                if root is not None and root.kind == "var":
                    if not self._thread_local_global(root.target):
                        self.e.global_writes.append(
                            GlobalWrite(
                                target=root.target,
                                lineno=node.lineno,
                                guarded=guarded,
                                how=".".join(chain) + "(...)",
                            )
                        )

    def _thread_local_global(self, var_qualname: str) -> bool:
        return any(
            r.kind == "external" and r.target.rsplit(".", 1)[-1] == "local"
            for r in self.graph.var_types(var_qualname)
        )

    # -- assignments --------------------------------------------------------

    def _assignment(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign, lock_depth: int
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        guarded = lock_depth > 0
        for target in targets:
            root, chain = self._target_root(target)
            if root is None:
                continue
            if root == "self":
                if self.fn.name in _CONSTRUCTOR_EXEMPT or self.fn.cls is None:
                    continue
                if len(chain) >= 2 and _is_thread_local_attr(
                    self.graph, self.fn.cls, chain[1]
                ):
                    continue
                if len(chain) >= 2:
                    self.e.self_mutation_sites.append((node.lineno, guarded))
                continue
            if root in self.locals:
                continue
            if root in self.declared_globals and len(chain) == 1:
                # `global X` rebinding of a module-global.
                self.e.global_writes.append(
                    GlobalWrite(
                        target=f"{self.mod.name}.{root}",
                        lineno=node.lineno,
                        guarded=guarded,
                        how=f"global {root} = ...",
                    )
                )
                continue
            if isinstance(target, ast.Subscript) and len(chain) == 1:
                # Container write through a bare module-global name
                # (``COUNTS[key] = ...``): no rebinding, so no ``global``
                # statement is needed and the pre-pass never saw the name
                # as a local — but it mutates shared state all the same.
                resolved = self.graph.resolve_chain(self.mod.name, chain)
                if resolved is not None and resolved.kind == "var":
                    if not self._thread_local_global(resolved.target):
                        self.e.global_writes.append(
                            GlobalWrite(
                                target=resolved.target,
                                lineno=node.lineno,
                                guarded=guarded,
                                how=f"{root}[...] = ...",
                            )
                        )
                continue
            if len(chain) >= 2:
                resolved = self.graph.resolve_chain(self.mod.name, chain[:1])
                if resolved is not None and resolved.kind == "var":
                    if not self._thread_local_global(resolved.target):
                        self.e.global_writes.append(
                            GlobalWrite(
                                target=resolved.target,
                                lineno=node.lineno,
                                guarded=guarded,
                                how=".".join(chain) + " = ...",
                            )
                        )

    @staticmethod
    def _target_root(target: ast.expr) -> tuple[str | None, tuple[str, ...]]:
        """Root name and dotted chain of an assignment target.

        ``self._counters[name]`` → ("self", ("self", "_counters")); plain
        ``x`` → ("x", ("x",)); anything computed → (None, ()).
        """
        node: ast.expr = target
        parts: list[str] = []
        while True:
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Name):
                parts.append(node.id)
                return parts[-1], tuple(reversed(parts))
            else:
                return None, ()


# ---------------------------------------------------------------------------
# Propagation.


def infer_effects(graph: CallGraph) -> EffectTable:
    """Direct pass over every function, then transitive propagation."""
    table = EffectTable(graph)
    for qualname, fn in graph.functions.items():
        mod = graph.modules.get(fn.module)
        effects = FunctionEffects(qualname=qualname)
        if mod is not None:
            _DirectEffects(graph, mod, fn, effects).run()
        if effects.blocking_sites:
            effects.blocks = effects.blocking_sites[0][1]
        effects.mutates_self = bool(effects.self_mutation_sites)
        effects.self_guarded = all(g for _, g in effects.self_mutation_sites)
        table[qualname] = effects

    _propagate_self_mutation(table, graph)
    _propagate_transitive(table, graph)
    _resolve_pending_global_writes(table)
    return table


def _propagate_self_mutation(table: EffectTable, graph: CallGraph) -> None:
    """Fold ``self.helper()`` chains into mutates-self / guardedness."""
    changed = True
    while changed:
        changed = False
        for e in table.values():
            for callee, _lineno, guarded_site in e.self_call_sites:
                ce = table.get(callee)
                if ce is None or not ce.mutates_self:
                    continue
                if not e.mutates_self:
                    e.mutates_self = True
                    e.self_guarded = guarded_site or ce.self_guarded
                    changed = True
                elif e.self_guarded and not (guarded_site or ce.self_guarded):
                    e.self_guarded = False
                    changed = True


def _propagate_transitive(table: EffectTable, graph: CallGraph) -> None:
    """Blocking / clock / solve facts flow caller-ward over sync calls."""
    changed = True
    while changed:
        changed = False
        for qualname, e in table.items():
            for site in graph.edges.get(qualname, ()):
                if site.kind != "call":
                    continue
                callee_info = graph.functions.get(site.callee)
                if callee_info is None or callee_info.is_async:
                    continue
                ce = table.get(site.callee)
                if ce is None:
                    continue
                if ce.blocks is not None and e.blocks is None:
                    e.blocks = ce.blocks
                    e.blocks_via = (site.callee, *ce.blocks_via)
                    changed = True
                if ce.reads_clock and not e.reads_clock:
                    e.reads_clock = True
                    changed = True
                if ce.solves and not e.solves:
                    e.solves = True
                    changed = True


def _resolve_pending_global_writes(table: EffectTable) -> None:
    """Turn ``GLOBAL.method(...)`` calls into write sites when the method
    mutates instance state; guardedness comes from the call-site lock or
    the method's own locking discipline."""
    for e in table.values():
        for target, method, lineno, guarded_site, how in e._pending_method_writes:
            me = table.get(method)
            if me is None or not me.mutates_self:
                continue
            e.global_writes.append(
                GlobalWrite(
                    target=target,
                    lineno=lineno,
                    guarded=guarded_site or me.self_guarded,
                    how=how,
                )
            )
        e._pending_method_writes.clear()
