"""Project call graph from stdlib AST (the base layer of the REP2xx pass).

Builds a conservative interprocedural call graph over a set of Python
source trees without importing them: every ``.py`` file under each given
root is parsed with :mod:`ast`, module/class/function namespaces are
recorded, and call sites are resolved through

* **import aliases** — ``import numpy as np``, ``from ..obs import
  METRICS``, and package ``__init__`` re-export chains
  (``from .runner import run`` inside ``runs/__init__.py``);
* **attribute chains** — ``self.cache.lookup(...)`` resolves through the
  receiving class's inferred attribute types (assignments like
  ``self.cache = ScenarioCache(...)`` in any method, parameter
  annotations, and module-global instances like
  ``METRICS = MetricsRegistry(...)``);
* **decorators** — a decorated ``def`` keeps its identity, so calls to
  the decorated name resolve to the wrapped function;
* **local variables** — single-types locals assigned a known constructor
  (``pool = ThreadPoolExecutor(...)``) type their method calls.

Anything dynamic — computed attributes, values flowing through
containers, ``getattr`` — stays *unresolved*: the chain text is kept so
effect inference can still tail-match known blocking APIs
(:mod:`repro.analysis.effects`), but no edge is invented.  Conservatism
here means "never fabricate a resolution", so downstream rules prefer
false negatives on dynamic dispatch over false positives.

Besides plain ``call`` edges the builder records **spawn** edges — the
callable handed to ``loop.run_in_executor``, ``asyncio.to_thread``,
``ThreadPoolExecutor.submit`` or ``threading.Thread(target=...)``.
Spawned callables run on another thread: they are *excluded* from the
"what does this async body execute inline" reachability of REP201 but
*seed* the thread-pool-reachable set of REP202 (see
:mod:`repro.analysis.concurrency`).  ``ProcessPoolExecutor``/
``multiprocessing`` hand-offs are neither: a worker process has its own
module state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Resolved",
    "build_callgraph",
]

# Thread-backed executors: callables handed to these run on a thread that
# shares this process's module state.  Process pools do not.
_THREAD_EXECUTOR_CLASSES = frozenset({"ThreadPoolExecutor"})
_PROCESS_EXECUTOR_CLASSES = frozenset({"ProcessPoolExecutor", "Pool"})


@dataclass(frozen=True)
class Resolved:
    """Outcome of resolving one dotted chain.

    ``kind`` is one of ``"func"``, ``"class"``, ``"var"``, ``"module"``,
    ``"external"``.  ``target`` is the project-qualified name for the
    first four and the canonical absolute dotted path (``numpy.random.
    default_rng``, ``time.sleep``) for externals — the form effect
    inference matches against.
    """

    kind: str
    target: str


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge (``kind="call"``) or thread hand-off
    (``kind="spawn"``)."""

    caller: str
    callee: str
    lineno: int
    kind: str = "call"


@dataclass
class FunctionInfo:
    """One ``def``/``async def`` (module-level or method)."""

    qualname: str
    module: str
    name: str
    lineno: int
    is_async: bool
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # owning class qualname, if a method


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    # attr name -> candidate Resolved types (from self.X = ... assignments
    # and annotated parameters feeding self.X = param).
    attr_types: dict[str, list[Resolved]] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)  # unresolved base names


@dataclass
class ModuleInfo:
    name: str
    path: Path
    source: str
    tree: ast.Module
    # binding name -> absolute dotted import target ("repro.obs.metrics.METRICS")
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    # module-global variable name -> candidate Resolved types of its value
    global_types: dict[str, list[Resolved]] = field(default_factory=dict)
    global_lines: dict[str, int] = field(default_factory=dict)


class CallGraph:
    """The project graph: modules, functions, classes, call/spawn edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: dict[str, list[CallSite]] = {}
        # caller qualname -> [(dotted chain text, lineno)] for calls that
        # could not be resolved to a project function.
        self.unresolved: dict[str, list[tuple[str, int]]] = {}

    # -- queries ------------------------------------------------------------

    def callees(self, qualname: str, *, kinds: tuple[str, ...] = ("call",)) -> list[CallSite]:
        return [s for s in self.edges.get(qualname, ()) if s.kind in kinds]

    def spawn_targets(self) -> set[str]:
        """Functions handed to a thread (executor submit / Thread target)."""
        return {
            s.callee
            for sites in self.edges.values()
            for s in sites
            if s.kind == "spawn"
        }

    def reachable(
        self, seeds: Iterable[str], *, kinds: tuple[str, ...] = ("call", "spawn")
    ) -> set[str]:
        """Transitive closure over ``kinds`` edges from ``seeds``."""
        seen: set[str] = set()
        frontier = [s for s in seeds if s in self.functions]
        while frontier:
            fn = frontier.pop()
            if fn in seen:
                continue
            seen.add(fn)
            for site in self.edges.get(fn, ()):
                if site.kind in kinds and site.callee not in seen:
                    frontier.append(site.callee)
        return seen

    # -- name resolution ----------------------------------------------------

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> Resolved | None:
        """Resolve an absolute dotted path against the project namespace."""
        if _depth > 16:  # pathological re-export cycles
            return None
        parts = dotted.split(".")
        # Longest known-module prefix; the remainder resolves componentwise.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                current: Resolved | None = Resolved("module", prefix)
                for comp in parts[cut:]:
                    current = self._step(current, comp, _depth)
                    if current is None:
                        return None
                return current
        return Resolved("external", dotted)

    def resolve_chain(
        self, module: str, chain: Sequence[str], *, scope: "_FunctionScope | None" = None
    ) -> Resolved | None:
        """Resolve a ``Name``/``Attribute`` chain seen inside ``module``."""
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        current = self._resolve_head(module, head, scope)
        if current is None:
            return None
        for comp in rest:
            current = self._step(current, comp, 0)
            if current is None:
                return None
        return current

    def _resolve_head(
        self, module: str, head: str, scope: "_FunctionScope | None"
    ) -> Resolved | None:
        if scope is not None:
            if head == "self" and scope.cls is not None:
                return Resolved("class-instance", scope.cls)
            local = scope.local_types.get(head)
            if local is not None:
                return local
            if head in scope.assigned:
                return None  # locally rebound to something unknown
        return self._lookup(module, head, 0)

    def _lookup(self, module: str, name: str, depth: int) -> Resolved | None:
        mod = self.modules.get(module)
        if mod is None:
            return Resolved("external", f"{module}.{name}")
        if name in mod.functions:
            return Resolved("func", mod.functions[name].qualname)
        if name in mod.classes:
            return Resolved("class", mod.classes[name].qualname)
        if name in mod.global_types:
            return Resolved("var", f"{mod.name}.{name}")
        if name in mod.imports:
            return self.resolve_dotted(mod.imports[name], depth + 1)
        if f"{module}.{name}" in self.modules:
            return Resolved("module", f"{module}.{name}")
        return None

    def _step(self, current: Resolved, comp: str, depth: int) -> Resolved | None:
        if current.kind == "module":
            return self._lookup(current.target, comp, depth)
        if current.kind == "external":
            return Resolved("external", f"{current.target}.{comp}")
        if current.kind in ("class", "class-instance"):
            method = self._method_of(current.target, comp)
            if method is not None:
                return Resolved("func", method.qualname)
            # instance attribute with an inferred type
            for resolved in self._attr_types(current.target, comp):
                stepped = Resolved(
                    "class-instance" if resolved.kind == "class" else resolved.kind,
                    resolved.target,
                )
                return stepped
            return None
        if current.kind == "var":
            for rtype in self.var_types(current.target):
                if rtype.kind == "class":
                    method = self._method_of(rtype.target, comp)
                    if method is not None:
                        return Resolved("func", method.qualname)
                if rtype.kind == "external":
                    return Resolved("external", f"{rtype.target}.{comp}")
            return None
        if current.kind == "func":
            return None  # attributes of functions are dynamic
        return None

    def _method_of(self, class_qualname: str, name: str, _depth: int = 0) -> FunctionInfo | None:
        cls = self.classes.get(class_qualname)
        if cls is None or _depth > 8:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            resolved = self.resolve_chain(cls.module, tuple(base.split(".")))
            if resolved is not None and resolved.kind == "class":
                found = self._method_of(resolved.target, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def _attr_types(self, class_qualname: str, attr: str) -> list[Resolved]:
        cls = self.classes.get(class_qualname)
        if cls is None:
            return []
        return cls.attr_types.get(attr, [])

    def var_types(self, var_qualname: str) -> list[Resolved]:
        """Inferred value types of a module-global variable."""
        module, _, name = var_qualname.rpartition(".")
        mod = self.modules.get(module)
        if mod is None:
            return []
        return mod.global_types.get(name, [])

    def callables_of(self, resolved: Resolved | None) -> list[str]:
        """Project function qualnames a resolved value may denote.

        Used for spawn-target arguments: ``self.cache.solver`` resolves to
        a ``var``/attr whose candidate types include function references.
        """
        if resolved is None:
            return []
        if resolved.kind == "func":
            return [resolved.target]
        if resolved.kind == "var":
            return [r.target for r in self.var_types(resolved.target) if r.kind == "func"]
        return []


class _FunctionScope:
    """Per-function context while extracting call sites."""

    __slots__ = ("cls", "local_types", "assigned")

    def __init__(self, cls: str | None) -> None:
        self.cls = cls
        self.local_types: dict[str, Resolved] = {}
        self.assigned: set[str] = set()


# ---------------------------------------------------------------------------
# Building.


def _iter_sources(paths: Sequence[Path | str]) -> Iterator[tuple[Path, str]]:
    """Yield ``(file, module_name)`` pairs for every ``.py`` under ``paths``.

    A directory root named ``pkg`` yields modules ``pkg``, ``pkg.sub``,
    ``pkg.sub.mod`` — so ``src/repro`` produces the canonical
    ``repro.*`` names that absolute imports use.  A bare file yields its
    stem.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for file in sorted(root.rglob("*.py")):
                rel = file.relative_to(root)
                parts = [root.name, *rel.parts]
                parts[-1] = parts[-1].removesuffix(".py")
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                yield file, ".".join(parts)
        elif root.suffix == ".py":
            yield root, root.stem


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # level=1 is the current package: for pkg/__init__.py that is the
    # module itself, for pkg/mod.py it is the parent.
    hops = node.level - 1 if is_package else node.level
    base = parts[: len(parts) - hops] if hops <= len(parts) else []
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _annotation_chain(annotation: ast.expr | None) -> tuple[str, ...]:
    """First concrete class named by an annotation (``Tracer | None`` →
    ``Tracer``), or ()."""
    if annotation is None:
        return ()
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_chain(annotation.left)
        return left if left else _annotation_chain(annotation.right)
    if isinstance(annotation, ast.Subscript):
        chain = _attr_chain(annotation.value)
        if chain and chain[-1] == "Optional":
            inner = annotation.slice
            return _annotation_chain(inner if isinstance(inner, ast.expr) else None)
        return ()
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return ()
    chain = _attr_chain(annotation)
    if chain and chain[-1] in ("None", "Any"):
        return ()
    return chain


class _ModuleCollector(ast.NodeVisitor):
    """First pass: namespaces, imports, classes, functions, globals."""

    def __init__(self, info: ModuleInfo, is_package: bool) -> None:
        self.info = info
        self.is_package = is_package

    def collect(self) -> None:
        for stmt in self.info.tree.body:
            self._top_level(stmt)

    def _top_level(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.info.imports[bound] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = _resolve_relative(self.info.name, self.is_package, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                self.info.imports[bound] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.info.functions[stmt.name] = FunctionInfo(
                qualname=f"{self.info.name}.{stmt.name}",
                module=self.info.name,
                name=stmt.name,
                lineno=stmt.lineno,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
                node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            self._collect_class(stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._collect_global(stmt)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks: collect their bodies.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._top_level(sub)

    def _collect_class(self, node: ast.ClassDef) -> None:
        qualname = f"{self.info.name}.{node.name}"
        cls = ClassInfo(
            qualname=qualname,
            module=self.info.name,
            name=node.name,
            bases=[".".join(_attr_chain(b)) for b in node.bases if _attr_chain(b)],
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = FunctionInfo(
                    qualname=f"{qualname}.{stmt.name}",
                    module=self.info.name,
                    name=stmt.name,
                    lineno=stmt.lineno,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    node=stmt,
                    cls=qualname,
                )
        self.info.classes[node.name] = cls

    def _collect_global(self, stmt: ast.Assign | ast.AnnAssign) -> None:
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            types: list[tuple[str, ...]] = []
            value = stmt.value
            if isinstance(value, ast.Call):
                chain = _attr_chain(value.func)
                if chain:
                    types.append(chain)
            elif isinstance(value, (ast.Dict, ast.DictComp)):
                types.append(("dict",))
            elif isinstance(value, (ast.List, ast.ListComp)):
                types.append(("list",))
            elif isinstance(value, (ast.Set, ast.SetComp)):
                types.append(("set",))
            if isinstance(stmt, ast.AnnAssign):
                ann = _annotation_chain(stmt.annotation)
                if ann:
                    types.append(ann)
            self.info.global_types.setdefault(target.id, []).extend(
                Resolved("chain", ".".join(t)) for t in types
            )
            self.info.global_lines[target.id] = stmt.lineno


def _value_candidates(value: ast.expr) -> list[tuple[str, ...]]:
    """Chains a right-hand side may evaluate to (IfExp/BoolOp branches)."""
    if isinstance(value, ast.IfExp):
        return _value_candidates(value.body) + _value_candidates(value.orelse)
    if isinstance(value, ast.BoolOp):
        out: list[tuple[str, ...]] = []
        for v in value.values:
            out.extend(_value_candidates(v))
        return out
    chain = _attr_chain(value)
    if chain:
        return [chain]
    if isinstance(value, ast.Call):
        chain = _attr_chain(value.func)
        if chain:
            return [("CALL", *chain)]
    return []


class _EdgeExtractor(ast.NodeVisitor):
    """Second pass: call sites, spawn sites, attribute types."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    # Attribute-type inference must complete before chains through those
    # attributes resolve, so building runs attr inference for every module
    # first (phase 2a) and edge extraction after (phase 2b).

    def infer_attr_types(self, mod: ModuleInfo) -> None:
        for cls in mod.classes.values():
            for method in cls.methods.values():
                self._infer_from_method(mod, cls, method)
        # Materialize module-global value types now that classes exist.
        for name, raw in mod.global_types.items():
            resolved: list[Resolved] = []
            for r in raw:
                if r.kind != "chain":
                    resolved.append(r)
                    continue
                chain = tuple(r.target.split("."))
                hit = self.graph.resolve_chain(mod.name, chain)
                if hit is not None:
                    resolved.append(hit)
                else:
                    resolved.append(Resolved("external", r.target))
            mod.global_types[name] = resolved

    def _infer_from_method(
        self, mod: ModuleInfo, cls: ClassInfo, method: FunctionInfo
    ) -> None:
        params = {
            a.arg: _annotation_chain(a.annotation)
            for a in [
                *method.node.args.posonlyargs,
                *method.node.args.args,
                *method.node.args.kwonlyargs,
            ]
        }
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                chain = _attr_chain(target)
                if len(chain) != 2 or chain[0] != "self":
                    continue
                attr = chain[1]
                for cand in _value_candidates(node.value):
                    if cand and cand[0] == "CALL":
                        hit = self.graph.resolve_chain(mod.name, cand[1:])
                        if hit is not None and hit.kind == "class":
                            cls.attr_types.setdefault(attr, []).append(hit)
                        elif hit is not None and hit.kind == "external":
                            cls.attr_types.setdefault(attr, []).append(hit)
                    elif len(cand) == 1 and cand[0] in params and params[cand[0]]:
                        hit = self.graph.resolve_chain(mod.name, params[cand[0]])
                        if hit is not None and hit.kind == "class":
                            cls.attr_types.setdefault(attr, []).append(hit)
                    else:
                        hit = self.graph.resolve_chain(mod.name, cand)
                        if hit is not None and hit.kind in ("func", "class", "var"):
                            cls.attr_types.setdefault(attr, []).append(hit)

    # -- edge extraction ----------------------------------------------------

    def extract(self, mod: ModuleInfo) -> None:
        for fn in mod.functions.values():
            self._extract_function(mod, fn, None)
        for cls in mod.classes.values():
            for method in cls.methods.values():
                self._extract_function(mod, method, cls.qualname)

    def _extract_function(
        self, mod: ModuleInfo, fn: FunctionInfo, cls: str | None
    ) -> None:
        scope = _FunctionScope(cls)
        args = fn.node.args
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ann = _annotation_chain(a.annotation)
            if ann:
                hit = self.graph.resolve_chain(mod.name, ann)
                if hit is not None and hit.kind == "class":
                    scope.local_types[a.arg] = Resolved("class-instance", hit.target)
            scope.assigned.add(a.arg)
        # Single-pass local typing: `x = KnownClass(...)` (incl. `with ... as x`).
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = _attr_chain(node.value.func)
                hit = self.graph.resolve_chain(mod.name, chain, scope=scope) if chain else None
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        scope.assigned.add(target.id)
                        if hit is not None and hit.kind == "class":
                            scope.local_types[target.id] = Resolved(
                                "class-instance", hit.target
                            )
                        elif hit is not None and hit.kind == "external":
                            scope.local_types[target.id] = hit
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        scope.assigned.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name) and isinstance(
                        item.context_expr, ast.Call
                    ):
                        chain = _attr_chain(item.context_expr.func)
                        hit = (
                            self.graph.resolve_chain(mod.name, chain, scope=scope)
                            if chain
                            else None
                        )
                        scope.assigned.add(item.optional_vars.id)
                        if hit is not None and hit.kind in ("class", "external"):
                            scope.local_types[item.optional_vars.id] = Resolved(
                                "class-instance" if hit.kind == "class" else "external",
                                hit.target,
                            )
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                self._record_call(mod, fn, scope, node)

    def _record_call(
        self, mod: ModuleInfo, fn: FunctionInfo, scope: _FunctionScope, node: ast.Call
    ) -> None:
        chain = _attr_chain(node.func)
        if not chain and isinstance(node.func, ast.Attribute):
            # Method call on a constructor result: `Runner(...).run(...)`.
            # The inner Call is walked separately (yielding the __init__
            # edge); here we resolve the method on the constructed class.
            inner = node.func.value
            if isinstance(inner, ast.Call):
                inner_chain = _attr_chain(inner.func)
                hit = (
                    self.graph.resolve_chain(mod.name, inner_chain, scope=scope)
                    if inner_chain
                    else None
                )
                if hit is not None and hit.kind in ("class", "class-instance"):
                    method = self.graph._method_of(hit.target, node.func.attr)
                    if method is not None:
                        self._add_edge(fn.qualname, method.qualname, node.lineno, "call")
                        return
        resolved = (
            self.graph.resolve_chain(mod.name, chain, scope=scope) if chain else None
        )
        if resolved is not None and resolved.kind == "func":
            self._add_edge(fn.qualname, resolved.target, node.lineno, "call")
        elif resolved is not None and resolved.kind in ("class", "class-instance"):
            # Constructor call: edge to __init__ when the project defines it.
            init = self.graph._method_of(resolved.target, "__init__")
            if init is not None:
                self._add_edge(fn.qualname, init.qualname, node.lineno, "call")
        else:
            text = ".".join(chain) if chain else "<dynamic>"
            if resolved is not None and resolved.kind == "external":
                text = resolved.target
            self.graph.unresolved.setdefault(fn.qualname, []).append(
                (text, node.lineno)
            )
        self._record_spawns(mod, fn, scope, node, chain, resolved)

    def _record_spawns(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        scope: _FunctionScope,
        node: ast.Call,
        chain: tuple[str, ...],
        resolved: Resolved | None,
    ) -> None:
        tail = chain[-1] if chain else ""
        spawn_args: list[ast.expr] = []
        if tail == "run_in_executor" and len(node.args) >= 2:
            # loop.run_in_executor(executor, fn, *args): executor=None is
            # the default *thread* pool, so any hand-off here is a thread.
            spawn_args.append(node.args[1])
        elif tail == "to_thread" and node.args:
            spawn_args.append(node.args[0])
        elif tail == "submit" and node.args:
            if not self._is_process_pool(mod, scope, chain[:-1]):
                spawn_args.append(node.args[0])
        elif tail == "Thread" or (resolved is not None and resolved.target == "threading.Thread"):
            for kw in node.keywords:
                if kw.arg == "target":
                    spawn_args.append(kw.value)
        for arg in spawn_args:
            for target in self._callable_targets(mod, scope, arg):
                self._add_edge(fn.qualname, target, node.lineno, "spawn")

    def _is_process_pool(
        self, mod: ModuleInfo, scope: _FunctionScope, receiver: tuple[str, ...]
    ) -> bool:
        if not receiver:
            return False
        hit = self.graph.resolve_chain(mod.name, receiver, scope=scope)
        if hit is None:
            return False
        names: list[str] = []
        if hit.kind in ("class-instance", "class", "external"):
            names.append(hit.target.rsplit(".", 1)[-1])
        elif hit.kind == "var":
            names.extend(
                r.target.rsplit(".", 1)[-1] for r in self.graph.var_types(hit.target)
            )
        return any(n in _PROCESS_EXECUTOR_CLASSES for n in names)

    def _callable_targets(
        self, mod: ModuleInfo, scope: _FunctionScope, arg: ast.expr
    ) -> list[str]:
        # functools.partial(f, ...) hands off f.
        if isinstance(arg, ast.Call):
            chain = _attr_chain(arg.func)
            if chain and chain[-1] == "partial" and arg.args:
                return self._callable_targets(mod, scope, arg.args[0])
            return []
        targets: list[str] = []
        for cand in _value_candidates(arg):
            if cand and cand[0] == "CALL":
                continue
            hit = self.graph.resolve_chain(mod.name, cand, scope=scope)
            if hit is None:
                continue
            if hit.kind == "func":
                targets.append(hit.target)
            else:
                targets.extend(self.graph.callables_of(hit))
        return targets

    def _add_edge(self, caller: str, callee: str, lineno: int, kind: str) -> None:
        self.graph.edges.setdefault(caller, []).append(
            CallSite(caller=caller, callee=callee, lineno=lineno, kind=kind)
        )


def build_callgraph(paths: Sequence[Path | str]) -> CallGraph:
    """Parse every ``.py`` under ``paths`` and build the project graph."""
    graph = CallGraph()
    for file, name in _iter_sources(paths):
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError):
            continue  # the per-file linter reports REP000 for these
        info = ModuleInfo(name=name, path=file, source=source, tree=tree)
        graph.modules[name] = info
        _ModuleCollector(info, is_package=file.name == "__init__.py").collect()
    extractor = _EdgeExtractor(graph)
    for info in graph.modules.values():
        for fn in info.functions.values():
            graph.functions[fn.qualname] = fn
        for cls in info.classes.values():
            graph.classes[cls.qualname] = cls
            for method in cls.methods.values():
                graph.functions[method.qualname] = method
    for info in graph.modules.values():
        extractor.infer_attr_types(info)
    for info in graph.modules.values():
        extractor.extract(info)
    return graph
