"""Model-level pre-solve analyzer: verify invariants before anything solves.

Where :mod:`repro.analysis.lint` checks the *code*, this module checks the
*model instance* a scenario is about to solve.  :func:`analyze_scenario`
statically verifies, without running any fixed point:

REP101  per-switch / per-channel flow conservation of the propagated
        channel rates — at every link, injected mass plus upstream
        edge-flow equals the link's rate within ``1e-9``; non-ejection
        links forward everything they carry; globally, injected load
        equals ejected load.  Holds for all four families x all patterns,
        including under fault masks.
REP102  the stage-graph structure matches the chosen solver: the
        feed-forward families (bft, generalized-fattree, hypercube) must
        produce acyclic graphs; the torus (kary-ncube) may declare its
        cycle-reachable set and is solved by the cyclic batch fixed point.
        A partitioned faulted network also reports here.
REP103  entry-point weights form a probability distribution (sum to 1
        after normalization; every active source has an entry channel).
REP104  stability precondition: no stage can be saturated at the
        requested load even under the minimal service time (``rho < 1``
        necessary condition; the solver's Eq. 26 test is tighter).

``repro check`` renders the report; ``repro run --check`` refuses to solve
(exit 2) when any error-severity finding is present and otherwise records
the report in the run's provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ConfigurationError, PartitionedNetworkError
from ..faults.spec import link_ref
from ..topology.base import DOWN
from ..traffic import flows as _flows
from .findings import ERROR, Finding, render_findings

__all__ = [
    "EXPECTED_ACYCLIC",
    "AnalysisReport",
    "MODEL_CHECKS",
    "analyze_scenario",
    "check_flow_conservation",
    "scenario_flows",
]

#: Rule ids the analyzer evaluates, in reporting order.
MODEL_CHECKS = ("REP101", "REP102", "REP103", "REP104")

#: Which families must yield feed-forward (acyclic) stage graphs.  The
#: torus rings of the k-ary n-cube legitimately close cycles in the
#: channel graph; its batch solver iterates a fixed point instead.
EXPECTED_ACYCLIC = {
    "bft": True,
    "generalized-fattree": True,
    "hypercube": True,
    "kary-ncube": False,
}

_TOL = 1e-9


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of the pre-solve checks for one scenario/model."""

    subject: str
    checks: tuple[str, ...]
    findings: tuple[Finding, ...]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not any(f.severity == ERROR for f in self.findings)

    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == ERROR)

    def render(self) -> str:
        head = f"pre-solve checks for {self.subject}: " + (
            "ok" if self.ok else f"{len(self.errors())} error(s)"
        )
        lines = [head, f"checks: {', '.join(self.checks)}"]
        if self.findings:
            lines.append(render_findings(list(self.findings)))
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": list(self.checks),
            "findings": [f.to_json() for f in self.findings],
        }


def _is_ejection(topology, link: int) -> bool:
    cls = topology.link_class[link]
    return cls.level == 0 and cls.direction == DOWN


def check_flow_conservation(flows, *, tol: float = _TOL) -> list[Finding]:
    """REP101: the propagated channel rates must conserve flow everywhere.

    Checks, each within ``tol``:

    * per link: injected-at-link + sum of upstream edge-flow == link rate
      (a violated link pinpoints the corrupted channel);
    * per non-ejection link: everything carried is forwarded somewhere;
    * per ejection link: nothing is forwarded (worms terminate at PEs);
    * per switch: total inflow equals total outflow;
    * globally: injected load equals ejected load.
    """
    topology = flows.topology
    num_links = topology.num_links
    rate = np.asarray(flows.link_rate, dtype=float)
    findings: list[Finding] = []

    injected = np.zeros(num_links)
    for s, e in flows.entry_link.items():
        injected[e] += float(flows.source_weight[s])
    inflow = injected.copy()
    outflow = np.zeros(num_links)
    for e, targets in enumerate(flows.edge_flow):
        for target, mass in targets.items():
            inflow[target] += mass
            outflow[e] += mass

    def _ref(e: int) -> str:
        return link_ref(topology, e)

    for e in np.nonzero(np.abs(inflow - rate) > tol)[0]:
        findings.append(
            Finding(
                rule="REP101",
                severity=ERROR,
                message=(
                    f"channel {_ref(int(e))} (link {int(e)}) carries rate "
                    f"{rate[e]:.12g} but receives {inflow[e]:.12g} "
                    f"(injected {injected[e]:.12g} + routed "
                    f"{inflow[e] - injected[e]:.12g})"
                ),
                channel=_ref(int(e)),
                hint="flow propagation must conserve mass into every channel",
            )
        )
    for e in range(num_links):
        if _is_ejection(topology, e):
            if outflow[e] > tol:
                findings.append(
                    Finding(
                        rule="REP101",
                        severity=ERROR,
                        message=(
                            f"ejection channel {_ref(e)} forwards rate "
                            f"{outflow[e]:.12g}; worms must terminate at the PE"
                        ),
                        channel=_ref(e),
                        hint="ejection links are flow sinks",
                    )
                )
        elif abs(rate[e] - outflow[e]) > tol:
            findings.append(
                Finding(
                    rule="REP101",
                    severity=ERROR,
                    message=(
                        f"channel {_ref(e)} carries rate {rate[e]:.12g} but "
                        f"forwards only {outflow[e]:.12g}"
                    ),
                    channel=_ref(e),
                    hint="non-ejection channels must forward everything they carry",
                )
            )

    # Per-switch balance (node ids >= num_processors are switches).
    n_pe = topology.num_processors
    node_in: dict[int, float] = {}
    node_out: dict[int, float] = {}
    for e in range(num_links):
        node_out[int(topology.link_src[e])] = (
            node_out.get(int(topology.link_src[e]), 0.0) + rate[e]
        )
        node_in[int(topology.link_dst[e])] = (
            node_in.get(int(topology.link_dst[e]), 0.0) + rate[e]
        )
    for v in sorted(set(node_in) | set(node_out)):
        if v < n_pe:
            continue
        delta = node_in.get(v, 0.0) - node_out.get(v, 0.0)
        if abs(delta) > tol:
            findings.append(
                Finding(
                    rule="REP101",
                    severity=ERROR,
                    message=(
                        f"switch {v} violates flow conservation: inflow "
                        f"{node_in.get(v, 0.0):.12g} != outflow "
                        f"{node_out.get(v, 0.0):.12g}"
                    ),
                    channel=f"switch:{v}",
                    hint="per-switch inflow must equal outflow",
                )
            )

    ejected = float(sum(rate[e] for e in range(num_links) if _is_ejection(topology, e)))
    total = float(flows.total_rate)
    if abs(ejected - total) > tol * max(1.0, total):
        findings.append(
            Finding(
                rule="REP101",
                severity=ERROR,
                message=(
                    f"global imbalance: injected load {total:.12g} != "
                    f"ejected load {ejected:.12g}"
                ),
                channel="global",
                hint="every injected worm must reach exactly one ejection channel",
            )
        )
    return findings


def _entry_findings(flows) -> list[Finding]:
    """REP103 at the flow level: active sources form a sane entry set."""
    findings: list[Finding] = []
    weights = np.asarray(flows.source_weight, dtype=float)
    active = set(np.nonzero(weights > 0.0)[0].tolist())
    recorded = set(int(s) for s in flows.entry_link)
    missing = sorted(active - recorded)
    if missing:
        findings.append(
            Finding(
                rule="REP103",
                severity=ERROR,
                message=(
                    f"{len(missing)} active source(s) have no entry channel "
                    f"(first: pe {missing[0]})"
                ),
                channel=f"pe:{missing[0]}",
                hint="every active source must inject on exactly one channel",
            )
        )
    for s in sorted(recorded):
        d = float(flows.source_distance[s])
        if not (np.isfinite(d) and d > 0.0):
            findings.append(
                Finding(
                    rule="REP103",
                    severity=ERROR,
                    message=f"source pe {s} has invalid mean distance {d!r}",
                    channel=f"pe:{s}",
                    hint="entry distances weight Eq. 2 and must be finite and positive",
                )
            )
    if not recorded:
        findings.append(
            Finding(
                rule="REP103",
                severity=ERROR,
                message="traffic spec generates no traffic (all sources silent)",
                channel="entries",
                hint="at least one source must have positive activity",
            )
        )
    return findings


def scenario_flows(scenario):
    """Trace the channel flows a scenario's analytical backends would use.

    Mirrors :mod:`repro.design.families` (without its caches, so callers
    may corrupt the result freely in tests): faulted scenarios propagate
    the degraded spec over the masked topology; nominal scenarios use the
    family's native tracer.
    """
    from ..design.families import design_family
    from ..faults import FaultedTopology, degraded_spec
    from ..traffic.spec import UniformSpec

    fam = design_family(scenario.topology)
    params = scenario.family_params()
    spec = scenario.spec()
    faults = scenario.fault_spec()
    if faults is not None:
        topo = FaultedTopology(fam.topology(params), faults)
        return _flows.masked_channel_flows(topo, degraded_spec(topo, spec))
    topo = fam.topology(params)
    if scenario.topology == "bft":
        return _flows.bft_channel_flows(topo, spec or UniformSpec())
    if scenario.topology == "hypercube":
        return _flows.single_path_flows(topo, spec or UniformSpec())
    return _flows.masked_channel_flows(topo, spec)


def analyze_scenario(scenario) -> AnalysisReport:
    """Run every model-level pre-solve check for one scenario."""
    from ..traffic.analytic import stage_graph_from_flows

    subject = scenario.describe()
    findings: list[Finding] = []
    try:
        flows = scenario_flows(scenario)
    except PartitionedNetworkError as exc:
        findings.append(
            Finding(
                rule="REP102",
                severity=ERROR,
                message=f"network is partitioned under the fault set: {exc}",
                channel="graph",
                hint="remove faults until every surviving PE pair is connected",
            )
        )
        return AnalysisReport(subject, MODEL_CHECKS, tuple(findings))

    findings.extend(check_flow_conservation(flows))
    findings.extend(_entry_findings(flows))

    if not any(f.rule == "REP103" for f in findings):
        try:
            graph = stage_graph_from_flows(flows, scenario.workload())
        except ConfigurationError as exc:
            findings.append(
                Finding(
                    rule="REP102",
                    severity=ERROR,
                    message=f"stage graph construction failed: {exc}",
                    channel="graph",
                    hint="the traced flows must form a solvable stage graph",
                )
            )
        else:
            findings.extend(
                graph.check(
                    expect_acyclic=EXPECTED_ACYCLIC.get(scenario.topology),
                    load_scale=1.0,
                )
            )
    return AnalysisReport(subject, MODEL_CHECKS, tuple(findings))
