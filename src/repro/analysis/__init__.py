"""Static-analysis layer: code lint, concurrency analysis, pre-solve checks.

Cooperating passes, all emitting typed :class:`Finding` records:

* :mod:`repro.analysis.lint` — an AST-based invariant linter (rules
  REP001..REP007) and the combined driver
  (``python -m repro.analysis.lint [--rules ...] [--json] src/repro``).
* :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.effects` /
  :mod:`repro.analysis.concurrency` — the interprocedural effect
  analyzer and its concurrency rules (REP201..REP204: blocking in
  ``async def``, contended shared globals, await under a sync lock,
  dropped coroutines).
* :mod:`repro.analysis.model` — a pre-solve scenario analyzer
  (:func:`analyze_scenario`, rules REP101..REP104) wired into
  ``repro check`` and ``repro run --check``.

The submodules are imported lazily so that core modules may import
:mod:`repro.analysis.findings` without dragging the whole stack in
(``repro.analysis.model`` imports topology/traffic/design machinery).
"""

from __future__ import annotations

from typing import Any

from .findings import RULE_CATALOG, Finding, render_findings

__all__ = [
    "Finding",
    "RULE_CATALOG",
    "render_findings",
    "analyze_scenario",
    "analyze_concurrency",
    "build_callgraph",
    "infer_effects",
    "lint_paths",
    "run_lint",
]

_LAZY = {
    "analyze_scenario": ("model", "analyze_scenario"),
    "analyze_concurrency": ("concurrency", "analyze_concurrency"),
    "build_callgraph": ("callgraph", "build_callgraph"),
    "infer_effects": ("effects", "infer_effects"),
    "lint_paths": ("lint", "lint_paths"),
    "run_lint": ("lint", "run_lint"),
}


def __getattr__(name: str) -> Any:
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None  # lint: allow-raise (getattr protocol)
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), attr)
