"""Static-analysis layer: code-level lint + model-level pre-solve checks.

Two cooperating passes, both emitting typed :class:`Finding` records:

* :mod:`repro.analysis.lint` — an AST-based invariant linter (rules
  REP001..REP006) run as ``python -m repro.analysis.lint src/repro``.
* :mod:`repro.analysis.model` — a pre-solve scenario analyzer
  (:func:`analyze_scenario`, rules REP101..REP104) wired into
  ``repro check`` and ``repro run --check``.

The submodules are imported lazily so that core modules may import
:mod:`repro.analysis.findings` without dragging the whole stack in
(``repro.analysis.model`` imports topology/traffic/design machinery).
"""

from __future__ import annotations

from typing import Any

from .findings import Finding, render_findings

__all__ = [
    "Finding",
    "render_findings",
    "analyze_scenario",
    "lint_paths",
]


def __getattr__(name: str) -> Any:
    if name == "analyze_scenario":
        from .model import analyze_scenario

        return analyze_scenario
    if name == "lint_paths":
        from .lint import lint_paths

        return lint_paths
    raise AttributeError(name)  # lint: allow-raise (getattr protocol)
