"""AST-based invariant linter for the repro stack (``python -m repro.analysis.lint``).

Rules
-----
REP001  no unseeded/ambient RNG (``np.random.default_rng()`` with no seed,
        the stdlib ``random`` module, ``np.random.seed`` / legacy samplers)
        outside ``util/rng.py``.  Pragma: ``# lint: allow-rng``.
REP002  spec dataclasses (``Scenario``, ``*Spec``, ``DesignSpace``,
        ``Requirements``, ...) must be frozen, free of mutable defaults,
        and carry only JSON-able field types.
        Pragma: ``# lint: allow-spec-field``.
REP003  every ``raise`` constructs a ``ReproError`` subclass (bare
        re-raise and stdlib exceptions inside ``util/`` are allowed).
        Pragma: ``# lint: allow-raise``.
REP004  no float ``==`` / ``!=`` except against the literal sentinels
        ``0.0`` / ``1.0``.  Pragma: ``# lint: allow-float-eq``.
REP005  internal modules must not import the deprecated top-level shims.
        Pragma: ``# lint: allow-shim-import``.
REP006  no wall-clock reads (``time.time``, ``datetime.now``, ...) outside
        the provenance modules; ``perf_counter`` is always fine.
        Pragma: ``# lint: allow-wall-clock``.
REP007  no direct ``open()``/``read_text``/``write_text`` on run-registry
        files (``runs.jsonl``, ``runs.quarantine.jsonl``,
        ``runs.index.sqlite``, the ``records_path``/``quarantine_path``
        attributes) outside ``runs/registry.py`` and ``runs/index.py`` —
        every append must go through the canonical O_APPEND writer and
        every read through the registry/index APIs.
        Pragma: ``# lint: allow-registry-open``.
REP201-REP204  concurrency rules over the interprocedural effect
        analysis (blocking-in-async, contended shared globals, await
        under a sync lock, dropped coroutines) — see
        :mod:`repro.analysis.concurrency` for the rule text and pragmas.

Options: ``--rules REP001,REP2xx`` selects rules (exact ids or a
``REPn*``/``REPnxx`` prefix wildcard), ``--json`` emits a machine-readable
findings report, ``--list-rules`` prints the catalog with each rule's
pragma.  The linter is stdlib-only (``ast`` + ``re``) so it can gate CI
before any third-party dependency is importable.  Exit codes: 0 clean,
1 findings, 2 usage error.
"""

from __future__ import annotations

import ast
import builtins
import json as _json
import re
import sys
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..errors import __all__ as _ERROR_EXPORTS
from .findings import (
    ERROR,
    Finding,
    RULE_CATALOG,
    pragma_lines as _pragma_lines,
    render_findings,
)

__all__ = ["lint_file", "lint_paths", "lint_source", "main", "run_lint"]

# ---------------------------------------------------------------------------
# Pragmas: same-line ``# lint: tag1, tag2`` comments suppress specific rules.
# The grammar and the rule catalog live in .findings (shared with the
# concurrency pass); this view keeps the per-file rules' lookups local.

_PRAGMA_FOR_RULE = {
    rule: entry.pragma
    for rule, entry in RULE_CATALOG.items()
    if rule.startswith("REP0") and entry.pragma != "-"
}

# The rules each pass can emit (REP000 surfaces regardless of selection).
_FILE_RULES = frozenset(_PRAGMA_FOR_RULE)
_CONCURRENCY_RULES = frozenset({"REP201", "REP202", "REP203", "REP204"})

# ---------------------------------------------------------------------------
# Rule data.

# REP001 — legacy ambient numpy samplers (module-level global state).
_LEGACY_NP_SAMPLERS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "exponential",
        "poisson",
        "binomial",
        "standard_normal",
        "RandomState",
    }
)
_STDLIB_RANDOM_FNS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "getrandbits",
    }
)

# REP002 — class names treated as serializable "spec" dataclasses.
_SPEC_CLASS_NAMES = frozenset({"Scenario", "Requirements"})
_SPEC_SUFFIXES = ("Spec", "Space")
# Annotation atoms considered JSON-able (containers of these are too).
_JSONABLE_NAMES = frozenset(
    {
        "int",
        "float",
        "str",
        "bool",
        "None",
        "Any",
        "tuple",
        "list",
        "dict",
        "Tuple",
        "List",
        "Dict",
        "Mapping",
        "MutableMapping",
        "Sequence",
        "Iterable",
        "Optional",
        "Union",
        "ClassVar",
        "Literal",
        "Final",
    }
)

# REP003 — exception names always acceptable to raise anywhere.
_ALWAYS_OK_RAISES = frozenset(
    set(_ERROR_EXPORTS)
    | {"NotImplementedError", "SystemExit", "StopIteration", "KeyboardInterrupt"}
)

# REP005 — deprecated top-level shims (see repro/__init__.py).
_DEPRECATED_SHIMS = frozenset(
    {
        "latency_sweep",
        "load_grid_to_saturation",
        "saturation_injection_rate",
        "saturation_flit_load",
        "run_replications",
        "simulated_latency_curve",
        "explore",
    }
)

# REP006 — wall-clock call chains (suffix match on the dotted chain).
_WALL_CLOCK_TAILS = (
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)
# Provenance modules where stamping wall-clock time is the point:
# runs.result stamps record creation, obs.clock stamps trace files
# (every other observability timing is monotonic perf_counter).
_WALL_CLOCK_MODULES = frozenset({"runs.result", "obs.clock"})

# Modules where REP001 does not apply (the sanctioned RNG home).
_RNG_MODULES = frozenset({"util.rng"})

# REP007 — file-access call tails that can bypass the registry writers.
_REGISTRY_OPEN_TAILS = frozenset(
    {"open", "read_text", "write_text", "read_bytes", "write_bytes"}
)
# Registry file names: a string literal mentioning one of these inside an
# open-style call addresses registry storage directly.
_REGISTRY_FILE_NAMES = ("runs.jsonl", "runs.quarantine.jsonl", "runs.index.sqlite")
# Registry path attributes (RunRegistry.records_path / .quarantine_path).
_REGISTRY_PATH_ATTRS = frozenset({"records_path", "quarantine_path"})
# The two modules that own the storage layer.
_REGISTRY_FILE_MODULES = frozenset({"runs.registry", "runs.index"})


def _module_of(path: Path) -> str:
    """Dotted module path inside the ``repro`` package, or '' if outside.

    Files outside a ``repro`` package tree get no allowlists, so fixture
    snippets in temporary directories exercise every rule.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            tail = [p for p in parts[i + 1 :]]
            if not tail:
                return ""
            tail[-1] = tail[-1].removesuffix(".py")
            if tail[-1] == "__init__":
                tail = tail[:-1]
            return ".".join(tail)
    return ""


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    """Dotted name chain of a Name/Attribute expression, else ()."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.module = _module_of(path)
        self.pragmas = _pragma_lines(source)
        self.findings: list[Finding] = []

    # -- helpers ------------------------------------------------------------

    def _allowed(self, rule: str, lineno: int) -> bool:
        return _PRAGMA_FOR_RULE[rule] in self.pragmas.get(lineno, frozenset())

    def _report(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self._allowed(rule, lineno):
            return
        self.findings.append(
            Finding(
                rule=rule,
                severity=ERROR,
                message=message,
                path=str(self.path),
                line=lineno,
                hint=hint,
            )
        )

    def _in_util(self) -> bool:
        return self.module == "util" or self.module.startswith("util.")

    # -- REP001 / REP005 / REP006: calls and attribute access ---------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            self._check_rng_call(node, chain)
            self._check_wall_clock(node, chain)
        self._check_registry_open(node)
        self.generic_visit(node)

    def _check_registry_open(self, node: ast.Call) -> None:
        if self.module in _REGISTRY_FILE_MODULES:
            return
        # The attr chain is empty for computed receivers like
        # ``(path / "runs.jsonl").read_text()``; take the call name from
        # the Attribute/Name node directly so those are covered too.
        func = node.func
        if isinstance(func, ast.Attribute):
            tail = func.attr
        elif isinstance(func, ast.Name):
            tail = func.id
        else:
            return
        if tail not in _REGISTRY_OPEN_TAILS:
            return
        # The whole call — receiver chain and arguments — is searched for
        # registry markers, so `registry.records_path.open("a")` and
        # `open(path / "runs.jsonl")` are both caught.
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr in _REGISTRY_PATH_ATTRS:
                marker = sub.attr
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str) and any(
                name in sub.value for name in _REGISTRY_FILE_NAMES
            ):
                marker = sub.value
            else:
                continue
            self._report(
                "REP007",
                node,
                f"direct {tail}() on registry storage ({marker!r})",
                "go through RunRegistry.save/query or RunIndex — the JSONL "
                "writer and index must stay the only storage accessors",
            )
            return

    def _check_rng_call(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        if self.module in _RNG_MODULES:
            return
        if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            tail = chain[2]
            if tail == "default_rng" and not node.args and not node.keywords:
                self._report(
                    "REP001",
                    node,
                    "np.random.default_rng() without a seed is ambient randomness",
                    "pass an explicit seed or use util.rng.spawn_seeds",
                )
            elif tail == "seed":
                self._report(
                    "REP001",
                    node,
                    "np.random.seed mutates global RNG state",
                    "use a seeded np.random.default_rng(seed) instance",
                )
            elif tail in _LEGACY_NP_SAMPLERS:
                self._report(
                    "REP001",
                    node,
                    f"legacy ambient sampler np.random.{tail}",
                    "draw from a seeded np.random.default_rng(seed) instance",
                )
        elif len(chain) == 2 and chain[0] == "random" and chain[1] in _STDLIB_RANDOM_FNS:
            self._report(
                "REP001",
                node,
                f"stdlib random.{chain[1]} uses unseeded process-global state",
                "use a seeded np.random.default_rng(seed) instance",
            )

    def _check_wall_clock(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        if self.module in _WALL_CLOCK_MODULES:
            return
        for tail in _WALL_CLOCK_TAILS:
            if chain[-len(tail) :] == tail:
                self._report(
                    "REP006",
                    node,
                    f"wall-clock read {'.'.join(chain)} in a solver/model path",
                    "use time.perf_counter for durations; inject a clock for stamps",
                )
                return

    def visit_Import(self, node: ast.Import) -> None:
        if self.module not in _RNG_MODULES:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    self._report(
                        "REP001",
                        node,
                        "stdlib random module uses unseeded process-global state",
                        "use a seeded np.random.default_rng(seed) instance",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            if self.module not in _RNG_MODULES:
                self._report(
                    "REP001",
                    node,
                    "stdlib random module uses unseeded process-global state",
                    "use a seeded np.random.default_rng(seed) instance",
                )
        if self._resolves_to_repro_root(node):
            shims = sorted(
                alias.name for alias in node.names if alias.name in _DEPRECATED_SHIMS
            )
            if shims:
                self._report(
                    "REP005",
                    node,
                    f"import of deprecated top-level shim(s): {', '.join(shims)}",
                    "import the replacement from repro.runs / repro.design directly",
                )
        self.generic_visit(node)

    def _resolves_to_repro_root(self, node: ast.ImportFrom) -> bool:
        if node.level == 0:
            return node.module == "repro"
        # Relative import: resolve against this file's package depth.
        if not self.module:
            return False
        pkg_parts = self.module.split(".")[:-1] if "." in self.module else []
        # level=1 -> current package, level=2 -> parent, ...
        hops = node.level - 1
        if hops > len(pkg_parts):
            base: list[str] = []
        else:
            base = pkg_parts[: len(pkg_parts) - hops]
        target = base + (node.module.split(".") if node.module else [])
        return target == []  # '' means the repro package root itself

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _attr_chain(node)
        if len(chain) == 2 and chain[0] == "repro" and chain[1] in _DEPRECATED_SHIMS:
            self._report(
                "REP005",
                node,
                f"use of deprecated top-level shim repro.{chain[1]}",
                "call the replacement in repro.runs / repro.design directly",
            )
        self.generic_visit(node)

    # -- REP002: spec dataclasses -------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_spec_name(node.name):
            dc = self._dataclass_decorator(node)
            if dc is not None:
                self._check_spec_dataclass(node, dc)
        self.generic_visit(node)

    @staticmethod
    def _is_spec_name(name: str) -> bool:
        return name in _SPEC_CLASS_NAMES or name.endswith(_SPEC_SUFFIXES)

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            chain = _attr_chain(target)
            if chain and chain[-1] == "dataclass":
                return dec
        return None

    def _check_spec_dataclass(self, node: ast.ClassDef, dec: ast.expr) -> None:
        frozen = False
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                    frozen = bool(kw.value.value)
        if not frozen:
            self._report(
                "REP002",
                node,
                f"spec dataclass {node.name} must be declared frozen=True",
                "use @dataclass(frozen=True) so specs stay hashable value objects",
            )
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            field_name = f"{node.name}.{stmt.target.id}"
            if self._is_classvar(stmt.annotation):
                continue
            if stmt.value is not None and self._mutable_default(stmt.value):
                self._report(
                    "REP002",
                    stmt,
                    f"{field_name} has a mutable default",
                    "use field(default_factory=...) or an immutable value",
                )
            if not self._jsonable_annotation(stmt.annotation):
                self._report(
                    "REP002",
                    stmt,
                    f"{field_name} has a non-JSON-able annotation "
                    f"{ast.unparse(stmt.annotation)}",
                    "specs must round-trip through to_json/from_json",
                )

    @staticmethod
    def _is_classvar(annotation: ast.expr) -> bool:
        target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        chain = _attr_chain(target)
        return bool(chain) and chain[-1] == "ClassVar"

    def _mutable_default(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain and chain[-1] == "field":
                for kw in value.keywords:
                    if kw.arg == "default" and self._mutable_default(kw.value):
                        return True
                return False
            if chain and chain[-1] in ("list", "dict", "set", "bytearray"):
                return True
        return False

    def _jsonable_annotation(self, annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Constant):
            if annotation.value is None or annotation.value is Ellipsis:
                return True
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return False
                return self._jsonable_annotation(parsed)
            return False
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            chain = _attr_chain(annotation)
            if not chain:
                return False
            name = chain[-1]
            return name in _JSONABLE_NAMES or name.endswith(_SPEC_SUFFIXES)
        if isinstance(annotation, ast.Subscript):
            if not self._jsonable_annotation(annotation.value):
                return False
            inner = annotation.slice
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            return all(self._jsonable_annotation(e) for e in elts)
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self._jsonable_annotation(annotation.left) and self._jsonable_annotation(
                annotation.right
            )
        return False

    # -- REP003: raise discipline -------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        self.generic_visit(node)
        exc = node.exc
        if exc is None:
            return  # bare re-raise
        target = exc.func if isinstance(exc, ast.Call) else exc
        chain = _attr_chain(target)
        if not chain:
            return  # raising a computed expression: treat as re-raise
        name = chain[-1]
        if not isinstance(exc, ast.Call) and not _is_builtin_exception(name) and name not in _ALWAYS_OK_RAISES:
            return  # `raise err` style re-raise of a bound variable
        if name in _ALWAYS_OK_RAISES:
            return
        if self._in_util() and _is_builtin_exception(name):
            return
        self._report(
            "REP003",
            node,
            f"raise of {name} outside the ReproError taxonomy",
            "raise a repro.errors.ReproError subclass (e.g. ConfigurationError)",
        )

    # -- REP004: float equality ---------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (operands[i], operands[i + 1]):
                value = self._float_literal(operand)
                if value is not None and value not in (0.0, 1.0):
                    self._report(
                        "REP004",
                        node,
                        f"float equality against literal {value!r}",
                        "compare with a tolerance (math.isclose / util.validation)",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _float_literal(node: ast.expr) -> float | None:
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        ):
            sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
            return sign * node.operand.value
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node.value
        return None


# ---------------------------------------------------------------------------
# Drivers.


def lint_source(source: str, path: Path | str) -> list[Finding]:
    """Lint one Python source string as if it lived at ``path``."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="REP000",
                severity=ERROR,
                message=f"syntax error: {exc.msg}",
                path=str(path),
                line=exc.lineno or 0,
                hint="file must parse before invariants can be checked",
            )
        ]
    linter = _FileLinter(path, source)
    linter.visit(tree)
    return sorted(linter.findings, key=Finding.sort_key)


def lint_file(path: Path | str) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path)


def _iter_python_files(paths: Sequence[Path | str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths(paths: Sequence[Path | str]) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for path in _iter_python_files(paths):
        findings.extend(lint_file(path))
    return sorted(findings, key=Finding.sort_key)


# ---------------------------------------------------------------------------
# Rule selection and the combined (file + concurrency) run.

_PREFIX_TOKEN_RE = re.compile(r"(REP\d+)(?:XX|\*)?", re.IGNORECASE)


def parse_rules(spec: str) -> frozenset[str]:
    """Expand a ``--rules`` value into concrete rule ids.

    Accepts exact ids (``REP001``) and prefix wildcards (``REP2xx`` or
    ``REP2*`` select every catalog rule starting ``REP2``).  Raises
    :class:`~repro.errors.ConfigurationError` on a token matching nothing.
    """
    selected: set[str] = set()
    for raw in spec.split(","):
        token = raw.strip().upper()
        if not token:
            continue
        if token in RULE_CATALOG:
            selected.add(token)
            continue
        m = _PREFIX_TOKEN_RE.fullmatch(token)
        matches = (
            {r for r in RULE_CATALOG if r.startswith(m.group(1))} if m else set()
        )
        if not matches:
            known = ", ".join(sorted(RULE_CATALOG))
            raise ConfigurationError(
                f"unknown rule {raw.strip()!r} (known: {known})"
            )
        selected.update(matches)
    if not selected:
        raise ConfigurationError("--rules selected nothing")
    return frozenset(selected)


def run_lint(
    paths: Sequence[Path | str], *, rules: frozenset[str] | None = None
) -> list[Finding]:
    """File-local rules plus the concurrency pass, filtered to ``rules``.

    ``rules=None`` runs everything this driver owns (REP0xx + REP2xx;
    the REP1xx model rules live in ``repro check``'s pre-solve analyzer).
    A pass only runs when one of its rules is selected, so
    ``--rules REP001`` skips the call-graph build entirely.
    """
    findings: list[Finding] = []
    if rules is None or rules & _FILE_RULES or "REP000" in (rules or ()):
        file_findings = lint_paths(paths)
        if rules is not None:
            file_findings = [
                f for f in file_findings if f.rule in rules or f.rule == "REP000"
            ]
        findings.extend(file_findings)
    if rules is None or rules & _CONCURRENCY_RULES:
        from .concurrency import analyze_concurrency

        conc_rules = sorted(
            _CONCURRENCY_RULES if rules is None else rules & _CONCURRENCY_RULES
        )
        findings.extend(analyze_concurrency(paths, rules=conc_rules))
    return sorted(findings, key=Finding.sort_key)


def report_json(paths: Sequence[str], rules: frozenset[str] | None, findings: list[Finding]) -> str:
    """The ``--json`` findings report (one stable, machine-readable object)."""
    checked = sorted(
        (_FILE_RULES | _CONCURRENCY_RULES | {"REP000"}) if rules is None else rules
    )
    return _json.dumps(
        {
            "paths": list(paths),
            "rules": checked,
            "count": len(findings),
            "findings": [f.to_json() for f in findings],
        },
        indent=2,
        sort_keys=True,
    )


def list_rules() -> str:
    """The ``--list-rules`` table: id, pragma, one-line description."""
    lines = [f"{'RULE':8} {'PRAGMA':22} DESCRIPTION"]
    for rule, entry in RULE_CATALOG.items():
        lines.append(f"{rule:8} {entry.pragma:22} {entry.summary}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "--list-rules" in args:
        print(list_rules())
        return 0
    if not args or any(a in ("-h", "--help") for a in args):
        print(__doc__)
        print(
            "usage: python -m repro.analysis.lint"
            " [--rules REP001,REP2xx] [--json] [--list-rules] PATH [PATH ...]"
        )
        return 0 if args else 2
    json_out = "--json" in args
    args = [a for a in args if a != "--json"]
    rules: frozenset[str] | None = None
    if "--rules" in args:
        at = args.index("--rules")
        if at + 1 >= len(args):
            print("error: --rules needs a value", file=sys.stderr)
            return 2
        try:
            rules = parse_rules(args[at + 1])
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        del args[at : at + 2]
    if not args:
        print("error: no paths given", file=sys.stderr)
        return 2
    missing = [a for a in args if not Path(a).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = run_lint(args, rules=rules)
    if json_out:
        print(report_json(args, rules, findings))
        return 1 if findings else 0
    if findings:
        print(render_findings(findings))
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
