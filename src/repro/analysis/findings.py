"""Typed findings shared by the code linter and the pre-solve analyzer.

A :class:`Finding` locates one violated invariant.  Code-level rules
(REP001..REP006) anchor to a ``path``/``line``; model-level rules
(REP101..REP104) anchor to a ``channel`` (a canonical link or stage
reference such as ``up:1:3`` or ``pool12``).  Every finding carries a fix
``hint`` so the report is actionable without reading the rule catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError

__all__ = ["ERROR", "WARNING", "Finding", "render_findings"]

ERROR = "error"
WARNING = "warning"

_SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One violated invariant, located in code or in the channel graph."""

    rule: str
    severity: str
    message: str
    path: str | None = None
    line: int | None = None
    channel: str | None = None
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ConfigurationError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    @property
    def location(self) -> str:
        """Human-readable anchor: ``path:line``, ``channel``, or ``-``."""
        if self.path is not None:
            return f"{self.path}:{self.line}" if self.line is not None else self.path
        if self.channel is not None:
            return self.channel
        return "-"

    def render(self) -> str:
        text = f"{self.location}: {self.severity}: {self.rule}: {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.path is not None:
            out["path"] = self.path
        if self.line is not None:
            out["line"] = self.line
        if self.channel is not None:
            out["channel"] = self.channel
        if self.hint:
            out["hint"] = self.hint
        return out

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path or "", self.line or 0, self.channel or "", self.rule)


def render_findings(findings: list[Finding] | tuple[Finding, ...]) -> str:
    """Render findings one per line, sorted by location then rule."""
    ordered = sorted(findings, key=Finding.sort_key)
    return "\n".join(f.render() for f in ordered)
