"""Typed findings shared by the code linter and the pre-solve analyzer.

A :class:`Finding` locates one violated invariant.  Code-level rules
(REP001..REP007) and concurrency rules (REP201..REP204) anchor to a
``path``/``line``; model-level rules (REP101..REP104) anchor to a
``channel`` (a canonical link or stage reference such as ``up:1:3`` or
``pool12``).  Every finding carries a fix ``hint`` so the report is
actionable without reading the rule catalog.

This module also owns the shared rule catalog (:data:`RULE_CATALOG`) and
the pragma grammar: a same-line ``# lint: <tag>[, <tag>...]`` comment
suppresses the rules whose pragma tags it names
(:func:`pragma_lines` parses a source file into that map).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Rule",
    "RULE_CATALOG",
    "pragma_lines",
    "render_findings",
]

ERROR = "error"
WARNING = "warning"

_SEVERITIES = (ERROR, WARNING)

_PRAGMA_RE = re.compile(r"#\s*lint:\s*([a-zA-Z0-9_,\- ]+)")


def pragma_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number → suppression tags for every pragma comment."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if m:
            tags = frozenset(t.strip() for t in m.group(1).split(",") if t.strip())
            out[lineno] = tags
    return out


@dataclass(frozen=True)
class Rule:
    """One catalog entry: id, suppression pragma, one-line description."""

    rule: str
    pragma: str
    summary: str


# Every rule either pass can emit, in catalog order.  ``--list-rules``
# renders this table; rule selection (``--rules REP001,REP2xx``) validates
# against it.  Model-level rules (REP1xx) have no pragma: they anchor to
# channels, not source lines.
RULE_CATALOG: dict[str, Rule] = {
    r.rule: r
    for r in (
        Rule("REP000", "-", "file must parse before any invariant can be checked"),
        Rule("REP001", "allow-rng", "no unseeded/ambient RNG outside util/rng.py"),
        Rule(
            "REP002",
            "allow-spec-field",
            "spec dataclasses must be frozen, mutable-default-free, JSON-able",
        ),
        Rule("REP003", "allow-raise", "raises must use ReproError subclasses"),
        Rule(
            "REP004",
            "allow-float-eq",
            "no float ==/!= against non-sentinel literals (0.0/1.0 ok)",
        ),
        Rule(
            "REP005", "allow-shim-import", "no deprecated top-level shim imports"
        ),
        Rule(
            "REP006",
            "allow-wall-clock",
            "no wall-clock reads outside the provenance modules",
        ),
        Rule(
            "REP007",
            "allow-registry-open",
            "no direct file access to run-registry storage outside its owners",
        ),
        Rule(
            "REP101",
            "-",
            "flow conservation on the channel graph (pre-solve analyzer)",
        ),
        Rule("REP102", "-", "stage-graph structure checks (pre-solve analyzer)"),
        Rule("REP103", "-", "entry weights must sum to 1 (pre-solve analyzer)"),
        Rule("REP104", "-", "static stability rho<1 precondition (pre-solve analyzer)"),
        Rule(
            "REP201",
            "allow-blocking-async",
            "no blocking effect reachable from an async def body except "
            "through run_in_executor/asyncio.to_thread",
        ),
        Rule(
            "REP202",
            "allow-shared-state",
            "module-global mutable state written from thread-pool-reachable "
            "and main-path code must be lock-guarded",
        ),
        Rule(
            "REP203",
            "allow-await-in-lock",
            "no await inside a sync `with <lock>` critical section",
        ),
        Rule(
            "REP204",
            "allow-bare-coroutine",
            "coroutine call whose result is never awaited or scheduled",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One violated invariant, located in code or in the channel graph."""

    rule: str
    severity: str
    message: str
    path: str | None = None
    line: int | None = None
    channel: str | None = None
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ConfigurationError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    @property
    def location(self) -> str:
        """Human-readable anchor: ``path:line``, ``channel``, or ``-``."""
        if self.path is not None:
            return f"{self.path}:{self.line}" if self.line is not None else self.path
        if self.channel is not None:
            return self.channel
        return "-"

    def render(self) -> str:
        text = f"{self.location}: {self.severity}: {self.rule}: {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.path is not None:
            out["path"] = self.path
        if self.line is not None:
            out["line"] = self.line
        if self.channel is not None:
            out["channel"] = self.channel
        if self.hint:
            out["hint"] = self.hint
        return out

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path or "", self.line or 0, self.channel or "", self.rule)


def render_findings(findings: list[Finding] | tuple[Finding, ...]) -> str:
    """Render findings one per line, sorted by location then rule."""
    ordered = sorted(findings, key=Finding.sort_key)
    return "\n".join(f.render() for f in ordered)
