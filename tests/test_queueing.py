"""Tests for the queueing substrate (Eqs. 4-8 and their exact references)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.queueing import (
    ScvMode,
    ServiceTime,
    erlang_c,
    hokstad_mg2_waiting_time,
    md1_waiting_time,
    mg1_utilization,
    mg1_waiting_time,
    mg1_waiting_time_wormhole,
    mgm_waiting_time,
    mgm_waiting_time_wormhole,
    mm1_waiting_time,
    mmc_waiting_time,
    scv_draper_ghosh,
    scv_for_mode,
)


class TestScv:
    def test_zero_load_is_deterministic(self):
        # At zero contention the service time equals the message length and
        # the Draper-Ghosh SCV collapses to zero (Eq. 5).
        assert scv_draper_ghosh(16.0, 16) == 0.0

    def test_increases_with_blocking(self):
        assert scv_draper_ghosh(32.0, 16) > scv_draper_ghosh(20.0, 16)

    def test_bounded_below_one(self):
        # (x - L)^2 / x^2 < 1 for any finite x > 0.
        assert scv_draper_ghosh(1e9, 16) < 1.0

    def test_exact_value(self):
        # x = 2L: SCV = (L/2L)^2 = 1/4.
        assert scv_draper_ghosh(32.0, 16) == pytest.approx(0.25)

    def test_clamps_below_message_length(self):
        assert scv_draper_ghosh(10.0, 16) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            scv_draper_ghosh(0.0, 16)
        with pytest.raises(ConfigurationError):
            scv_draper_ghosh(16.0, 0)

    @pytest.mark.parametrize(
        "mode,expected",
        [(ScvMode.DETERMINISTIC, 0.0), (ScvMode.EXPONENTIAL, 1.0)],
    )
    def test_fixed_modes(self, mode, expected):
        assert scv_for_mode(mode, 37.0, 16) == expected

    def test_mode_draper_ghosh(self):
        assert scv_for_mode(ScvMode.DRAPER_GHOSH, 32.0, 16) == pytest.approx(0.25)

    def test_service_time_variance(self):
        s = ServiceTime(mean=10.0, scv=0.25)
        assert s.variance == pytest.approx(25.0)

    def test_service_time_wormhole_factory(self):
        s = ServiceTime.wormhole(32.0, 16)
        assert s.scv == pytest.approx(0.25)

    def test_service_time_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceTime(mean=0.0)
        with pytest.raises(ConfigurationError):
            ServiceTime(mean=1.0, scv=-0.1)


class TestMg1:
    def test_zero_arrivals_zero_wait(self):
        assert mg1_waiting_time(0.0, 16.0, 0.5) == 0.0

    def test_matches_mm1_with_exponential_scv(self):
        lam, x = 0.03, 16.0
        assert mg1_waiting_time(lam, x, 1.0) == pytest.approx(mm1_waiting_time(lam, x))

    def test_matches_md1_with_zero_scv(self):
        lam, x = 0.04, 20.0
        assert mg1_waiting_time(lam, x, 0.0) == pytest.approx(md1_waiting_time(lam, x))

    def test_saturation_returns_inf(self):
        assert math.isinf(mg1_waiting_time(0.1, 10.0))
        assert math.isinf(mg1_waiting_time(0.11, 10.0))

    def test_monotone_in_rate(self):
        waits = [mg1_waiting_time(lam, 16.0, 0.3) for lam in (0.01, 0.02, 0.04, 0.06)]
        assert waits == sorted(waits)

    def test_monotone_in_scv(self):
        assert mg1_waiting_time(0.03, 16.0, 1.0) > mg1_waiting_time(0.03, 16.0, 0.0)

    def test_infinite_service_propagates(self):
        assert math.isinf(mg1_waiting_time(0.01, math.inf, 0.0))

    def test_wormhole_wrapper_consistent(self):
        # Eq. 6 == Eq. 4 with Eq. 5 substituted.
        lam, x, flits = 0.02, 24.0, 16
        direct = mg1_waiting_time(lam, x, scv_draper_ghosh(x, flits))
        assert mg1_waiting_time_wormhole(lam, x, flits) == pytest.approx(direct)

    def test_utilization(self):
        assert mg1_utilization(0.05, 10.0) == pytest.approx(0.5)

    def test_rejects_negative_scv(self):
        with pytest.raises(ConfigurationError):
            mg1_waiting_time(0.01, 16.0, -1.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            mg1_waiting_time(-0.01, 16.0)

    @given(
        lam=st.floats(0.0001, 0.05),
        x=st.floats(1.0, 19.0),
        scv=st.floats(0.0, 2.0),
    )
    @settings(max_examples=50)
    def test_property_nonnegative_and_finite_below_saturation(self, lam, x, scv):
        w = mg1_waiting_time(lam, x, scv)
        assert w >= 0.0
        assert math.isfinite(w)


class TestErlang:
    def test_single_server_equals_utilization(self):
        # For c=1 Erlang C reduces to rho.
        assert erlang_c(1, 0.3) == pytest.approx(0.3)

    def test_two_server_closed_form(self):
        # For c=2 the Erlang-C probability reduces to a^2 / (2 + a).
        a = 0.8
        assert erlang_c(2, a) == pytest.approx(a * a / (2 + a))

    def test_bounds(self):
        for c in (1, 2, 3, 5):
            for a in (0.1, 0.5 * c, 0.9 * c):
                p = erlang_c(c, a)
                assert 0.0 <= p <= 1.0

    def test_saturated_returns_one(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_zero_load(self):
        assert erlang_c(3, 0.0) == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            erlang_c(0, 0.5)
        with pytest.raises(ConfigurationError):
            erlang_c(2, -1.0)

    def test_mmc_wait_reduces_to_mm1(self):
        lam, x = 0.04, 16.0
        assert mmc_waiting_time(lam, x, 1) == pytest.approx(mm1_waiting_time(lam, x))

    def test_mm2_closed_form(self):
        # W_q(M/M/2) = a^2 x / (4 - a^2), a = lam * x.
        lam, x = 0.05, 16.0
        a = lam * x
        assert mmc_waiting_time(lam, x, 2) == pytest.approx(a * a * x / (4 - a * a))

    def test_more_servers_less_wait(self):
        lam, x = 0.08, 16.0
        w1 = mmc_waiting_time(lam, x, 2)
        w2 = mmc_waiting_time(lam, x, 3)
        w3 = mmc_waiting_time(lam, x, 4)
        assert w1 > w2 > w3 >= 0

    def test_mmc_saturation(self):
        assert math.isinf(mmc_waiting_time(0.2, 10.0, 2))


class TestHokstadMg2:
    def test_matches_paper_closed_form(self):
        # Eq. 8 written out explicitly.
        lam, x, flits = 0.06, 20.0, 16
        scv = scv_draper_ghosh(x, flits)
        expected = lam**2 * x**3 / (2 * (4 - lam**2 * x**2)) * (1 + scv)
        assert hokstad_mg2_waiting_time(lam, x, scv) == pytest.approx(expected)

    def test_exact_for_exponential(self):
        # With C_b^2 = 1 the Hokstad form reproduces M/M/2 exactly.
        lam, x = 0.07, 15.0
        assert hokstad_mg2_waiting_time(lam, x, 1.0) == pytest.approx(
            mmc_waiting_time(lam, x, 2)
        )

    def test_general_m_matches_closed_form_for_two(self):
        lam, x, scv = 0.06, 18.0, 0.4
        assert mgm_waiting_time(lam, x, 2, scv) == pytest.approx(
            hokstad_mg2_waiting_time(lam, x, scv)
        )

    def test_general_m_matches_pk_for_one(self):
        lam, x, scv = 0.03, 18.0, 0.4
        assert mgm_waiting_time(lam, x, 1, scv) == pytest.approx(
            mg1_waiting_time(lam, x, scv)
        )

    def test_saturation_at_two(self):
        assert math.isinf(hokstad_mg2_waiting_time(0.2, 10.0))
        assert math.isinf(mgm_waiting_time(0.2, 10.0, 2, 0.0))

    def test_zero_rate(self):
        assert hokstad_mg2_waiting_time(0.0, 10.0, 0.3) == 0.0

    def test_wormhole_wrapper(self):
        lam, x, flits = 0.05, 24.0, 16
        expected = mgm_waiting_time(lam, x, 2, scv_draper_ghosh(x, flits))
        assert mgm_waiting_time_wormhole(lam, x, 2, flits) == pytest.approx(expected)

    def test_two_servers_beat_one(self):
        # A two-server channel fed twice the rate still beats two independent
        # single-server channels at their own rate (pooling gain).
        lam, x, scv = 0.04, 16.0, 0.2
        assert mgm_waiting_time(2 * lam, x, 2, scv) < mg1_waiting_time(lam, x, scv)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            hokstad_mg2_waiting_time(-0.1, 10.0)
        with pytest.raises(ConfigurationError):
            hokstad_mg2_waiting_time(0.1, -10.0)
        with pytest.raises(ConfigurationError):
            hokstad_mg2_waiting_time(0.1, 10.0, -0.5)

    @given(
        lam=st.floats(0.001, 0.11),
        x=st.floats(1.0, 17.0),
        scv=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50)
    def test_property_finite_below_saturation(self, lam, x, scv):
        w = hokstad_mg2_waiting_time(lam, x, scv)
        assert w >= 0.0
        assert math.isfinite(w)

    @given(m=st.integers(1, 6), lam=st.floats(0.001, 0.05), x=st.floats(1.0, 18.0))
    @settings(max_examples=50)
    def test_property_scv_scaling(self, m, lam, x):
        # The two-moment rule is linear in (1 + scv).
        w0 = mgm_waiting_time(lam, x, m, 0.0)
        w1 = mgm_waiting_time(lam, x, m, 1.0)
        assert w1 == pytest.approx(2.0 * w0, rel=1e-12)
