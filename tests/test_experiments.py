"""Smoke tests for the experiment harness (tiny configurations)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    ExperimentMode,
    full_mode,
    mode,
    poisson_trace,
    relative_error,
    run_ablations,
    run_crosscheck,
    run_fig3,
    run_other_networks,
    run_scaling,
    run_throughput_table,
    write_report,
)
from repro.core.variants import ModelVariant

TINY = ExperimentMode(full=False)


class TestCommon:
    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert math.isnan(relative_error(1.0, 0.0))
        assert math.isnan(relative_error(1.0, math.inf))
        assert math.isinf(relative_error(math.inf, 1.0))

    def test_mode_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_mode()
        assert mode().label == "quick"
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_mode()
        assert mode().label == "full"
        assert mode().replications == 3

    def test_write_report(self, tmp_path):
        p = write_report("unit", "hello", directory=tmp_path)
        assert p.read_text() == "hello\n"


class TestFig3:
    def test_small_instance(self):
        res = run_fig3(
            num_processors=16,
            message_lengths=(16,),
            n_points=3,
            experiment_mode=TINY,
        )
        assert len(res.series) == 1
        s = res.series[0]
        assert len(s.model.flit_loads) == 3
        # below-saturation agreement on this tiny instance
        assert s.mean_abs_error_below() < 0.15
        out = res.render()
        assert "Figure 3" in out and "Summary" in out

    def test_rows_structure(self):
        res = run_fig3(
            num_processors=16, message_lengths=(16,), n_points=3, experiment_mode=TINY
        )
        rows = res.series[0].rows()
        assert all(len(r) == 5 for r in rows)
        assert all(r[0] == 16 for r in rows)


class TestThroughputTable:
    def test_small_instance(self):
        res = run_throughput_table(
            sizes=(16,), message_lengths=(16,), experiment_mode=TINY
        )
        assert len(res.rows) == 1
        row = res.rows[0]
        assert row.model_saturation > 0
        assert row.sim_saturation > 0
        # Model is conservative; sim saturation within a broad band.
        assert 0.7 < row.sim_saturation / row.model_saturation < 1.8
        assert "Saturation" in res.render()


class TestScaling:
    def test_small_instance(self):
        res = run_scaling(sizes=(16, 64), experiment_mode=TINY)
        assert len(res.rows) == 6
        finite = [r for r in res.rows if math.isfinite(r.sim_latency)]
        assert len(finite) == 6
        for r in finite:
            assert abs(r.rel_err) < 0.12
        assert "Scaling" in res.render()


class TestAblations:
    def test_paper_variant_wins(self):
        res = run_ablations(
            num_processors=64,
            message_flits=16,
            n_points=4,
            experiment_mode=TINY,
        )
        by_name = {r.variant: r for r in res.rows}
        assert by_name["paper"].mean_abs_err < by_name["no-multiserver"].mean_abs_err
        assert by_name["paper"].mean_abs_err < by_name["naive"].mean_abs_err
        assert "ablations" in res.render().lower()

    def test_custom_variant_list(self):
        res = run_ablations(
            num_processors=64,
            message_flits=16,
            n_points=3,
            variants=(ModelVariant.paper(),),
            experiment_mode=TINY,
        )
        assert len(res.rows) == 1


class TestOtherNetworks:
    def test_general_model_beats_baseline(self):
        res = run_other_networks(dimension=5, experiment_mode=TINY)
        gen_errs = [abs(r.general_err) for r in res.hypercube_rows if math.isfinite(r.general_err)]
        base_errs = [abs(r.baseline_err) for r in res.hypercube_rows if math.isfinite(r.baseline_err)]
        assert sum(gen_errs) < sum(base_errs)
        assert "hypercube" in res.render()

    def test_torus_rows_present(self):
        res = run_other_networks(dimension=5, experiment_mode=TINY)
        assert len(res.torus_rows) == 3


class TestCrossCheck:
    def test_simulators_agree(self):
        res = run_crosscheck(sizes=(16,), flit_loads=(0.04,), experiment_mode=TINY)
        row = res.rows[0]
        assert row.event_delivered == row.flit_delivered
        assert abs(row.rel_diff) < 0.05
        assert "cross-validation" in res.render()

    def test_poisson_trace_properties(self):
        trace = poisson_trace(16, 0.01, 1000.0, seed=3)
        items = list(trace.arrivals(1000.0))
        assert all(a.src != a.dst for a in items)
        assert all(float(a.time).is_integer() for a in items)
