"""Tests for the Scenario→Run facade and the persistent run registry."""

from __future__ import annotations

import json
import math
import multiprocessing
import warnings

import numpy as np
import pytest

from repro.obs.metrics import METRICS

from repro.errors import ConfigurationError, RegistryError, SchemaVersionError
from repro.runs import (
    SCHEMA_VERSION,
    RunRegistry,
    RunResult,
    Runner,
    Scenario,
    diff_metrics,
    flatten_metrics,
    json_restore,
    json_safe,
    run,
)


def tiny_scenario(**overrides) -> Scenario:
    """A scenario small enough that every backend answers in well under a second."""
    defaults = dict(
        num_processors=16,
        message_flits=16,
        flit_load=0.04,
        sweep_points=4,
        replications=2,
        warmup_cycles=300.0,
        measure_cycles=1200.0,
        seed=11,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenario:
    def test_defaults_valid(self):
        sc = Scenario()
        assert sc.backend == "batch"
        assert sc.workload().flit_load == pytest.approx(0.02)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "nope"},
            {"topology": "mesh"},
            {"simulator": "quantum"},
            {"pattern": "zipf"},
            {"num_processors": 0},
            {"message_flits": -1},
            {"flit_load": -0.1},
            {"sweep_points": 1},
            {"sweep_fraction": 1.5},
            {"replications": 0},
            {"flit_loads": ()},
            {"flit_loads": (-0.1, 0.2)},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Scenario(**kwargs)

    def test_simulate_protocol_validated_eagerly(self):
        with pytest.raises(ConfigurationError):
            Scenario(backend="simulate", measure_cycles=0.0)

    def test_uniform_spec_is_none(self):
        assert Scenario().spec() is None

    def test_pattern_spec_built_with_params(self):
        sc = Scenario(pattern="hotspot", pattern_params={"hotspot_fraction": 0.2})
        spec = sc.spec()
        assert spec is not None and spec.name == "hotspot"

    def test_unknown_pattern_params_rejected_at_construction(self):
        # A plausible typo must fail eagerly and typed, not as a TypeError
        # traceback at run() time.
        with pytest.raises(ConfigurationError, match="pattern_params"):
            Scenario(pattern="hotspot", pattern_params={"fraction": 0.2})

    def test_with_backend(self):
        sc = Scenario(backend="batch")
        assert sc.with_backend("simulate").backend == "simulate"
        assert sc.backend == "batch"  # original untouched

    def test_round_trip(self):
        sc = tiny_scenario(pattern="transpose", flit_loads=(0.01, 0.02))
        assert Scenario.from_json(sc.to_json()) == sc

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"topology": "hypercube", "num_processors": 16},
            {"topology": "generalized-fattree", "num_processors": 16},
            {"topology": "generalized-fattree", "num_processors": 8,
             "children": 2, "parents": 3},
            {"topology": "kary-ncube", "num_processors": 27, "radix": 3},
        ],
    )
    def test_family_round_trip(self, kwargs):
        sc = tiny_scenario(**kwargs)
        assert Scenario.from_json(sc.to_json()) == sc


class TestScenarioFamilies:
    def test_family_params_derived(self):
        assert tiny_scenario().family_params() == {"processors": 16}
        sc = tiny_scenario(topology="generalized-fattree", num_processors=16)
        # The 4-2 defaults fill in and the height derives from N.
        assert (sc.children, sc.parents, sc.levels) == (4, 2, 2)
        assert sc.family_params() == {"children": 4, "parents": 2, "levels": 2}
        assert tiny_scenario(
            topology="hypercube", num_processors=16
        ).family_params() == {"dimension": 4}
        assert tiny_scenario(
            topology="kary-ncube", num_processors=16
        ).family_params() == {"radix": 4, "dimensions": 2}

    @pytest.mark.parametrize(
        "kwargs",
        [
            # Sizes the family cannot realize fail eagerly.
            {"topology": "bft", "num_processors": 32},
            {"topology": "hypercube", "num_processors": 12},
            {"topology": "generalized-fattree", "num_processors": 24},
            {"topology": "kary-ncube", "num_processors": 10},
            # Inconsistent explicit parameters.
            {"topology": "hypercube", "num_processors": 16, "dimension": 5},
            {"topology": "generalized-fattree", "num_processors": 16, "levels": 3},
            {"topology": "kary-ncube", "num_processors": 16, "radix": 3},
            # Parameters from another family are rejected, not ignored.
            {"topology": "bft", "num_processors": 16, "children": 4},
            {"topology": "hypercube", "num_processors": 16, "radix": 4},
            {"topology": "kary-ncube", "num_processors": 16, "dimension": 2},
            # Family-level constraints apply eagerly too.
            {"topology": "generalized-fattree", "num_processors": 1,
             "children": 2, "levels": 0},
            {"topology": "kary-ncube", "num_processors": 16, "radix": 1},
        ],
    )
    def test_invalid_family_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            tiny_scenario(**kwargs)

    def test_patterns_gated_to_pattern_aware_families(self):
        # bft and hypercube have pattern-aware channel graphs ...
        tiny_scenario(topology="hypercube", pattern="transpose")
        # ... the others reject non-uniform patterns at construction.
        for topology, n in (("generalized-fattree", 16), ("kary-ncube", 16)):
            with pytest.raises(ConfigurationError, match="pattern"):
                tiny_scenario(topology=topology, num_processors=n,
                              pattern="transpose")

    def test_describe_names_the_shape(self):
        text = tiny_scenario(
            topology="generalized-fattree", num_processors=8,
            children=2, parents=2,
        ).describe()
        assert "generalized-fattree" in text and "children=2" in text

    def test_from_json_rejects_unknown_fields(self):
        data = Scenario().to_json()
        data["frobnicate"] = 1
        with pytest.raises(ConfigurationError):
            Scenario.from_json(data)


class TestJsonCodec:
    def test_non_finite_floats_round_trip(self):
        original = {
            "a": math.inf,
            "b": -math.inf,
            "c": [1.5, math.nan],
            "d": {"nested": math.inf},
        }
        encoded = json_safe(original)
        # The encoded form must be strict JSON (no Infinity/NaN literals).
        json.loads(json.dumps(encoded, allow_nan=False))
        restored = json_restore(encoded)
        assert restored["a"] == math.inf
        assert restored["b"] == -math.inf
        assert math.isnan(restored["c"][1])
        assert restored["d"]["nested"] == math.inf

    def test_numpy_values_demoted(self):
        encoded = json_safe({"arr": np.array([1.0, 2.0]), "scalar": np.float64(3.5)})
        assert encoded == {"arr": [1.0, 2.0], "scalar": 3.5}

    def test_unserializable_rejected(self):
        with pytest.raises(ConfigurationError):
            json_safe({"bad": object()})


class TestRunResultSerialization:
    @pytest.mark.parametrize("backend", ["model", "batch", "simulate", "baseline"])
    def test_round_trip_equality_every_backend(self, backend):
        result = run(tiny_scenario(backend=backend))
        assert RunResult.from_json(result.to_json()) == result
        # And through the string form (the registry's on-disk record).
        assert RunResult.from_json(result.to_json_str()) == result

    def test_round_trip_preserves_inf_latencies(self):
        # An explicit grid reaching past saturation forces inf into the curve.
        result = run(tiny_scenario(backend="batch", flit_loads=(0.01, 5.0)))
        assert result.metrics["curve"]["latencies"][-1] == math.inf
        restored = RunResult.from_json(result.to_json())
        assert restored == result
        assert restored.metrics["curve"]["latencies"][-1] == math.inf

    def test_schema_version_bump_detected(self):
        result = run(tiny_scenario(backend="batch", sweep_points=0))
        data = result.to_json()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            RunResult.from_json(data)

    def test_missing_schema_version_detected(self):
        result = run(tiny_scenario(backend="batch", sweep_points=0))
        data = result.to_json()
        del data["schema_version"]
        with pytest.raises(SchemaVersionError):
            RunResult.from_json(data)

    @pytest.mark.parametrize("field", ["run_id", "created_at"])
    def test_structurally_incomplete_record_is_typed_error(self, field):
        result = run(tiny_scenario(backend="batch", sweep_points=0))
        data = result.to_json()
        del data[field]
        with pytest.raises(RegistryError, match=field):
            RunResult.from_json(data)

    def test_provenance_and_timings_stamped(self):
        result = run(tiny_scenario(backend="batch", sweep_points=0))
        assert result.provenance["backend"] == "batch"
        assert result.provenance["repro_version"]
        assert result.timings["total_s"] > 0.0
        assert result.run_id.startswith("run-")

    def test_bench_records_need_no_scenario(self):
        record = RunResult.for_metrics({"benches": {"x": {"median_s": 0.5}}})
        assert record.kind == "bench"
        assert RunResult.from_json(record.to_json()) == record

    def test_scenario_records_require_scenario(self):
        with pytest.raises(ConfigurationError):
            RunResult(metrics={}, scenario=None, kind="scenario")


class TestBackends:
    def test_model_and_batch_agree_exactly(self):
        sc = tiny_scenario(backend="model")
        a = run(sc)
        b = run(sc.with_backend("batch"))
        assert a.metrics["point"]["latency"] == b.metrics["point"]["latency"]
        np.testing.assert_array_equal(
            a.metrics["curve"]["latencies"], b.metrics["curve"]["latencies"]
        )
        assert a.metrics["saturation"]["flit_load"] == pytest.approx(
            b.metrics["saturation"]["flit_load"], rel=1e-5
        )

    def test_baseline_differs_from_model(self):
        sc = tiny_scenario(sweep_points=0)
        paper = run(sc)
        naive = run(sc.with_backend("baseline"))
        assert naive.metrics["variant"] != paper.metrics["variant"]
        assert naive.metrics["point"]["latency"] != paper.metrics["point"]["latency"]

    def test_simulate_produces_replication_set(self):
        result = run(tiny_scenario(backend="simulate"))
        reps = result.metrics["replications"]
        assert len(reps) == 2
        assert len({r["seed"] for r in reps}) == 2  # independently seeded
        point = result.metrics["point"]
        assert point["stable"] is True
        assert point["latency"] > 0
        # The analytical prediction rides along for crosschecks.
        assert point["model_prediction"] == pytest.approx(point["latency"], rel=0.25)

    def test_pattern_scenario_through_model_and_simulator(self):
        sc = tiny_scenario(pattern="transpose", sweep_points=0, flit_load=0.03)
        analytical = run(sc)
        measured = run(sc.with_backend("simulate"))
        assert analytical.metrics["point"]["latency"] > 0
        assert measured.metrics["point"]["latency"] > 0

    def test_no_curve_when_sweep_points_zero(self):
        assert run(tiny_scenario(sweep_points=0)).metrics["curve"] is None

    def test_explicit_grid_respected(self):
        grid = (0.01, 0.02, 0.03)
        result = run(tiny_scenario(backend="batch", flit_loads=grid))
        assert tuple(result.metrics["curve"]["flit_loads"]) == grid

    @pytest.mark.parametrize(
        "family",
        [
            {"topology": "bft", "num_processors": 16},
            {"topology": "generalized-fattree", "num_processors": 8,
             "children": 2, "parents": 2},
            {"topology": "hypercube", "num_processors": 16},
            {"topology": "kary-ncube", "num_processors": 9, "radix": 3},
        ],
    )
    def test_explicit_zero_grid_exact_on_both_engines(self, family):
        """The explicit-grid policy: a grid containing 0.0 is evaluated
        exactly as given — the exact zero-load latency, never the 2% floor
        the derived grids apply — and model/batch stay bit-identical."""
        grid = (0.0, 0.01, 0.02)
        sc = tiny_scenario(backend="model", flit_loads=grid, **family)
        a = run(sc)
        b = run(sc.with_backend("batch"))
        for record in (a, b):
            assert tuple(record.metrics["curve"]["flit_loads"]) == grid
        lat_a = a.metrics["curve"]["latencies"]
        lat_b = b.metrics["curve"]["latencies"]
        np.testing.assert_array_equal(lat_a, lat_b)
        # Zero load is the finite contention-free limit, not nan/inf,
        # and the curve rises from it.
        assert math.isfinite(lat_a[0])
        assert lat_a[0] < lat_a[-1]


class TestAcceptance:
    def test_one_scenario_four_backends_land_in_registry(self, tmp_path):
        """The PR's acceptance criterion: one Scenario answers as a latency
        sweep, a saturation search, a simulator replication set, and a
        baseline curve purely by switching backend, and all four records
        persist and round-trip losslessly."""
        registry = RunRegistry(tmp_path / "registry")
        runner = Runner(registry=registry)
        scenario = tiny_scenario(label="acceptance")
        results = {
            backend: runner.run(scenario.with_backend(backend))
            for backend in ("model", "batch", "simulate", "baseline")
        }
        # latency sweep (batch) ...
        assert len(results["batch"].metrics["curve"]["latencies"]) == 4
        # ... a saturation search (model, scalar reference engine) ...
        assert results["model"].metrics["saturation"]["flit_load"] > 0
        # ... a simulator replication set ...
        assert len(results["simulate"].metrics["replications"]) == 2
        # ... and a baseline curve.
        assert len(results["baseline"].metrics["curve"]["latencies"]) == 4

        assert len(registry) == 4
        for backend, result in results.items():
            loaded = registry.load(result.run_id)
            assert loaded == result, backend
            assert RunResult.from_json(result.to_json()) == result, backend
        assert {r.scenario.backend for r in registry.query(label="acceptance")} == {
            "model",
            "batch",
            "simulate",
            "baseline",
        }


class TestRegistry:
    def synthetic_trajectory(self, registry: RunRegistry) -> list[RunResult]:
        """Three fabricated records emulating a cross-PR perf trajectory."""
        records = []
        for i, latency in enumerate((21.0, 20.0, 18.5)):
            records.append(
                RunResult(
                    metrics={
                        "point": {"latency": latency, "flit_load": 0.02},
                        "saturation": {"flit_load": 0.30 + 0.01 * i},
                    },
                    scenario=Scenario(num_processors=16, message_flits=16),
                    label=f"pr-{i}",
                    created_at=1_000.0 + i,
                )
            )
            registry.save(records[-1])
        return records

    def test_save_load_query(self, tmp_path):
        registry = RunRegistry(tmp_path)
        records = self.synthetic_trajectory(registry)
        assert len(registry) == 3
        assert registry.ids() == [r.run_id for r in records]
        assert registry.load(records[1].run_id) == records[1]
        assert registry.load("latest") == records[-1]
        assert registry.latest() == records[-1]
        assert registry.query(label="pr-1") == [records[1]]
        assert registry.query(backend="batch") == records
        assert registry.query(backend="simulate") == []
        assert registry.query(num_processors=16, message_flits=16) == records
        assert registry.query(
            predicate=lambda r: r.metrics["point"]["latency"] < 20.5
        ) == records[1:]

    def test_load_missing_run_is_clean_error(self, tmp_path):
        registry = RunRegistry(tmp_path)
        with pytest.raises(RegistryError):
            registry.load("run-does-not-exist")
        with pytest.raises(RegistryError):
            registry.load("latest")

    def test_diff_on_synthetic_trajectory(self, tmp_path):
        registry = RunRegistry(tmp_path)
        records = self.synthetic_trajectory(registry)
        diff = registry.diff(records[0].run_id, records[2].run_id)
        deltas = {d.key: d for d in diff.deltas}
        assert deltas["point.latency"].delta == pytest.approx(-2.5)
        assert deltas["point.latency"].rel == pytest.approx(-2.5 / 21.0)
        assert deltas["saturation.flit_load"].delta == pytest.approx(0.02)
        assert "point.latency" in diff.render()

    def test_self_diff_empty_with_nan_and_inf_metrics(self, tmp_path):
        """Satellite regression: NaN leaves (legal post-saturation values)
        must not make a record diff unequal to itself."""
        registry = RunRegistry(tmp_path)
        record = RunResult(
            metrics={
                "point": {"latency": math.nan, "flit_load": 0.2},
                "curve": {"latencies": [20.0, math.inf, math.nan]},
            },
            scenario=Scenario(num_processors=16, message_flits=16),
        )
        registry.save(record)
        diff = registry.diff(record.run_id, record.run_id)
        assert diff.changed == ()
        assert diff.only_a == () and diff.only_b == ()
        assert diff.max_abs_rel == 0.0
        # Every self-compared leaf — nan and inf included — reports an
        # exact zero change, not nan (nan - nan) or inf arithmetic.
        assert all(d.delta == 0.0 and d.rel == 0.0 for d in diff.deltas)
        # A genuinely different value still shows up as changed.
        other = RunResult(
            metrics={
                "point": {"latency": 21.0, "flit_load": 0.2},
                "curve": {"latencies": [20.0, math.inf, math.nan]},
            },
            scenario=Scenario(num_processors=16, message_flits=16),
        )
        registry.save(other)
        changed = registry.diff(record.run_id, other.run_id).changed
        assert [d.key for d in changed] == ["point.latency"]

    def test_query_by_topology(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for topology, n in (("bft", 16), ("hypercube", 8)):
            registry.save(
                RunResult(
                    metrics={"point": {"latency": 20.0}},
                    scenario=Scenario(topology=topology, num_processors=n,
                                      message_flits=16),
                )
            )
        assert [
            r.scenario.topology for r in registry.query(topology="hypercube")
        ] == ["hypercube"]
        assert len(registry.query(topology="bft")) == 1
        assert registry.query(topology="kary-ncube") == []

    def test_diff_against_json_baseline_file(self, tmp_path):
        registry = RunRegistry(tmp_path)
        self.synthetic_trajectory(registry)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({"point": {"latency": 20.0}, "extra_metric": 1.0})
        )
        diff = registry.diff("latest", str(baseline))
        deltas = {d.key: d for d in diff.deltas}
        assert deltas["point.latency"].delta == pytest.approx(1.5)
        assert "extra_metric" in diff.only_b

    def test_schema_bumped_records_skipped_in_iteration(self, tmp_path):
        registry = RunRegistry(tmp_path)
        records = self.synthetic_trajectory(registry)
        alien = records[0].to_json()
        alien["schema_version"] = SCHEMA_VERSION + 7
        alien["run_id"] = "run-from-the-future"
        with registry.records_path.open("a") as fh:
            fh.write(json.dumps(alien) + "\n")
        assert len(registry) == 3  # iteration skips the alien record ...
        assert registry.skipped_versions == 1  # ... but reports it
        with pytest.raises(SchemaVersionError):  # direct load refuses it
            registry.load("run-from-the-future")

    def test_corrupt_line_is_skipped_and_counted(self, tmp_path):
        # A torn append must not take the readable records down with it:
        # iteration skips the bad line, counts it, and warns once; `doctor`
        # (tested in test_faults.py) reports and quarantines it.
        registry = RunRegistry(tmp_path)
        self.synthetic_trajectory(registry)
        with registry.records_path.open("a") as fh:
            fh.write("{not json\n")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert len(list(registry)) == 3
        assert registry.skipped_corrupt == 1
        assert len(caught) == 1


class TestFlatten:
    def test_nested_and_lists(self):
        flat = flatten_metrics(
            {"a": {"b": 1.0, "label": "x"}, "c": [2.0, {"d": 3.0}], "ok": True}
        )
        assert flat == {"a.b": 1.0, "c[0]": 2.0, "c[1].d": 3.0}

    def test_diff_metrics_rel_edge_cases(self):
        diff = diff_metrics(
            {"zero": 0.0, "inf": math.inf, "n": 2.0},
            {"zero": 0.0, "inf": math.inf, "n": 1.0},
        )
        by_key = {d.key: d for d in diff.deltas}
        assert by_key["zero"].rel == 0.0
        assert by_key["inf"].rel == 0.0
        assert by_key["n"].rel == pytest.approx(-0.5)
        assert diff.max_abs_rel == pytest.approx(0.5)

    def test_diff_reports_missing_leaves_of_any_type(self):
        # Satellite regression: a boolean or label leaf present on only
        # one side used to vanish from the report entirely (only numeric
        # leaves were flattened); it must show up as added/removed.
        diff = diff_metrics(
            {"x": {"flag": True, "v": 1.0}, "note": "tuned"},
            {"x": {"v": 2.0}, "extra": None},
        )
        assert "x.flag" in diff.only_a
        assert "note" in diff.only_a
        assert "extra" in diff.only_b
        # The numeric comparison itself is untouched by the fix.
        assert [d.key for d in diff.deltas] == ["x.v"]

    def test_diff_against_nan_is_undefined_not_infinite(self):
        # A censored simulate run can carry nan latencies; comparing a
        # finite baseline against nan must report "undefined", not ±inf.
        diff = diff_metrics(
            {"m": 20.0, "both": math.nan, "n": 1.0},
            {"m": math.nan, "both": math.nan, "n": 2.0},
        )
        by_key = {d.key: d for d in diff.deltas}
        assert math.isnan(by_key["m"].rel)
        assert by_key["both"].rel == 0.0
        assert diff.max_abs_rel == pytest.approx(1.0)  # nan never dominates
        # Rendering ranks the defined comparison first and nan last.
        rows = [l.strip() for l in diff.render().splitlines()]
        row_n = next(i for i, l in enumerate(rows) if l.startswith("n "))
        row_m = next(i for i, l in enumerate(rows) if l.startswith("m "))
        assert row_n < row_m


class TestDeprecationShims:
    def test_warns_exactly_once_per_call_site(self):
        import repro
        from repro import ButterflyFatTreeModel

        model = ButterflyFatTreeModel(16)
        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()
            warnings.simplefilter("default")
            for _ in range(3):
                repro.saturation_injection_rate(model, 16)  # one call site, thrice
            assert len(caught) == 1
            assert issubclass(caught[0].category, DeprecationWarning)
            assert "deprecated" in str(caught[0].message)
            repro.saturation_injection_rate(model, 16)  # a second call site
            assert len(caught) == 2

    def test_every_shimmed_entry_point_warns_and_delegates(self):
        import repro
        from repro.core import saturation_injection_rate as undecorated

        model = repro.ButterflyFatTreeModel(16)
        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()
            warnings.simplefilter("always")
            sat = repro.saturation_injection_rate(model, 16)
            grid = repro.load_grid_to_saturation(model, 16, n_points=4)
            curve = repro.latency_sweep(model, 16, grid)
            flit_load = repro.saturation_flit_load(model, 16)
        assert len(caught) == 4
        assert all(issubclass(w.category, DeprecationWarning) for w in caught)
        # The shims delegate to the real implementations.
        assert sat.injection_rate == undecorated(model, 16).injection_rate
        assert flit_load == pytest.approx(sat.flit_load)
        assert len(curve.latencies) == 4

    def test_home_module_imports_stay_warning_free(self):
        from repro.core import saturation_injection_rate
        from repro import ButterflyFatTreeModel

        model = ButterflyFatTreeModel(16)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            saturation_injection_rate(model, 16)
        assert caught == []


class TestRegistryScanMemo:
    """The incremental-read contract: ``registry.records_read`` counts line
    *parses*, so repeated reads of an unchanged registry parse nothing."""

    def save_n(self, registry: RunRegistry, n: int, start: int = 0) -> None:
        for i in range(start, start + n):
            registry.save(
                RunResult(
                    metrics={"point": {"latency": 20.0 + i}},
                    scenario=Scenario(num_processors=16, message_flits=16),
                    created_at=float(i + 1),
                )
            )

    def test_repeat_reads_parse_only_appended_lines(self, tmp_path):
        registry = RunRegistry(tmp_path)
        self.save_n(registry, 3)
        with METRICS.collect() as first:
            assert len(registry) == 3
        assert first.data["counters"]["registry.records_read"] == 3
        with METRICS.collect() as second:
            assert len(registry) == 3
            assert registry.latest() is not None
        # Two full iterations, zero parses: both served from the memo.
        assert "registry.records_read" not in second.data["counters"]
        assert second.data["counters"]["registry.scans"] == 2
        self.save_n(registry, 2, start=3)
        with METRICS.collect() as third:
            assert len(registry) == 5
        assert third.data["counters"]["registry.records_read"] == 2

    def test_fresh_instance_sees_everything(self, tmp_path):
        registry = RunRegistry(tmp_path)
        self.save_n(registry, 3)
        assert len(registry) == 3
        assert len(RunRegistry(tmp_path)) == 3

    def test_file_shrink_invalidates_memo(self, tmp_path):
        registry = RunRegistry(tmp_path)
        self.save_n(registry, 3)
        ids = registry.ids()
        assert len(ids) == 3
        # Rewrite the file keeping only the first record (a hand edit a
        # memoized offset must not survive).
        first_line = registry.records_path.read_text().splitlines()[0]
        registry.records_path.write_text(first_line + "\n")
        assert registry.ids() == ids[:1]

    def test_incomplete_trailing_line_not_memoized(self, tmp_path):
        registry = RunRegistry(tmp_path)
        self.save_n(registry, 1)
        in_flight = RunResult(
            metrics={"point": {"latency": 30.0}},
            scenario=Scenario(num_processors=16, message_flits=16),
            created_at=99.0,
        )
        with registry.records_path.open("a") as fh:
            fh.write(in_flight.to_json_str())  # no newline: append in flight
        # The torn tail is readable (best effort) but never cached ...
        assert len(registry) == 2
        with registry.records_path.open("a") as fh:
            fh.write("\n")
        # ... so once the newline lands, the completed line is re-read.
        with METRICS.collect() as telemetry:
            assert registry.ids().count(in_flight.run_id) == 1
        assert telemetry.data["counters"]["registry.records_read"] == 1

    def test_nested_iteration_keeps_memo_consistent(self, tmp_path):
        registry = RunRegistry(tmp_path)
        self.save_n(registry, 3)
        # A predicate that re-enters the registry mid-iteration (the
        # classic double-memoization hazard).
        rows = registry.query(predicate=lambda r: registry.latest() is not None)
        assert len(rows) == 3
        assert registry.ids() == [r.run_id for r in rows]  # no duplicates


def _stress_appender(path_str: str, worker: int, count: int) -> None:
    """Child-process body for the concurrent-append stress test."""
    registry = RunRegistry(path_str)
    scenario = Scenario(num_processors=16, message_flits=16)
    for i in range(count):
        registry.save(
            RunResult(
                metrics={
                    "worker": {"id": float(worker), "i": float(i)},
                    # Bulk the line up so a non-atomic append would tear.
                    "pad": {"blob": "x" * 2048},
                },
                scenario=scenario,
                label=f"w{worker}",
                created_at=float(worker * 1_000 + i + 1),
            )
        )


class TestConcurrentWriters:
    def test_parallel_processes_never_tear_lines(self, tmp_path):
        """Four appender processes sharing one registry: every record is a
        complete line (the O_APPEND single-write contract)."""
        workers, per_worker = 4, 50
        procs = [
            multiprocessing.Process(
                target=_stress_appender, args=(str(tmp_path), w, per_worker)
            )
            for w in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        registry = RunRegistry(tmp_path)
        records = list(registry)
        assert len(records) == workers * per_worker
        assert registry.skipped_corrupt == 0
        for w in range(workers):
            mine = [r for r in records if r.label == f"w{w}"]
            assert sorted(r.metrics["worker"]["i"] for r in mine) == [
                float(i) for i in range(per_worker)
            ]


class TestExplorationRecords:
    def test_exploration_kind_round_trips(self, tmp_path):
        registry = RunRegistry(tmp_path)
        record = RunResult(
            metrics={"exploration": {"feasible_count": 3, "pareto": []}},
            scenario=None,
            kind="exploration",
            label="frontier",
        )
        registry.save(record)
        assert registry.load(record.run_id) == record
        assert registry.query(kind="exploration") == [record]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            RunResult(metrics={}, scenario=None, kind="mystery")
