"""Public-API surface tests: exports, docstrings, error hierarchy."""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "2.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "Scenario",
            "Runner",
            "run",
            "RunResult",
            "RunRegistry",
            "SCHEMA_VERSION",
            "ButterflyFatTreeModel",
            "ButterflyFatTree",
            "Workload",
            "SimConfig",
            "simulate",
            "simulate_flit_level",
            "saturation_injection_rate",
            "ModelVariant",
            "bft_stage_graph",
            "hypercube_stage_graph",
        ],
    )
    def test_key_entry_points_exported(self, name):
        assert name in repro.__all__

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.core
        import repro.experiments
        import repro.queueing
        import repro.runs
        import repro.simulation
        import repro.topology
        import repro.util


class TestDocstrings:
    def test_every_public_module_documented(self):
        import pkgutil

        undocumented = []
        for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = __import__(mod.name, fromlist=["_"])
            if not (module.__doc__ or "").strip():
                undocumented.append(mod.name)
        assert not undocumented

    def test_public_classes_documented(self):
        from repro import (
            ButterflyFatTree,
            ButterflyFatTreeModel,
            ChannelGraphModel,
            EventDrivenWormholeSimulator,
            FlitLevelWormholeSimulator,
        )

        for cls in (
            ButterflyFatTree,
            ButterflyFatTreeModel,
            ChannelGraphModel,
            EventDrivenWormholeSimulator,
            FlitLevelWormholeSimulator,
        ):
            assert (cls.__doc__ or "").strip(), cls
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.TopologyError,
            errors.RoutingError,
            errors.SaturatedError,
            errors.ConvergenceError,
            errors.SimulationError,
            errors.RegistryError,
            errors.SchemaVersionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_schema_version_error_is_registry_error(self):
        assert issubclass(errors.SchemaVersionError, errors.RegistryError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            repro.Workload(0, 0.1)
