"""Tests for measurement accounting, replication runner, and empirical saturation."""

from __future__ import annotations

import math

import pytest

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    SimConfig,
    Workload,
    empirical_saturation,
)
from repro.core import saturation_flit_load
from repro.simulation import run_replications, simulated_latency_curve
from repro.simulation.metrics import ClassStats, MetricsCollector
from repro.topology.base import UP, LinkClass


class TestMetricsCollector:
    def _collector(self, keep_samples=True):
        wl = Workload(16, 0.01)
        cfg = SimConfig(warmup_cycles=100, measure_cycles=200, seed=0)
        classes = [LinkClass(UP, 0), LinkClass(UP, 0), LinkClass(UP, 1)]
        return MetricsCollector(wl, cfg, 4, classes, keep_samples=keep_samples), cfg

    def test_tagging_window(self):
        c, cfg = self._collector()
        assert not c.on_generated(50.0)  # warmup
        assert c.on_generated(150.0)  # window
        assert not c.on_generated(350.0)  # after window
        assert c.tagged_generated == 1
        assert c.generated_total == 3

    def test_latency_only_from_tagged(self):
        c, _ = self._collector()
        tagged = c.on_generated(150.0)
        c.on_delivered(150.0, 180.0, tagged, 4)
        c.on_delivered(50.0, 90.0, False, 4)
        res = c.finalize(400.0)
        assert res.tagged_delivered == 1
        assert res.latency_mean == pytest.approx(30.0)

    def test_censored_count(self):
        c, _ = self._collector()
        c.on_generated(150.0)
        c.on_generated(160.0)
        res = c.finalize(400.0)
        assert res.censored_tagged == 2
        assert not res.stable

    def test_delivered_in_window(self):
        c, _ = self._collector()
        c.on_delivered(100.0, 150.0, False, 4)  # inside window
        c.on_delivered(100.0, 350.0, False, 4)  # outside
        res = c.finalize(400.0)
        assert res.delivered_in_window == 1

    def test_class_population(self):
        c, _ = self._collector()
        res = c.finalize(400.0)
        assert res.class_stats["<0,1>"].links == 2
        assert res.class_stats["<1,2>"].links == 1

    def test_acquisition_window_filter(self):
        c, cfg = self._collector()
        c.on_acquisition(0, 150.0)
        c.on_acquisition(0, 50.0)  # warmup, not counted
        res = c.finalize(400.0)
        assert res.class_stats["<0,1>"].acquisitions == 1
        rate = res.class_stats["<0,1>"].rate_per_link(cfg.measure_cycles)
        assert rate == pytest.approx(1 / (2 * 200.0))

    def test_busy_accumulation(self):
        c, _ = self._collector()
        c.on_busy(1, 32.0)  # class id 1 == LinkClass(UP, 1)
        c.on_busy(1, 8.0)
        res = c.finalize(400.0)
        assert res.class_stats["<1,2>"].busy_time == pytest.approx(40.0)

    def test_class_stats_nan_rate_for_empty(self):
        s = ClassStats()
        assert math.isnan(s.rate_per_link(100.0))

    def test_short_worm_accounting(self):
        c, _ = self._collector()
        c.on_delivered(10.0, 50.0, False, path_length=20)  # 20 > 16 flits
        c.on_delivered(10.0, 50.0, False, path_length=4)
        res = c.finalize(400.0)
        assert res.short_worm_fraction == pytest.approx(0.5)


class TestReplications:
    def test_replications_aggregate(self, bft16):
        wl = Workload.from_flit_load(0.08, 16)
        cfg = SimConfig(warmup_cycles=300, measure_cycles=2000, seed=5)
        rep = run_replications(bft16, wl, cfg, replications=3)
        assert len(rep.results) == 3
        assert math.isfinite(rep.latency_mean)
        assert rep.latency_ci > 0
        assert rep.stable

    def test_replications_differ_by_seed(self, bft16):
        wl = Workload.from_flit_load(0.08, 16)
        cfg = SimConfig(warmup_cycles=300, measure_cycles=2000, seed=5)
        rep = run_replications(bft16, wl, cfg, replications=3)
        means = [r.latency_mean for r in rep.results]
        assert len(set(means)) > 1

    def test_mean_close_to_single_run(self, bft16):
        wl = Workload.from_flit_load(0.08, 16)
        cfg = SimConfig(warmup_cycles=300, measure_cycles=2000, seed=5)
        rep = run_replications(bft16, wl, cfg, replications=3)
        for r in rep.results:
            assert r.latency_mean == pytest.approx(rep.latency_mean, rel=0.15)


class TestReplicationConfigPropagation:
    """Regression: the replication helpers used to hand-copy SimConfig
    field by field, silently dropping `extra` (and any future field)."""

    class _CapturingSim:
        captured: list[SimConfig] = []

        def __init__(self, topology, workload, config, *, keep_samples=False):
            type(self).captured.append(config)

        def run(self):
            import types

            return types.SimpleNamespace(stable=True)

    def test_run_replications_preserves_all_fields(self, bft16):
        self._CapturingSim.captured = []
        cfg = SimConfig(
            warmup_cycles=100,
            measure_cycles=400,
            max_cycles=10_000,
            seed=3,
            drain_factor=2.5,
            extra={"router": "vc4"},
        )
        run_replications(
            bft16,
            Workload(16, 0.01),
            cfg,
            replications=3,
            simulator_cls=self._CapturingSim,
        )
        assert len(self._CapturingSim.captured) == 3
        seeds = {c.seed for c in self._CapturingSim.captured}
        assert len(seeds) == 3
        for c in self._CapturingSim.captured:
            assert c.extra == {"router": "vc4"}
            assert c.max_cycles == 10_000
            assert c.drain_factor == 2.5

    def test_sim_stability_probe_preserves_all_fields(self, bft16, monkeypatch):
        from repro.simulation import saturation as sat_module

        self._CapturingSim.captured = []
        monkeypatch.setattr(
            sat_module, "EventDrivenWormholeSimulator", self._CapturingSim
        )
        cfg = SimConfig(
            warmup_cycles=100,
            measure_cycles=400,
            max_cycles=9_000,
            seed=5,
            extra={"knob": 1},
        )
        probe = sat_module._SimStability(bft16, cfg, replications=2)
        assert probe.is_stable(Workload(16, 0.01))
        assert len(self._CapturingSim.captured) == 2
        for c in self._CapturingSim.captured:
            assert c.extra == {"knob": 1}
            assert c.max_cycles == 9_000


class TestSimulatedCurve:
    def test_curve_monotone_below_saturation(self, bft64):
        cfg = SimConfig(warmup_cycles=500, measure_cycles=4000, seed=6)
        curve = simulated_latency_curve(bft64, 16, [0.02, 0.06, 0.1], cfg)
        lats = list(curve.latencies)
        assert all(math.isfinite(x) for x in lats)
        assert lats == sorted(lats)

    def test_overloaded_point_is_inf(self, bft16):
        cfg = SimConfig(
            warmup_cycles=300, measure_cycles=2000, seed=7, drain_factor=1.5
        )
        curve = simulated_latency_curve(bft16, 16, [0.05, 0.9], cfg)
        assert math.isfinite(curve.latencies[0])
        assert math.isinf(curve.latencies[1])

    def test_replicated_curve(self, bft16):
        cfg = SimConfig(warmup_cycles=300, measure_cycles=1500, seed=8)
        curve = simulated_latency_curve(bft16, 16, [0.05], cfg, replications=2)
        assert math.isfinite(curve.latencies[0])


class TestEmpiricalSaturation:
    def test_simulated_saturation_brackets_model(self, bft64):
        """The simulator's saturation must land in the same region as the
        model's (the model is conservative; allow a generous band)."""
        model_sat = saturation_flit_load(ButterflyFatTreeModel(64), 16)
        cfg = SimConfig(
            warmup_cycles=800, measure_cycles=3000, seed=9, drain_factor=2.0
        )
        sim_sat = empirical_saturation(ButterflyFatTree(64), 16, cfg, rel_tol=0.08)
        assert 0.8 * model_sat < sim_sat.flit_load < 1.6 * model_sat

    def test_saturation_result_fields(self, bft16):
        cfg = SimConfig(
            warmup_cycles=500, measure_cycles=2000, seed=10, drain_factor=2.0
        )
        res = empirical_saturation(bft16, 16, cfg, rel_tol=0.1)
        assert res.message_flits == 16
        assert res.lower_bound <= res.injection_rate <= res.upper_bound
