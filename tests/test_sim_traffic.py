"""Tests for traffic generation (Poisson sources, patterns, traces)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigurationError, Pattern, PoissonTraffic, TraceTraffic, Workload
from repro.simulation.traffic import Arrival


def _collect(traffic, horizon):
    return list(traffic.arrivals(horizon))


class TestPoissonTraffic:
    def test_rate_matches_configuration(self):
        wl = Workload(16, 0.01)
        tr = PoissonTraffic(64, wl, seed=1)
        arrivals = _collect(tr, 20_000)
        measured = len(arrivals) / (20_000 * 64)
        assert measured == pytest.approx(0.01, rel=0.05)

    def test_time_ordered(self):
        tr = PoissonTraffic(16, Workload(16, 0.02), seed=2)
        times = [a.time for a in _collect(tr, 5000)]
        assert times == sorted(times)

    def test_no_self_messages(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=3)
        assert all(a.src != a.dst for a in _collect(tr, 5000))

    def test_sources_cover_all_pes(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=4)
        srcs = {a.src for a in _collect(tr, 10_000)}
        assert srcs == set(range(16))

    def test_destinations_approximately_uniform(self):
        tr = PoissonTraffic(8, Workload(16, 0.2), seed=5)
        arrivals = _collect(tr, 20_000)
        counts = np.bincount([a.dst for a in arrivals], minlength=8)
        freq = counts / counts.sum()
        assert np.all(np.abs(freq - 1 / 8) < 0.02)

    def test_exponential_interarrivals(self):
        # Per-PE inter-arrival times must have CV ~ 1 (exponential).
        tr = PoissonTraffic(4, Workload(16, 0.05), seed=6)
        arrivals = _collect(tr, 100_000)
        per_pe = [a.time for a in arrivals if a.src == 0]
        gaps = np.diff(per_pe)
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_zero_rate_empty(self):
        tr = PoissonTraffic(8, Workload(16, 0.0), seed=7)
        assert _collect(tr, 1000) == []

    def test_reproducible(self):
        wl = Workload(16, 0.02)
        a = _collect(PoissonTraffic(8, wl, seed=42), 2000)
        b = _collect(PoissonTraffic(8, wl, seed=42), 2000)
        assert a == b

    def test_seeds_differ(self):
        wl = Workload(16, 0.02)
        a = _collect(PoissonTraffic(8, wl, seed=1), 2000)
        b = _collect(PoissonTraffic(8, wl, seed=2), 2000)
        assert a != b

    def test_requires_two_pes(self):
        with pytest.raises(ConfigurationError):
            PoissonTraffic(1, Workload(16, 0.01))


class TestPatterns:
    def test_permutation_fixed_destination(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=8, pattern=Pattern.PERMUTATION)
        arrivals = _collect(tr, 10_000)
        dst_by_src: dict[int, set] = {}
        for a in arrivals:
            dst_by_src.setdefault(a.src, set()).add(a.dst)
        assert all(len(d) == 1 for d in dst_by_src.values())

    def test_permutation_is_derangement(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=9, pattern=Pattern.PERMUTATION)
        perm = tr._permutation
        assert sorted(perm) == list(range(16))
        assert all(perm[i] != i for i in range(16))

    def test_hotspot_concentration(self):
        tr = PoissonTraffic(
            16,
            Workload(16, 0.05),
            seed=10,
            pattern=Pattern.HOTSPOT,
            hotspot_fraction=0.5,
            hotspot_target=3,
        )
        arrivals = _collect(tr, 20_000)
        frac = sum(1 for a in arrivals if a.dst == 3) / len(arrivals)
        assert frac > 0.4

    def test_hotspot_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonTraffic(
                16, Workload(16, 0.05), pattern=Pattern.HOTSPOT, hotspot_fraction=1.5
            )
        with pytest.raises(ConfigurationError):
            PoissonTraffic(
                16, Workload(16, 0.05), pattern=Pattern.HOTSPOT, hotspot_target=99
            )

    def test_quad_local_stays_in_quad(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=11, pattern=Pattern.QUAD_LOCAL)
        for a in _collect(tr, 10_000):
            assert a.src // 4 == a.dst // 4
            assert a.src != a.dst

    def test_quad_local_requires_multiple_of_four(self):
        with pytest.raises(ConfigurationError):
            PoissonTraffic(6, Workload(16, 0.05), pattern=Pattern.QUAD_LOCAL)

    def test_hotspot_fraction_is_exact(self):
        """The fallback excludes the target, so among messages from other
        sources the hot node is hit with probability exactly f (the old
        construction inflated it to f + (1-f)/(N-1) ~ 0.253 here)."""
        tr = PoissonTraffic(
            16,
            Workload(16, 0.2),
            seed=12,
            pattern=Pattern.HOTSPOT,
            hotspot_fraction=0.2,
            hotspot_target=3,
        )
        arrivals = [a for a in _collect(tr, 20_000) if a.src != 3]
        frac = sum(1 for a in arrivals if a.dst == 3) / len(arrivals)
        assert frac == pytest.approx(0.2, abs=0.015)

    def test_transpose_fixed_points_are_silent(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=13, pattern=Pattern.TRANSPOSE)
        arrivals = _collect(tr, 20_000)
        srcs = {a.src for a in arrivals}
        assert srcs == set(range(16)) - {0b0000, 0b0101, 0b1010, 0b1111}
        for a in arrivals:
            lo, hi = a.src & 0b11, a.src >> 2
            assert a.dst == (lo << 2) | hi

    def test_bit_complement_pattern(self):
        tr = PoissonTraffic(
            16, Workload(16, 0.05), seed=14, pattern=Pattern.BIT_COMPLEMENT
        )
        assert all(a.dst == a.src ^ 15 for a in _collect(tr, 5000))

    def test_tornado_pattern(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=15, pattern=Pattern.TORNADO)
        assert all(a.dst == (a.src + 8) % 16 for a in _collect(tr, 5000))

    def test_pattern_accepts_registry_name(self):
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=16, pattern="bit-reversal")
        assert tr.spec.name == "bit-reversal"
        assert tr.pattern is Pattern.BIT_REVERSAL

    def test_spec_and_pattern_are_exclusive(self):
        from repro.traffic import UniformSpec

        with pytest.raises(ConfigurationError):
            PoissonTraffic(
                16,
                Workload(16, 0.05),
                spec=UniformSpec(),
                pattern=Pattern.UNIFORM,
            )

    def test_shared_spec_instance_drives_sampling(self):
        from repro.traffic import PermutationSpec

        spec = PermutationSpec(seed=5)
        tr = PoissonTraffic(16, Workload(16, 0.05), seed=17, spec=spec)
        perm = spec.permutation_for(16)
        assert all(a.dst == perm[a.src] for a in _collect(tr, 5000))


class TestTraceTraffic:
    def test_replay_order_and_horizon(self):
        tr = TraceTraffic([(0.0, 0, 1), (5.0, 1, 2), (10.0, 2, 3)])
        assert [a.time for a in tr.arrivals(10.0)] == [0.0, 5.0]

    def test_rejects_unordered(self):
        with pytest.raises(ConfigurationError):
            TraceTraffic([(5.0, 0, 1), (1.0, 1, 2)])

    def test_rejects_self_message(self):
        with pytest.raises(ConfigurationError):
            TraceTraffic([(0.0, 1, 1)])

    def test_floored_copy(self):
        tr = TraceTraffic([(0.7, 0, 1), (2.3, 1, 0)])
        fl = tr.floored()
        assert [a.time for a in fl.arrivals(10)] == [0.0, 2.0]

    def test_accepts_arrival_objects(self):
        tr = TraceTraffic([Arrival(1.0, 0, 1)])
        assert len(list(tr.arrivals(2.0))) == 1

    def test_floored_preserves_flits(self):
        """Regression: floored() used to drop per-message lengths, silently
        reverting variable-length traces to the workload length."""
        tr = TraceTraffic([Arrival(0.7, 0, 1, flits=8), Arrival(2.3, 1, 0, flits=56)])
        fl = list(tr.floored().arrivals(10))
        assert [a.time for a in fl] == [0.0, 2.0]
        assert [a.flits for a in fl] == [8, 56]

    @given(
        n=st.integers(2, 32),
        rate=st.floats(0.001, 0.1),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_arrivals_valid(self, n, rate, seed):
        tr = PoissonTraffic(n, Workload(16, rate), seed=seed)
        prev = -1.0
        for a in tr.arrivals(500):
            assert 0 <= a.src < n
            assert 0 <= a.dst < n
            assert a.src != a.dst
            assert a.time >= prev
            prev = a.time
