"""Tests for channel arrival rates (Eqs. 12-15) and flow conservation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rates import (
    bft_channel_rates,
    bft_total_up_crossings,
    conditional_up_probability,
    down_probability,
    up_probability,
)
from repro.errors import ConfigurationError


class TestUpProbability:
    def test_boundary_values(self):
        # Every message enters the network; none rise above the root.
        for n in (1, 2, 5):
            assert up_probability(n, 0) == 1.0
            assert up_probability(n, n) == 0.0

    def test_eq12_explicit(self):
        # n=3: P^_1 = (64-4)/63, P^_2 = (64-16)/63.
        assert up_probability(3, 1) == pytest.approx(60 / 63)
        assert up_probability(3, 2) == pytest.approx(48 / 63)

    def test_monotone_decreasing_in_level(self):
        probs = [up_probability(5, l) for l in range(6)]
        assert probs == sorted(probs, reverse=True)

    def test_down_is_complement(self):
        for l in range(4):
            assert down_probability(4, l) == pytest.approx(1 - up_probability(4, l))

    def test_counting_interpretation(self):
        # P^_l = (# destinations outside the level-l subtree) / (N - 1).
        n = 3
        for l in range(n + 1):
            outside = 4**n - 4**l
            assert up_probability(n, l) == pytest.approx(outside / (4**n - 1))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            up_probability(3, 4)
        with pytest.raises(ConfigurationError):
            up_probability(3, -1)
        with pytest.raises(ConfigurationError):
            up_probability(0, 0)


class TestConditionalUpProbability:
    def test_exact_conditional(self):
        # P(rise above l | climbed to l) = (4^n - 4^l) / (4^n - 4^(l-1)).
        assert conditional_up_probability(3, 1) == pytest.approx(60 / 63)
        assert conditional_up_probability(3, 2) == pytest.approx(48 / 60)

    def test_at_least_unconditional(self):
        # Conditioning removes nearby destinations, so the climb probability
        # can only grow.
        for n in (2, 3, 5):
            for l in range(1, n + 1):
                assert conditional_up_probability(n, l) >= up_probability(n, l)

    def test_level_one_equals_unconditional(self):
        # At level 1 the conditioning event is "entered the network", which
        # excludes nothing beyond the source itself... but the source is
        # already excluded: (4^n-4)/(4^n-1) vs (4^n-4)/(4^n-1).
        for n in (1, 2, 4):
            assert conditional_up_probability(n, 1) == pytest.approx(
                (4**n - 4) / (4**n - 1)
            )

    def test_chain_rule_recovers_unconditional(self):
        # Product of conditionals up to level l equals P^_l ... P^_1-style
        # telescoping: P^_l = P^_1|0 * P^_2|1 * ... with the first factor
        # being up_probability(n, 1)... times nothing else at l=1.
        n = 4
        prod = 1.0
        for l in range(1, n + 1):
            prod *= conditional_up_probability(n, l)
            assert prod == pytest.approx(up_probability(n, l))

    def test_rejects_level_zero(self):
        with pytest.raises(ConfigurationError):
            conditional_up_probability(3, 0)


class TestChannelRates:
    def test_eq14_explicit(self):
        # n=2, lambda0=0.01: rate_0 = 0.01, rate_1 = 0.01 * (16-4)/15 * 2.
        rates = bft_channel_rates(2, 0.01)
        assert rates[0] == pytest.approx(0.01)
        assert rates[1] == pytest.approx(0.01 * 12 / 15 * 2)

    def test_injection_rate_is_lambda0(self):
        for n in (1, 3, 5):
            assert bft_channel_rates(n, 0.02)[0] == pytest.approx(0.02)

    def test_scales_linearly_with_lambda0(self):
        r1 = bft_channel_rates(4, 0.01)
        r2 = bft_channel_rates(4, 0.03)
        assert np.allclose(r2, 3 * r1)

    def test_rates_increase_with_level(self):
        # Links get scarcer faster than traffic thins out.
        rates = bft_channel_rates(5, 0.01)
        assert np.all(np.diff(rates) > 0)

    def test_zero_rate(self):
        assert np.all(bft_channel_rates(3, 0.0) == 0.0)

    def test_flow_conservation_against_crossings(self):
        # Total crossings at level l spread over 4^n / 2^l links give Eq. 14.
        n, lam0 = 4, 0.005
        rates = bft_channel_rates(n, lam0)
        crossings = bft_total_up_crossings(n, lam0)
        for l in range(n):
            links = 4**n / 2**l
            assert rates[l] == pytest.approx(crossings[l] / links)

    def test_switch_level_flow_balance(self):
        # Traffic into a level-l switch from below equals traffic leaving
        # upward plus traffic turning down at that switch.
        n, lam0 = 5, 0.01
        rates = bft_channel_rates(n, lam0)
        for l in range(1, n):
            in_up = 4 * rates[l - 1]  # four child links feed the switch
            out_up = 2 * rates[l]  # two parent links leave it
            turning = in_up * (
                1 - conditional_up_probability(n, l)
            )  # exact conditional governs the split
            assert out_up + turning == pytest.approx(in_up)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            bft_channel_rates(3, -0.01)

    @given(n=st.integers(1, 6), lam0=st.floats(0.0, 0.1))
    @settings(max_examples=50)
    def test_property_rates_bounded_by_capacity_ratio(self, n, lam0):
        rates = bft_channel_rates(n, lam0)
        # Rate on level-l links is at most lambda0 * 2^l (all traffic rises).
        for l in range(n):
            assert rates[l] <= lam0 * 2**l + 1e-12


class TestMonteCarloRates:
    def test_rates_match_sampled_paths(self):
        """Monte-Carlo check of Eq. 14: sample random (src, dst) pairs, count
        level crossings, and compare to the closed form."""
        rng = np.random.default_rng(12)
        n = 3
        n_procs = 4**n
        samples = 200_000
        src = rng.integers(n_procs, size=samples)
        dst = rng.integers(n_procs - 1, size=samples)
        dst = np.where(dst >= src, dst + 1, dst)
        crossings = np.zeros(n)
        for l in range(1, n + 1):
            up_through = (src // 4**l) == (dst // 4**l)
            # A message crosses level l-1 -> l iff its NCA is at level >= l.
            crossings[l - 1] = np.mean(~((src // 4 ** (l - 1)) == (dst // 4 ** (l - 1))))
        lam0 = 0.01
        expected_per_link = bft_channel_rates(n, lam0)
        for l in range(n):
            total = crossings[l] * n_procs * lam0
            links = n_procs / 2**l
            assert total / links == pytest.approx(expected_per_link[l], rel=0.02)
